//! Request coalescing for the retrieval kernel: group-commit for
//! vector searches.
//!
//! The serve engine runs one [`crate::VectorIndex`] under many worker
//! threads, each issuing independent single-query searches. Every such
//! search pays a full arena pass, but the batched kernel
//! ([`crate::VectorIndex::search_batch`]) amortizes that pass across
//! queries. The [`Coalescer`] bridges the two: concurrent callers that
//! arrive within one **time/size window** are collected by the first
//! arrival (the *leader*), serviced by a single batched kernel
//! invocation, and handed their per-query slice back.
//!
//! The protocol mirrors the WAL's group commit: the first thread into an
//! empty window becomes leader and waits up to [`BatchWindow::max_wait`]
//! for companions (leaving early the moment [`BatchWindow::max_batch`]
//! queries are pending — latency is bounded by construction); followers
//! park on a per-request slot until the leader fills it. A window with a
//! single member degenerates to a batch of one, whose cost equals the
//! plain exact scan, so the worst case under no concurrency is one
//! `max_wait` of added latency and nothing else.
//!
//! Results are **bit-identical** to per-query
//! [`crate::VectorIndex::search_exact`]: the batch runs at the window's
//! maximum `k` and each caller's hits are the first `k` of that list —
//! a prefix, because the total-order comparator makes every top-k′ for
//! `k′ < k` a prefix of the top-k.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::vector::{Hit, VectorIndex};

/// Size/time bounds of one coalescing window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchWindow {
    /// Flush as soon as this many queries are pending.
    pub max_batch: usize,
    /// Flush after this long even if the window is not full — the upper
    /// bound on latency added to an uncontended request.
    pub max_wait: Duration,
}

impl Default for BatchWindow {
    /// 8 queries / 200 µs: wide enough to catch genuinely concurrent
    /// traffic, short enough to be invisible next to a millisecond-scale
    /// arena scan.
    fn default() -> Self {
        BatchWindow {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// How a caller's request was serviced within its window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowRole {
    /// This caller collected the window and ran the batched kernel for
    /// `window` queries (its own included).
    Leader {
        /// Number of queries serviced by the one kernel invocation.
        window: usize,
    },
    /// Another caller's kernel invocation serviced this request.
    Follower,
}

/// One caller's parked request: filled by the leader, consumed by the
/// follower.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<Vec<Hit>>>,
    ready: Condvar,
}

struct Entry {
    query: Vec<f32>,
    k: usize,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct State {
    pending: Vec<Entry>,
    /// A leader is currently collecting the window.
    leader_active: bool,
}

/// The shared window state: [`VectorIndex::with_coalescing`] attaches
/// one of these behind an `Arc` so index clones coalesce together.
///
/// [`VectorIndex::with_coalescing`]: crate::VectorIndex::with_coalescing
pub struct Coalescer {
    window: BatchWindow,
    state: Mutex<State>,
    /// Signalled when the pending window fills, releasing the leader
    /// before its timer runs out.
    arrived: Condvar,
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl Coalescer {
    /// A coalescer with the given window bounds (`max_batch` is clamped
    /// to at least 1).
    pub fn new(window: BatchWindow) -> Self {
        Coalescer {
            window: BatchWindow {
                max_batch: window.max_batch.max(1),
                max_wait: window.max_wait,
            },
            state: Mutex::new(State::default()),
            arrived: Condvar::new(),
        }
    }

    /// The configured window bounds.
    pub fn window(&self) -> BatchWindow {
        self.window
    }

    /// Service one query through the current window. Blocks the calling
    /// thread for at most `max_wait` plus one batched kernel invocation.
    pub fn run(&self, index: &VectorIndex, query: &[f32], k: usize) -> (Vec<Hit>, WindowRole) {
        let slot = Arc::new(Slot::default());
        let mut st = self.state.lock().expect("coalescer state poisoned");
        st.pending.push(Entry {
            query: query.to_vec(),
            k,
            slot: Arc::clone(&slot),
        });
        if !st.leader_active {
            // leader: collect companions until the window fills or the
            // timer expires, then run one batched search for everyone
            st.leader_active = true;
            let deadline = Instant::now() + self.window.max_wait;
            while st.pending.len() < self.window.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = self
                    .arrived
                    .wait_timeout(st, deadline - now)
                    .expect("coalescer state poisoned");
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let batch = std::mem::take(&mut st.pending);
            st.leader_active = false;
            drop(st);
            let window = batch.len();
            let k_max = batch.iter().map(|e| e.k).max().unwrap_or(0);
            let queries: Vec<Vec<f32>> = batch.iter().map(|e| e.query.clone()).collect();
            let results = index.search_batch(&queries, k_max);
            let mut own = Vec::new();
            for (entry, mut hits) in batch.into_iter().zip(results) {
                hits.truncate(entry.k);
                if Arc::ptr_eq(&entry.slot, &slot) {
                    own = hits;
                } else {
                    *entry.slot.result.lock().expect("slot poisoned") = Some(hits);
                    entry.slot.ready.notify_one();
                }
            }
            (own, WindowRole::Leader { window })
        } else {
            // follower: wake the leader if we just filled the window,
            // then park until it delivers
            if st.pending.len() >= self.window.max_batch {
                self.arrived.notify_one();
            }
            drop(st);
            let mut result = slot.result.lock().expect("slot poisoned");
            while result.is_none() {
                result = slot.ready.wait(result).expect("slot poisoned");
            }
            (result.take().expect("checked above"), WindowRole::Follower)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(n: usize) -> VectorIndex {
        let vectors: Vec<Vec<f32>> = (0..n)
            .map(|i| slm::embedding::hash_vector(&format!("doc-{i}")))
            .collect();
        VectorIndex::build(vectors, 0, 0)
    }

    #[test]
    fn solo_window_matches_exact_bitwise() {
        let idx = index(200).with_coalescing(BatchWindow {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
        });
        let q = slm::embedding::hash_vector("doc-3");
        let exact = idx.search_exact(&q, 5);
        let coalesced = idx.search_coalesced(&q, 5);
        let bits = |hits: &[Hit]| -> Vec<(usize, u32)> {
            hits.iter().map(|&(i, s)| (i, s.to_bits())).collect()
        };
        assert_eq!(bits(&exact), bits(&coalesced));
    }

    #[test]
    fn concurrent_searches_coalesce_and_match_exact() {
        let idx = std::sync::Arc::new(index(400).with_coalescing(BatchWindow {
            max_batch: 4,
            max_wait: Duration::from_millis(200),
        }));
        let threads = 8;
        let results: Vec<(usize, Vec<Hit>)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let idx = std::sync::Arc::clone(&idx);
                    scope.spawn(move |_| {
                        let q = slm::embedding::hash_vector(&format!("doc-{t}"));
                        // heterogeneous k exercises the truncation path
                        let k = 3 + t % 3;
                        (t, idx.search_coalesced(&q, k))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        for (t, hits) in results {
            let q = slm::embedding::hash_vector(&format!("doc-{t}"));
            let exact = idx.search_exact(&q, 3 + t % 3);
            let bits = |hits: &[Hit]| -> Vec<(usize, u32)> {
                hits.iter().map(|&(i, s)| (i, s.to_bits())).collect()
            };
            assert_eq!(bits(&exact), bits(&hits), "thread {t}");
        }
    }

    #[test]
    fn coalesced_observed_records_batch_counters() {
        let idx = index(64).with_coalescing(BatchWindow {
            max_batch: 2,
            max_wait: Duration::from_micros(50),
        });
        let (tracer, _recorder) = obs::Tracer::in_memory();
        let root = tracer.span("test");
        let q = slm::embedding::hash_vector("doc-1");
        let hits = idx.search_coalesced_observed(&q, 4, &root);
        root.finish();
        assert_eq!(hits.len(), 4);
        assert_eq!(tracer.registry().counter("retrieval.batch.coalesced"), 1);
        assert_eq!(tracer.registry().counter("retrieval.batch.windows"), 1);
        assert_eq!(tracer.registry().counter("retrieval.batch.queries"), 1);
    }
}
