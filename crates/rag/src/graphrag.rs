//! Graph RAG (\[26\]): entity graph → communities → summaries →
//! map-reduce query answering.
//!
//! Naive RAG retrieves *pointwise*: top-k chunks. Global sensemaking
//! questions ("what is the most common genre?") need evidence from the
//! whole corpus. Graph RAG pre-aggregates: detect entity communities,
//! summarize each, then answer global queries by mapping over community
//! summaries and reducing partial results.

use std::collections::BTreeMap;

use kg::namespace as ns;
use kg::term::Sym;
use kg::Graph;
use slm::Slm;

use crate::vector::VectorIndex;

/// A community of entities with its generated summary.
#[derive(Debug, Clone)]
pub struct Community {
    /// Member entities (sorted).
    pub members: Vec<Sym>,
    /// Generated natural-language summary.
    pub summary: String,
    /// Per-relation object counts within the community (the map-side
    /// aggregate used by global queries).
    pub relation_object_counts: BTreeMap<String, BTreeMap<String, usize>>,
}

/// The Graph RAG engine.
pub struct GraphRag<'a> {
    graph: &'a Graph,
    slm: &'a Slm,
    /// Detected communities with summaries.
    pub communities: Vec<Community>,
    /// Arena index over the community summary embeddings (community i is
    /// doc i), so local-mode routing is one top-1 retrieval instead of a
    /// re-embedding linear scan per question.
    summary_index: VectorIndex,
}

impl<'a> GraphRag<'a> {
    /// Build: label-propagation community detection over the entity graph
    /// (synthetic-vocabulary edges, undirected), then summarize each
    /// community from its internal facts.
    pub fn build(graph: &'a Graph, slm: &'a Slm) -> Self {
        let entities: Vec<Sym> = graph
            .entities()
            .into_iter()
            .filter(|&e| {
                graph
                    .resolve(e)
                    .as_iri()
                    .is_some_and(|i| i.starts_with(ns::SYNTH_ENTITY))
            })
            .collect();
        // label propagation: deterministic (sorted nodes, smallest-label
        // tiebreak), bounded iterations
        let mut label: BTreeMap<Sym, Sym> = entities.iter().map(|&e| (e, e)).collect();
        for _ in 0..20 {
            let mut changed = false;
            for &e in &entities {
                let mut votes: BTreeMap<Sym, usize> = BTreeMap::new();
                for (p, o) in graph.outgoing(e) {
                    if is_relation(graph, p) && label.contains_key(&o) {
                        *votes.entry(label[&o]).or_insert(0) += 1;
                    }
                }
                for (s, p) in graph.incoming(e) {
                    if is_relation(graph, p) && label.contains_key(&s) {
                        *votes.entry(label[&s]).or_insert(0) += 1;
                    }
                }
                if let Some((&best, _)) =
                    votes.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                {
                    if label[&e] != best {
                        label.insert(e, best);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut groups: BTreeMap<Sym, Vec<Sym>> = BTreeMap::new();
        for (&e, &l) in &label {
            groups.entry(l).or_default().push(e);
        }
        let communities: Vec<Community> = groups
            .into_values()
            .map(|members| summarize(graph, members))
            .collect();
        let summary_index = VectorIndex::build(
            communities.iter().map(|c| slm.embed(&c.summary)).collect(),
            0,
            0,
        );
        GraphRag {
            graph,
            slm,
            communities,
            summary_index,
        }
    }

    /// Answer a *global* aggregate question: `"what is the most common
    /// <relation phrase>?"`-style. Maps over community aggregates and
    /// reduces to the global winner. Returns `(answer, count)`.
    pub fn answer_global(&self, question: &str) -> Option<(String, usize)> {
        self.answer_global_observed(question, &obs::Span::disabled())
    }

    /// [`GraphRag::answer_global`] under an observability span: a
    /// `graphrag.global` child records the routed relation and how many
    /// community aggregates the map-reduce merged.
    pub fn answer_global_observed(
        &self,
        question: &str,
        parent: &obs::Span,
    ) -> Option<(String, usize)> {
        let span = parent.child("graphrag.global");
        span.set("communities", self.communities.len());
        span.count("graphrag.global_questions", 1);
        // route: find the relation whose phrase occurs in the question
        let lower = question.to_lowercase();
        let mut target: Option<String> = None;
        for c in &self.communities {
            for rel in c.relation_object_counts.keys() {
                if lower.contains(&rel.to_lowercase()) {
                    target = Some(rel.clone());
                }
            }
            if target.is_some() {
                break;
            }
        }
        let Some(target) = target else {
            span.set("routed", false);
            return None;
        };
        span.set("routed", true);
        span.set("relation", target.as_str());
        // map-reduce over communities
        let mut merged: BTreeMap<String, usize> = BTreeMap::new();
        let mut aggregates_merged = 0usize;
        for c in &self.communities {
            if let Some(counts) = c.relation_object_counts.get(&target) {
                aggregates_merged += 1;
                for (obj, n) in counts {
                    *merged.entry(obj.clone()).or_insert(0) += n;
                }
            }
        }
        span.set("aggregates_merged", aggregates_merged);
        span.count("graphrag.aggregates_merged", aggregates_merged as u64);
        merged
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Answer a *local* question using the best-matching community
    /// summary as context (the Graph RAG local mode).
    pub fn answer_local(&self, question: &str) -> slm::Answer {
        self.answer_local_observed(question, &obs::Span::disabled())
    }

    /// [`GraphRag::answer_local`] under an observability span: a
    /// `graphrag.local` child records communities scanned, the facts
    /// injected as context, and whether the LM answered from them.
    pub fn answer_local_observed(&self, question: &str, parent: &obs::Span) -> slm::Answer {
        let span = parent.child("graphrag.local");
        span.set("communities", self.communities.len());
        span.count("graphrag.local_questions", 1);
        // top-1 retrieval over pre-embedded summaries; ties go to the
        // lowest community id, matching the seed's first-wins scan
        let best = self
            .summary_index
            .search_exact_observed(&self.slm.embed(question), 1, &span)
            .first()
            .map(|&(ci, sim)| (sim, &self.communities[ci]));
        match best {
            Some((sim, c)) => {
                // context: the community's verbalized facts
                let facts = community_facts(self.graph, &c.members);
                span.set("best_similarity", f64::from(sim));
                span.set("community_size", c.members.len());
                span.set("facts_injected", facts.len());
                span.set(
                    "context_chars",
                    facts.iter().map(String::len).sum::<usize>(),
                );
                span.count("graphrag.facts_injected", facts.len() as u64);
                let answer = self.slm.answer(question, &facts);
                span.set("answered", answer.is_answered());
                answer
            }
            None => slm::Answer::unknown(),
        }
    }

    /// Answer many *local* questions in one retrieval pass: every
    /// question is routed to its community by a single batched top-1
    /// search over the summary index
    /// ([`VectorIndex::search_batch`]), so the summary arena is walked
    /// once per batch instead of once per question. Routing — and
    /// therefore every answer — is bit-identical to per-question
    /// [`GraphRag::answer_local`].
    pub fn answer_local_batch(&self, questions: &[&str]) -> Vec<slm::Answer> {
        self.answer_local_batch_observed(questions, &obs::Span::disabled())
    }

    /// [`GraphRag::answer_local_batch`] under an observability span: a
    /// `graphrag.local_batch` child wraps the one batched
    /// `retrieval.search` and records the batch shape.
    pub fn answer_local_batch_observed(
        &self,
        questions: &[&str],
        parent: &obs::Span,
    ) -> Vec<slm::Answer> {
        let span = parent.child("graphrag.local_batch");
        span.set("communities", self.communities.len());
        span.set("questions", questions.len());
        span.count("graphrag.local_questions", questions.len() as u64);
        let queries: Vec<Vec<f32>> = questions.iter().map(|q| self.slm.embed(q)).collect();
        let routed = self.summary_index.search_batch_observed(&queries, 1, &span);
        questions
            .iter()
            .zip(routed)
            .map(|(q, hits)| match hits.first() {
                Some(&(ci, _)) => {
                    let facts = community_facts(self.graph, &self.communities[ci].members);
                    span.count("graphrag.facts_injected", facts.len() as u64);
                    self.slm.answer(q, &facts)
                }
                None => slm::Answer::unknown(),
            })
            .collect()
    }

    /// Total number of communities.
    pub fn community_count(&self) -> usize {
        self.communities.len()
    }
}

fn is_relation(graph: &Graph, p: Sym) -> bool {
    graph
        .resolve(p)
        .as_iri()
        .is_some_and(|i| i.starts_with(ns::SYNTH_VOCAB))
}

fn community_facts(graph: &Graph, members: &[Sym]) -> Vec<String> {
    let mut out = Vec::new();
    for &e in members {
        for (p, o) in graph.outgoing(e) {
            if !is_relation(graph, p) {
                continue;
            }
            let obj = match graph.resolve(o) {
                kg::Term::Literal(l) => l.lexical.clone(),
                _ => graph.display_name(o),
            };
            out.push(format!(
                "{} {} {}",
                graph.display_name(e),
                ns::humanize(ns::local_name(graph.resolve(p).as_iri().unwrap_or("p"))),
                obj
            ));
        }
    }
    out
}

fn summarize(graph: &Graph, mut members: Vec<Sym>) -> Community {
    members.sort();
    let mut relation_object_counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for &e in &members {
        for (p, o) in graph.outgoing(e) {
            if !is_relation(graph, p) {
                continue;
            }
            let rel = ns::humanize(ns::local_name(graph.resolve(p).as_iri().unwrap_or("p")));
            let obj = match graph.resolve(o) {
                kg::Term::Literal(l) => l.lexical.clone(),
                _ => graph.display_name(o),
            };
            *relation_object_counts
                .entry(rel)
                .or_default()
                .entry(obj)
                .or_insert(0) += 1;
        }
    }
    // summary text: hubs + dominant relations
    let mut hubs: Vec<(usize, String)> = members
        .iter()
        .map(|&e| (graph.degree(e), graph.display_name(e)))
        .collect();
    hubs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let hub_names: Vec<String> = hubs.iter().take(5).map(|(_, n)| n.clone()).collect();
    let mut rel_lines = Vec::new();
    for (rel, counts) in &relation_object_counts {
        let total: usize = counts.values().sum();
        let top = counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(o, n)| format!("{o} ({n})"))
            .unwrap_or_default();
        rel_lines.push(format!("{rel}: {total} facts, most often {top}"));
    }
    let summary = format!(
        "This community has {} entities, centered on {}. Relations: {}.",
        members.len(),
        hub_names.join(", "),
        rel_lines.join("; ")
    );
    Community {
        members,
        summary,
        relation_object_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};
    use kgextract::testgen::entity_surface_forms;

    fn fixture() -> (kg::synth::SynthKg, Slm) {
        let kg = movies(151, Scale::default());
        let slm = Slm::builder()
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        (kg, slm)
    }

    #[test]
    fn communities_partition_the_entities() {
        let (kg, slm) = fixture();
        let gr = GraphRag::build(&kg.graph, &slm);
        assert!(gr.community_count() >= 1);
        let total: usize = gr.communities.iter().map(|c| c.members.len()).sum();
        let entities = kg
            .graph
            .entities()
            .into_iter()
            .filter(|&e| {
                kg.graph
                    .resolve(e)
                    .as_iri()
                    .is_some_and(|i| i.starts_with(ns::SYNTH_ENTITY))
            })
            .count();
        assert_eq!(total, entities, "communities must partition entities");
    }

    #[test]
    fn global_question_gets_the_exact_modal_answer() {
        let (kg, slm) = fixture();
        let g = &kg.graph;
        let gr = GraphRag::build(g, &slm);
        let (answer, count) = gr
            .answer_global("What is the most common has genre value?")
            .expect("aggregate answered");
        // ground truth: modal genre over the whole graph
        let has_genre = g
            .pool()
            .get_iri(&format!("{}hasGenre", ns::SYNTH_VOCAB))
            .unwrap();
        let mut truth: BTreeMap<String, usize> = BTreeMap::new();
        for t in g.match_pattern(kg::TriplePattern {
            s: None,
            p: Some(has_genre),
            o: None,
        }) {
            *truth.entry(g.display_name(t.o)).or_insert(0) += 1;
        }
        let (gold, gold_n) = truth
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap();
        assert_eq!(answer, gold);
        assert_eq!(count, gold_n);
    }

    #[test]
    fn unroutable_global_question_is_none() {
        let (kg, slm) = fixture();
        let gr = GraphRag::build(&kg.graph, &slm);
        assert!(gr
            .answer_global("what is the airspeed of a swallow?")
            .is_none());
    }

    #[test]
    fn local_answers_use_community_facts() {
        let (kg, slm) = fixture();
        let g = &kg.graph;
        let gr = GraphRag::build(g, &slm);
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", ns::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let directed = g
            .pool()
            .get_iri(&format!("{}directedBy", ns::SYNTH_VOCAB))
            .unwrap();
        let director = g.objects(film, directed)[0];
        let q = format!("Who is {} directed by?", g.display_name(film));
        let a = gr.answer_local(&q);
        assert!(
            a.text.contains(&g.display_name(director)),
            "{a:?} vs {}",
            g.display_name(director)
        );
    }

    #[test]
    fn observed_local_and_global_record_spans() {
        let (kg, slm) = fixture();
        let gr = GraphRag::build(&kg.graph, &slm);
        let (tracer, recorder) = obs::Tracer::in_memory();
        let root = tracer.span("test");
        gr.answer_global_observed("What is the most common has genre value?", &root)
            .expect("routable aggregate");
        gr.answer_local_observed("who directed anything?", &root);
        root.finish();
        let span = recorder.take().pop().expect("root recorded");
        let global = span.find("graphrag.global").expect("global span");
        assert_eq!(global.attr("routed"), Some(&obs::AttrValue::Bool(true)));
        assert!(global.attr_u64("aggregates_merged").unwrap() > 0);
        let local = span.find("graphrag.local").expect("local span");
        assert!(local.attr_u64("facts_injected").unwrap() > 0);
        assert!(tracer.registry().counter("graphrag.facts_injected") > 0);
        assert_eq!(tracer.registry().counter("graphrag.global_questions"), 1);
    }

    #[test]
    fn batched_local_answers_match_per_question() {
        let (kg, slm) = fixture();
        let g = &kg.graph;
        let gr = GraphRag::build(g, &slm);
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", ns::SYNTH_VOCAB))
            .unwrap();
        let films = g.instances_of(film_class);
        let questions: Vec<String> = films
            .iter()
            .take(4)
            .map(|&f| format!("Who is {} directed by?", g.display_name(f)))
            .chain(["what links everything here?".to_string()])
            .collect();
        let refs: Vec<&str> = questions.iter().map(String::as_str).collect();
        let (tracer, _recorder) = obs::Tracer::in_memory();
        let root = tracer.span("test");
        let batch = gr.answer_local_batch_observed(&refs, &root);
        root.finish();
        assert_eq!(batch.len(), refs.len());
        for (q, b) in refs.iter().zip(&batch) {
            let solo = gr.answer_local(q);
            assert_eq!(solo.text, b.text, "{q}");
            assert_eq!(solo.hallucinated, b.hallucinated, "{q}");
        }
        assert_eq!(
            tracer.registry().counter("graphrag.local_questions"),
            refs.len() as u64
        );
        assert_eq!(tracer.registry().counter("retrieval.batch.searches"), 1);
        assert_eq!(
            tracer.registry().counter("retrieval.batch.queries"),
            refs.len() as u64
        );
    }

    #[test]
    fn summaries_mention_sizes_and_relations() {
        let (kg, slm) = fixture();
        let gr = GraphRag::build(&kg.graph, &slm);
        for c in &gr.communities {
            assert!(c.summary.contains("entities"));
        }
    }
}
