//! Knowledge injection into prompts (K-BERT \[60\], Dict-BERT \[93\]).

use kg::namespace as ns;
use kg::term::Sym;
use kg::Graph;

/// K-BERT-sim: find KG entities mentioned in the sentence and splice
/// their most relevant triples into the prompt as context — the
/// "sentence tree" flattened to context lines (the soft-visibility
/// matrix becomes: injected lines are context, not part of the sentence).
///
/// Returns `(augmented context lines, entities found)`.
pub fn inject_knowledge(
    graph: &Graph,
    sentence: &str,
    max_triples_per_entity: usize,
) -> (Vec<String>, Vec<Sym>) {
    let lower = sentence.to_lowercase();
    let mut context = Vec::new();
    let mut found = Vec::new();
    for e in graph.entities() {
        let Some(iri) = graph.resolve(e).as_iri() else {
            continue;
        };
        if !iri.starts_with(ns::SYNTH_ENTITY) {
            continue;
        }
        let name = graph.display_name(e);
        if name.len() < 3 || !lower.contains(&name.to_lowercase()) {
            continue;
        }
        found.push(e);
        for (p, o) in graph.outgoing(e).into_iter().take(max_triples_per_entity) {
            let Some(p_iri) = graph.resolve(p).as_iri() else {
                continue;
            };
            if !p_iri.starts_with(ns::SYNTH_VOCAB) {
                continue;
            }
            let obj = match graph.resolve(o) {
                kg::Term::Literal(l) => l.lexical.clone(),
                _ => graph.display_name(o),
            };
            context.push(format!(
                "{} {} {}",
                name,
                ns::humanize(ns::local_name(p_iri)),
                obj
            ));
        }
    }
    (context, found)
}

/// Dict-BERT-sim: definitions for rare terms. A term is "rare" when it
/// appears in the vocabulary map (class labels → comments) and not in the
/// common-words list. Returns `term: definition` lines.
pub fn rare_term_definitions(definitions: &[(String, String)], sentence: &str) -> Vec<String> {
    let lower = sentence.to_lowercase();
    definitions
        .iter()
        .filter(|(term, _)| lower.contains(&term.to_lowercase()))
        .map(|(term, def)| format!("{term}: {def}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};

    #[test]
    fn injection_finds_mentions_and_adds_facts() {
        let kg = movies(131, Scale::tiny());
        let g = &kg.graph;
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", ns::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let name = g.display_name(film);
        let sentence = format!("I watched {name} yesterday");
        let (context, found) = inject_knowledge(g, &sentence, 5);
        assert!(found.contains(&film));
        assert!(!context.is_empty());
        assert!(context.iter().all(|c| c.starts_with(&name)));
    }

    #[test]
    fn no_mentions_no_injection() {
        let kg = movies(131, Scale::tiny());
        let (context, found) = inject_knowledge(&kg.graph, "nothing relevant here", 5);
        assert!(context.is_empty());
        assert!(found.is_empty());
    }

    #[test]
    fn rare_terms_get_definitions() {
        let defs = vec![
            (
                "Ontology".to_string(),
                "a formal specification of concepts".to_string(),
            ),
            ("Zamboni".to_string(), "an ice resurfacer".to_string()),
        ];
        let lines = rare_term_definitions(&defs, "We built an ontology for films");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("Ontology:"));
    }
}
