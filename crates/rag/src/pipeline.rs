//! The RAG ladder: closed-book → Naive → Advanced → Modular (paper §3).

use kg::namespace as ns;
use kg::Graph;
use slm::Slm;

use crate::chunk::Chunk;
use crate::vector::VectorIndex;

/// Which rung of the RAG ladder to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RagMode {
    /// No retrieval: the LM answers from parametric knowledge alone.
    ClosedBook,
    /// Index → embed query → top-k chunks → generate \[30\].
    Naive,
    /// Naive plus query expansion from a first retrieval round and
    /// lexical+semantic reranking \[30\].
    Advanced,
    /// Router: structured KG lookup (KnowledgeGPT-style search program)
    /// when the query mentions a KG entity, vector retrieval otherwise
    /// \[30, 84\].
    Modular,
}

impl RagMode {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            RagMode::ClosedBook => "closed-book",
            RagMode::Naive => "naive-rag",
            RagMode::Advanced => "advanced-rag",
            RagMode::Modular => "modular-rag",
        }
    }

    /// All modes.
    pub fn all() -> [RagMode; 4] {
        [
            RagMode::ClosedBook,
            RagMode::Naive,
            RagMode::Advanced,
            RagMode::Modular,
        ]
    }
}

/// A RAG answer with provenance.
#[derive(Debug, Clone)]
pub struct RagAnswer {
    /// The answer text (empty = abstained).
    pub text: String,
    /// Chunk ids used as context.
    pub retrieved: Vec<usize>,
    /// Whether the LM answered without evidence (measurable hallucination).
    pub hallucinated: bool,
    /// Evidence confidence.
    pub confidence: f64,
    /// Which module produced the answer (`"vector"`, `"kg-lookup"`, `"parametric"`).
    pub module: &'static str,
    /// For the modular mode: the generated search program (KnowledgeGPT's
    /// "search code"), for observability.
    pub search_program: Option<String>,
}

/// A configured RAG pipeline over a chunked corpus and (optionally) a KG.
pub struct RagPipeline<'a> {
    slm: &'a Slm,
    chunks: Vec<Chunk>,
    index: VectorIndex,
    graph: Option<&'a Graph>,
    /// Top-k chunks to retrieve.
    pub k: usize,
}

impl<'a> RagPipeline<'a> {
    /// Build: embeds every chunk with the LM's embedder.
    pub fn new(slm: &'a Slm, chunks: Vec<Chunk>, graph: Option<&'a Graph>) -> Self {
        let vectors = chunks.iter().map(|c| slm.embed(&c.text)).collect();
        let index = VectorIndex::build(vectors, 0, 0);
        RagPipeline {
            slm,
            chunks,
            index,
            graph,
            k: 4,
        }
    }

    /// Answer a question under a mode.
    pub fn answer(&self, mode: RagMode, question: &str) -> RagAnswer {
        match mode {
            RagMode::ClosedBook => {
                let a = self.slm.answer(question, &[]);
                RagAnswer {
                    text: a.text,
                    retrieved: Vec::new(),
                    hallucinated: a.hallucinated,
                    confidence: a.confidence,
                    module: "parametric",
                    search_program: None,
                }
            }
            RagMode::Naive => {
                let hits = self.index.search_exact(&self.slm.embed(question), self.k);
                self.answer_with_chunks(question, &hits, "vector", None)
            }
            RagMode::Advanced => {
                // round 1: retrieve, harvest expansion terms
                let first = self.index.search_exact(&self.slm.embed(question), self.k);
                let mut expanded = question.to_string();
                for &(id, _) in first.iter().take(2) {
                    for span in slm::task::capitalized_spans(&self.chunks[id].text) {
                        if !expanded.contains(&span) {
                            expanded.push(' ');
                            expanded.push_str(&span);
                        }
                    }
                }
                // round 2: retrieve with the expanded query, then rerank by
                // blended semantic + lexical score against the ORIGINAL query
                let candidates = self
                    .index
                    .search_exact(&self.slm.embed(&expanded), self.k * 2);
                let lexical = slm::EvidenceIndex::from_sentences(
                    candidates
                        .iter()
                        .map(|&(id, _)| self.chunks[id].text.as_str()),
                );
                let mut reranked: Vec<(usize, f32)> = candidates
                    .iter()
                    .enumerate()
                    .map(|(pos, &(id, sem))| {
                        let lex = lexical
                            .retrieve(question, candidates.len())
                            .into_iter()
                            .find(|r| r.id == pos)
                            .map(|r| r.score as f32)
                            .unwrap_or(0.0);
                        (id, 0.5 * sem + 0.5 * lex)
                    })
                    .collect();
                reranked.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                reranked.truncate(self.k);
                self.answer_with_chunks(question, &reranked, "vector", None)
            }
            RagMode::Modular => {
                // router: does the question mention a KG entity?
                if let Some(graph) = self.graph {
                    if let Some(entity) = self.find_mentioned_entity(graph, question) {
                        let name = graph.display_name(entity);
                        let program = format!("Search(\"{name}\")");
                        let mut context = Vec::new();
                        for (p, o) in graph.outgoing(entity) {
                            let Some(p_iri) = graph.resolve(p).as_iri() else {
                                continue;
                            };
                            if !p_iri.starts_with(ns::SYNTH_VOCAB) {
                                continue;
                            }
                            let obj = match graph.resolve(o) {
                                kg::Term::Literal(l) => l.lexical.clone(),
                                _ => graph.display_name(o),
                            };
                            context.push(format!(
                                "{} {} {}",
                                name,
                                ns::humanize(ns::local_name(p_iri)),
                                obj
                            ));
                        }
                        let a = self.slm.answer(question, &context);
                        return RagAnswer {
                            text: a.text,
                            retrieved: Vec::new(),
                            hallucinated: a.hallucinated,
                            confidence: a.confidence,
                            module: "kg-lookup",
                            search_program: Some(program),
                        };
                    }
                }
                let hits = self.index.search_exact(&self.slm.embed(question), self.k);
                self.answer_with_chunks(question, &hits, "vector", None)
            }
        }
    }

    fn answer_with_chunks(
        &self,
        question: &str,
        hits: &[(usize, f32)],
        module: &'static str,
        search_program: Option<String>,
    ) -> RagAnswer {
        let context: Vec<String> = hits
            .iter()
            .map(|&(id, _)| self.chunks[id].text.clone())
            .collect();
        let a = self.slm.answer(question, &context);
        RagAnswer {
            text: a.text,
            retrieved: hits.iter().map(|&(id, _)| id).collect(),
            hallucinated: a.hallucinated,
            confidence: a.confidence,
            module,
            search_program,
        }
    }

    fn find_mentioned_entity(&self, graph: &Graph, question: &str) -> Option<kg::Sym> {
        let lower = question.to_lowercase();
        let mut best: Option<(usize, kg::Sym)> = None;
        for e in graph.entities() {
            let Some(iri) = graph.resolve(e).as_iri() else {
                continue;
            };
            if !iri.starts_with(ns::SYNTH_ENTITY) {
                continue;
            }
            let name = graph.display_name(e);
            if name.len() >= 3 && lower.contains(&name.to_lowercase()) {
                match best {
                    Some((len, _)) if name.len() <= len => {}
                    _ => best = Some((name.len(), e)),
                }
            }
        }
        best.map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_sentences;
    use kg::synth::{movies, Scale};
    use kgextract::testgen::{corpus_sentences, entity_surface_forms};

    struct Fixture {
        kg: kg::synth::SynthKg,
        slm: Slm,
        corpus_text: String,
        question: String,
        gold: String,
    }

    /// The LM's parametric corpus EXCLUDES the documents, so closed-book
    /// answers about corpus facts must hallucinate or abstain — the
    /// measurable setup for "RAG mitigates hallucination".
    fn fixture() -> Fixture {
        let kg = movies(141, Scale::tiny());
        let sentences = corpus_sentences(&kg.graph, &kg.ontology);
        let corpus_text = sentences.join(". ");
        let slm = Slm::builder()
            .corpus(["films are a kind of art", "directors make films"]) // generic only
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .hallucinate(true)
            .build();
        // gold: a directedBy fact
        let g = &kg.graph;
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", ns::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let directed = g
            .pool()
            .get_iri(&format!("{}directedBy", ns::SYNTH_VOCAB))
            .unwrap();
        let director = g.objects(film, directed)[0];
        let question = format!("Who is {} directed by?", g.display_name(film));
        let gold = g.display_name(director);
        Fixture {
            kg,
            slm,
            corpus_text,
            question,
            gold,
        }
    }

    #[test]
    fn closed_book_hallucinates_but_rag_answers_correctly() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));

        let closed = rag.answer(RagMode::ClosedBook, &f.question);
        assert!(
            closed.hallucinated || !closed.text.contains(&f.gold),
            "closed book should not know: {closed:?}"
        );

        for mode in [RagMode::Naive, RagMode::Advanced, RagMode::Modular] {
            let a = rag.answer(mode, &f.question);
            assert!(
                a.text.contains(&f.gold),
                "{} failed: {:?} (gold {})",
                mode.name(),
                a,
                f.gold
            );
            assert!(!a.hallucinated, "{}", mode.name());
        }
    }

    #[test]
    fn modular_routes_entity_questions_to_kg() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));
        let a = rag.answer(RagMode::Modular, &f.question);
        assert_eq!(a.module, "kg-lookup");
        assert!(a
            .search_program
            .as_deref()
            .unwrap_or("")
            .starts_with("Search("));
    }

    #[test]
    fn modular_without_entity_falls_back_to_vector() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));
        let a = rag.answer(RagMode::Modular, "what do directors do?");
        assert_eq!(a.module, "vector");
    }

    #[test]
    fn naive_retrieves_k_chunks() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let n = chunks.len();
        let rag = RagPipeline::new(&f.slm, chunks, None);
        let a = rag.answer(RagMode::Naive, &f.question);
        assert!(a.retrieved.len() <= 4);
        assert!(a.retrieved.iter().all(|&id| id < n));
    }
}
