//! The RAG ladder: closed-book → Naive → Advanced → Modular (paper §3).
//!
//! Orthogonally to the *capability* ladder above, every answer walks a
//! *degradation* ladder (see `docs/resilience.md`): KG lookup → vector
//! retrieval → closed-book generation → diagnostic apology. Rungs knocked
//! out by a seeded [`resilience::FaultInjector`] or returning nothing are
//! recorded in the answer's [`resilience::DegradationTrace`] and as
//! `resilience.*` counters.

use kg::namespace as ns;
use kg::Graph;
use resilience::{CancelToken, DegradationTrace, FaultInjector, FaultPoint, NoFaults};
use slm::Slm;

use crate::chunk::Chunk;
use crate::vector::VectorIndex;

/// The production default injector.
static NO_FAULTS: NoFaults = NoFaults;

/// Which rung of the RAG ladder to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RagMode {
    /// No retrieval: the LM answers from parametric knowledge alone.
    ClosedBook,
    /// Index → embed query → top-k chunks → generate \[30\].
    Naive,
    /// Naive plus query expansion from a first retrieval round and
    /// lexical+semantic reranking \[30\].
    Advanced,
    /// Router: structured KG lookup (KnowledgeGPT-style search program)
    /// when the query mentions a KG entity, vector retrieval otherwise
    /// \[30, 84\].
    Modular,
}

impl RagMode {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            RagMode::ClosedBook => "closed-book",
            RagMode::Naive => "naive-rag",
            RagMode::Advanced => "advanced-rag",
            RagMode::Modular => "modular-rag",
        }
    }

    /// All modes.
    pub fn all() -> [RagMode; 4] {
        [
            RagMode::ClosedBook,
            RagMode::Naive,
            RagMode::Advanced,
            RagMode::Modular,
        ]
    }
}

/// A RAG answer with provenance.
#[derive(Debug, Clone)]
pub struct RagAnswer {
    /// The answer text (empty = abstained).
    pub text: String,
    /// Chunk ids used as context.
    pub retrieved: Vec<usize>,
    /// How many retrieval candidates were considered before selection
    /// (≥ `retrieved.len()`; reranking modes consider more than they keep,
    /// KG lookup counts the entity's facts).
    pub candidates: usize,
    /// Characters of retrieved context injected into the generation
    /// prompt (0 for closed-book).
    pub context_chars: usize,
    /// Whether the LM answered without evidence (measurable hallucination).
    pub hallucinated: bool,
    /// Evidence confidence.
    pub confidence: f64,
    /// Which module produced the answer (`"vector"`, `"kg-lookup"`, `"parametric"`).
    pub module: &'static str,
    /// For the modular mode: the generated search program (KnowledgeGPT's
    /// "search code"), for observability.
    pub search_program: Option<String>,
    /// The fallback rungs this answer walked down, and why. Empty when
    /// the mode's primary route answered.
    pub degradation: DegradationTrace,
}

/// A configured RAG pipeline over a chunked corpus and (optionally) a KG.
pub struct RagPipeline<'a> {
    slm: &'a Slm,
    chunks: Vec<Chunk>,
    index: VectorIndex,
    graph: Option<&'a Graph>,
    faults: &'a dyn FaultInjector,
    cancel: Option<CancelToken>,
    /// Top-k chunks to retrieve.
    pub k: usize,
}

impl<'a> RagPipeline<'a> {
    /// Build: embeds every chunk with the LM's embedder.
    pub fn new(slm: &'a Slm, chunks: Vec<Chunk>, graph: Option<&'a Graph>) -> Self {
        let vectors = chunks.iter().map(|c| slm.embed(&c.text)).collect();
        let index = VectorIndex::build(vectors, 0, 0);
        RagPipeline {
            slm,
            chunks,
            index,
            graph,
            faults: &NO_FAULTS,
            cancel: None,
            k: 4,
        }
    }

    /// Inject a fault schedule (chaos testing). Production code keeps the
    /// [`NoFaults`] default.
    pub fn with_faults(mut self, faults: &'a dyn FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Enable request coalescing on the vector index: concurrent answers
    /// (e.g. serve workers sharing one pipeline) that retrieve within one
    /// time/size window are serviced by a single batched kernel pass.
    /// Results stay bit-identical to uncoalesced retrieval (see
    /// [`crate::batch`]); a solo caller pays at most the window's
    /// `max_wait` in extra latency.
    pub fn with_coalescing(mut self, window: crate::batch::BatchWindow) -> Self {
        self.index = self.index.with_coalescing(window);
        self
    }

    /// The pipeline's vector index — serve surfaces its IVF fallback
    /// reason and coalescing window in `stats` replies.
    pub fn vector_index(&self) -> &VectorIndex {
        &self.index
    }

    /// Attach a cancellation token, checked before each answer's ladder
    /// runs. A serving front end trips it when the client disconnects, so
    /// an abandoned question degrades straight to the apology rung
    /// instead of paying for retrieval + generation (see
    /// `docs/serving.md`).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Answer a question under a mode.
    pub fn answer(&self, mode: RagMode, question: &str) -> RagAnswer {
        self.answer_observed(mode, question, &obs::Span::disabled())
    }

    /// Answer a question under a mode, recording retrieval work on an
    /// observability span: a `rag.answer` child carries the mode, chunk
    /// counts, retrieval candidates, and injected-context size, and the
    /// tracer's `rag.*` counters accumulate across answers (catalogue in
    /// `docs/observability.md`). With a disabled span this is exactly
    /// [`RagPipeline::answer`].
    pub fn answer_observed(&self, mode: RagMode, question: &str, parent: &obs::Span) -> RagAnswer {
        let span = parent.child("rag.answer");
        span.set("mode", mode.name());
        span.set("chunks_indexed", self.chunks.len());
        span.set("k", self.k);
        span.count("rag.answers", 1);
        let mut trace = DegradationTrace::new();
        let mut answer = if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            fall(&span, &mut trace, mode.name(), "cancelled by caller");
            self.apology_rung(&span, &mut trace)
        } else {
            self.answer_inner(mode, question, &span, &mut trace)
        };
        if trace.degraded() {
            span.set("degraded", true);
            span.set("degradation", trace.render());
        }
        answer.degradation = trace;
        span.set("module", answer.module);
        span.set("candidates", answer.candidates);
        span.set("retrieved", answer.retrieved.len());
        span.set("context_chars", answer.context_chars);
        span.set("hallucinated", answer.hallucinated);
        span.set("confidence", answer.confidence);
        span.count("rag.retrieval_candidates", answer.candidates as u64);
        span.count("rag.chunks_injected", answer.retrieved.len() as u64);
        span.count("rag.context_chars", answer.context_chars as u64);
        if answer.hallucinated {
            span.count("rag.hallucinations", 1);
        }
        if answer.module == "kg-lookup" {
            span.count("rag.kg_lookups", 1);
        }
        answer
    }

    fn answer_inner(
        &self,
        mode: RagMode,
        question: &str,
        span: &obs::Span,
        trace: &mut DegradationTrace,
    ) -> RagAnswer {
        match mode {
            RagMode::ClosedBook => self.closed_book_rung(question, span, trace),
            RagMode::Naive => {
                if self.fault(span, FaultPoint::Exec) {
                    fall(span, trace, "vector", "fault injected: exec");
                    return self.closed_book_rung(question, span, trace);
                }
                let hits =
                    self.index
                        .search_coalesced_observed(&self.slm.embed(question), self.k, span);
                let candidates = hits.len();
                self.vector_rung(question, &hits, candidates, span, trace)
            }
            RagMode::Advanced => {
                if self.fault(span, FaultPoint::Exec) {
                    fall(span, trace, "vector", "fault injected: exec");
                    return self.closed_book_rung(question, span, trace);
                }
                // round 1: retrieve, harvest expansion terms (the question
                // embedding is reused for the semantic rerank leg below)
                let q_vec = self.slm.embed(question);
                let first = self.index.search_coalesced_observed(&q_vec, self.k, span);
                let mut expanded = question.to_string();
                for &(id, _) in first.iter().take(2) {
                    for term in slm::task::capitalized_spans(&self.chunks[id].text) {
                        if !expanded.contains(&term) {
                            expanded.push(' ');
                            expanded.push_str(&term);
                        }
                    }
                }
                span.set("expanded_query_chars", expanded.len());
                // round 2: retrieve with the expanded query, then rerank by
                // blended semantic + lexical score against the ORIGINAL query
                let candidates = self.index.search_coalesced_observed(
                    &self.slm.embed(&expanded),
                    self.k * 2,
                    span,
                );
                let lexical = slm::EvidenceIndex::from_sentences(
                    candidates
                        .iter()
                        .map(|&(id, _)| self.chunks[id].text.as_str()),
                );
                // lexical pass once for the whole pool (it was previously
                // re-run per candidate, an O(N²) inner loop) …
                let mut lex = vec![0.0f32; candidates.len()];
                for r in lexical.retrieve(question, candidates.len()) {
                    lex[r.id] = r.score as f32;
                }
                // … and the semantic leg against the ORIGINAL question in
                // one gathered-row batched kernel call (the round-2 scores
                // measure similarity to the expanded query, not the one
                // the user asked)
                let ids: Vec<usize> = candidates.iter().map(|&(id, _)| id).collect();
                let sem = self.index.score_docs(&q_vec, &ids);
                let mut reranked: Vec<(usize, f32)> = ids
                    .iter()
                    .zip(&sem)
                    .zip(&lex)
                    .map(|((&id, &s), &l)| (id, 0.5 * s + 0.5 * l))
                    .collect();
                // total-order comparator: a NaN blended score (zero-vector
                // embedding) ranks deterministically instead of leaking
                // the candidate iteration order
                reranked.sort_by(crate::vector::cmp_hits);
                let candidates = reranked.len();
                reranked.truncate(self.k);
                self.vector_rung(question, &reranked, candidates, span, trace)
            }
            RagMode::Modular => {
                // rung 1: structured KG lookup, when the question mentions
                // a KG entity
                if self.fault(span, FaultPoint::Retrieval) {
                    fall(span, trace, "kg-lookup", "fault injected: retrieval");
                } else if let Some(graph) = self.graph {
                    if let Some(entity) = self.find_mentioned_entity(graph, question) {
                        let name = graph.display_name(entity);
                        let program = format!("Search(\"{name}\")");
                        span.set("search_program", program.as_str());
                        let mut context = Vec::new();
                        for (p, o) in graph.outgoing(entity) {
                            let Some(p_iri) = graph.resolve(p).as_iri() else {
                                continue;
                            };
                            if !p_iri.starts_with(ns::SYNTH_VOCAB) {
                                continue;
                            }
                            let obj = match graph.resolve(o) {
                                kg::Term::Literal(l) => l.lexical.clone(),
                                _ => graph.display_name(o),
                            };
                            context.push(format!(
                                "{} {} {}",
                                name,
                                ns::humanize(ns::local_name(p_iri)),
                                obj
                            ));
                        }
                        let context_chars = context.iter().map(String::len).sum();
                        let a = self.slm.answer(question, &context);
                        // When the LM abstains over non-empty facts, serve
                        // the facts themselves (template QA) rather than
                        // falling: the lookup did find structured knowledge.
                        let text = if a.text.is_empty() {
                            context.join(". ")
                        } else {
                            a.text
                        };
                        if text.is_empty() {
                            fall(span, trace, "kg-lookup", "no facts for entity");
                        } else {
                            trace.serve("kg-lookup");
                            return RagAnswer {
                                text,
                                retrieved: Vec::new(),
                                candidates: context.len(),
                                context_chars,
                                hallucinated: a.hallucinated,
                                confidence: a.confidence,
                                module: "kg-lookup",
                                search_program: Some(program),
                                degradation: DegradationTrace::new(),
                            };
                        }
                    } else {
                        fall(span, trace, "kg-lookup", "no KG entity mentioned");
                    }
                } else {
                    fall(span, trace, "kg-lookup", "no KG attached");
                }
                // rung 2: vector retrieval
                if self.fault(span, FaultPoint::Exec) {
                    fall(span, trace, "vector", "fault injected: exec");
                    return self.closed_book_rung(question, span, trace);
                }
                let hits =
                    self.index
                        .search_coalesced_observed(&self.slm.embed(question), self.k, span);
                let candidates = hits.len();
                self.vector_rung(question, &hits, candidates, span, trace)
            }
        }
    }

    /// The vector-retrieval rung: generate over the retrieved chunks,
    /// falling to closed-book if the LM abstains.
    fn vector_rung(
        &self,
        question: &str,
        hits: &[(usize, f32)],
        candidates: usize,
        span: &obs::Span,
        trace: &mut DegradationTrace,
    ) -> RagAnswer {
        let a = self.answer_with_chunks(question, hits, candidates, "vector", None);
        if a.text.is_empty() {
            fall(span, trace, "vector", "abstained");
            return self.closed_book_rung(question, span, trace);
        }
        trace.serve("vector");
        a
    }

    /// Rungs 3 and 4 of the degradation ladder: closed-book generation,
    /// then a diagnostic apology naming every failed rung.
    fn closed_book_rung(
        &self,
        question: &str,
        span: &obs::Span,
        trace: &mut DegradationTrace,
    ) -> RagAnswer {
        if self.fault(span, FaultPoint::Generation) {
            fall(span, trace, "closed-book", "fault injected: generation");
            return self.apology_rung(span, trace);
        }
        let a = self.slm.answer(question, &[]);
        if a.text.is_empty() {
            fall(span, trace, "closed-book", "abstained");
            return self.apology_rung(span, trace);
        }
        trace.serve("closed-book");
        RagAnswer {
            text: a.text,
            retrieved: Vec::new(),
            candidates: 0,
            context_chars: 0,
            hallucinated: a.hallucinated,
            confidence: a.confidence,
            module: "parametric",
            search_program: None,
            degradation: DegradationTrace::new(),
        }
    }

    /// The bottom rung: a diagnostic apology naming every failed rung.
    fn apology_rung(&self, span: &obs::Span, trace: &mut DegradationTrace) -> RagAnswer {
        trace.serve("apology");
        span.count("rag.apologies", 1);
        RagAnswer {
            text: format!(
                "Sorry — I could not answer that. Attempts: {}.",
                trace.render()
            ),
            retrieved: Vec::new(),
            candidates: 0,
            context_chars: 0,
            hallucinated: false,
            confidence: 0.0,
            module: "apology",
            search_program: None,
            degradation: DegradationTrace::new(),
        }
    }

    /// Consult the fault injector, counting injected faults.
    fn fault(&self, span: &obs::Span, point: FaultPoint) -> bool {
        if self.faults.should_fail(point) {
            span.count("resilience.faults_injected", 1);
            true
        } else {
            false
        }
    }

    fn answer_with_chunks(
        &self,
        question: &str,
        hits: &[(usize, f32)],
        candidates: usize,
        module: &'static str,
        search_program: Option<String>,
    ) -> RagAnswer {
        let context: Vec<String> = hits
            .iter()
            .map(|&(id, _)| self.chunks[id].text.clone())
            .collect();
        let context_chars = context.iter().map(String::len).sum();
        let a = self.slm.answer(question, &context);
        RagAnswer {
            text: a.text,
            retrieved: hits.iter().map(|&(id, _)| id).collect(),
            candidates,
            context_chars,
            hallucinated: a.hallucinated,
            confidence: a.confidence,
            module,
            search_program,
            degradation: DegradationTrace::new(),
        }
    }

    fn find_mentioned_entity(&self, graph: &Graph, question: &str) -> Option<kg::Sym> {
        let lower = question.to_lowercase();
        let mut best: Option<(usize, kg::Sym)> = None;
        for e in graph.entities() {
            let Some(iri) = graph.resolve(e).as_iri() else {
                continue;
            };
            if !iri.starts_with(ns::SYNTH_ENTITY) {
                continue;
            }
            let name = graph.display_name(e);
            if name.len() >= 3 && lower.contains(&name.to_lowercase()) {
                match best {
                    Some((len, _)) if name.len() <= len => {}
                    _ => best = Some((name.len(), e)),
                }
            }
        }
        best.map(|(_, e)| e)
    }
}

/// Record one ladder fall: append it to the trace and bump the
/// `resilience.*` fallback counters.
fn fall(
    span: &obs::Span,
    trace: &mut DegradationTrace,
    rung: &'static str,
    reason: impl Into<String>,
) {
    span.count("resilience.fallbacks", 1);
    span.count(&format!("resilience.fallback.{rung}"), 1);
    trace.fall(rung, reason);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_sentences;
    use kg::synth::{movies, Scale};
    use kgextract::testgen::{corpus_sentences, entity_surface_forms};

    struct Fixture {
        kg: kg::synth::SynthKg,
        slm: Slm,
        corpus_text: String,
        question: String,
        gold: String,
    }

    /// The LM's parametric corpus EXCLUDES the documents, so closed-book
    /// answers about corpus facts must hallucinate or abstain — the
    /// measurable setup for "RAG mitigates hallucination".
    fn fixture() -> Fixture {
        let kg = movies(141, Scale::tiny());
        let sentences = corpus_sentences(&kg.graph, &kg.ontology);
        let corpus_text = sentences.join(". ");
        let slm = Slm::builder()
            .corpus(["films are a kind of art", "directors make films"]) // generic only
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .hallucinate(true)
            .build();
        // gold: a directedBy fact
        let g = &kg.graph;
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", ns::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let directed = g
            .pool()
            .get_iri(&format!("{}directedBy", ns::SYNTH_VOCAB))
            .unwrap();
        let director = g.objects(film, directed)[0];
        let question = format!("Who is {} directed by?", g.display_name(film));
        let gold = g.display_name(director);
        Fixture {
            kg,
            slm,
            corpus_text,
            question,
            gold,
        }
    }

    #[test]
    fn closed_book_hallucinates_but_rag_answers_correctly() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));

        let closed = rag.answer(RagMode::ClosedBook, &f.question);
        assert!(
            closed.hallucinated || !closed.text.contains(&f.gold),
            "closed book should not know: {closed:?}"
        );

        for mode in [RagMode::Naive, RagMode::Advanced, RagMode::Modular] {
            let a = rag.answer(mode, &f.question);
            assert!(
                a.text.contains(&f.gold),
                "{} failed: {:?} (gold {})",
                mode.name(),
                a,
                f.gold
            );
            assert!(!a.hallucinated, "{}", mode.name());
        }
    }

    #[test]
    fn modular_routes_entity_questions_to_kg() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));
        let a = rag.answer(RagMode::Modular, &f.question);
        assert_eq!(a.module, "kg-lookup");
        assert!(a
            .search_program
            .as_deref()
            .unwrap_or("")
            .starts_with("Search("));
    }

    #[test]
    fn modular_without_entity_falls_back_to_vector() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));
        let a = rag.answer(RagMode::Modular, "what do directors do?");
        assert_eq!(a.module, "vector");
    }

    #[test]
    fn observed_answer_records_retrieval_span_and_counters() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));
        let (tracer, recorder) = obs::Tracer::in_memory();
        let root = tracer.span("test");
        let a = rag.answer_observed(RagMode::Naive, &f.question, &root);
        root.finish();
        let span = recorder.take().pop().expect("root span recorded");
        let rag_span = span.find("rag.answer").expect("rag.answer child");
        assert_eq!(
            rag_span.attr("mode").and_then(obs::AttrValue::as_str),
            Some("naive-rag")
        );
        assert_eq!(
            rag_span.attr_u64("retrieved"),
            Some(a.retrieved.len() as u64)
        );
        assert!(rag_span.attr_u64("candidates").unwrap() >= a.retrieved.len() as u64);
        assert!(rag_span.attr_u64("context_chars").unwrap() > 0);
        assert_eq!(
            a.context_chars,
            rag_span.attr_u64("context_chars").unwrap() as usize
        );
        assert_eq!(tracer.registry().counter("rag.answers"), 1);
        assert_eq!(
            tracer.registry().counter("rag.chunks_injected"),
            a.retrieved.len() as u64
        );
        assert!(tracer.registry().counter("rag.context_chars") > 0);
    }

    #[test]
    fn candidates_and_context_sizes_are_populated_per_mode() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));
        let closed = rag.answer(RagMode::ClosedBook, &f.question);
        assert_eq!((closed.candidates, closed.context_chars), (0, 0));
        let advanced = rag.answer(RagMode::Advanced, &f.question);
        // reranking considered up to 2k candidates, kept at most k
        assert!(advanced.candidates >= advanced.retrieved.len());
        assert!(advanced.context_chars > 0);
        let modular = rag.answer(RagMode::Modular, &f.question);
        assert_eq!(modular.module, "kg-lookup");
        assert!(modular.candidates > 0, "KG facts count as candidates");
        assert!(modular.context_chars > 0);
    }

    #[test]
    fn coalesced_pipeline_answers_match_uncoalesced() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let plain = RagPipeline::new(&f.slm, chunks.clone(), Some(&f.kg.graph));
        let coalesced = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph))
            .with_coalescing(crate::batch::BatchWindow::default());
        assert!(coalesced.vector_index().coalescing_window().is_some());
        assert!(plain.vector_index().coalescing_window().is_none());
        for mode in RagMode::all() {
            let a = plain.answer(mode, &f.question);
            let b = coalesced.answer(mode, &f.question);
            assert_eq!(a.text, b.text, "{}", mode.name());
            assert_eq!(a.retrieved, b.retrieved, "{}", mode.name());
            assert_eq!(a.candidates, b.candidates, "{}", mode.name());
        }
    }

    #[test]
    fn advanced_rerank_orders_by_blend_against_original_question() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let rag = RagPipeline::new(&f.slm, chunks, Some(&f.kg.graph));
        let a = rag.answer(RagMode::Advanced, &f.question);
        assert_eq!(a.module, "vector");
        assert!(a.text.contains(&f.gold), "{a:?}");
        // the kept set is a subset of the candidate pool, ranked
        assert!(a.retrieved.len() <= rag.k);
        assert!(a.candidates >= a.retrieved.len());
    }

    #[test]
    fn naive_retrieves_k_chunks() {
        let f = fixture();
        let chunks = chunk_sentences(&f.corpus_text, 2, 0);
        let n = chunks.len();
        let rag = RagPipeline::new(&f.slm, chunks, None);
        let a = rag.answer(RagMode::Naive, &f.question);
        assert!(a.retrieved.len() <= 4);
        assert!(a.retrieved.iter().all(|&id| id < n));
    }
}
