//! The Figure 1 taxonomy, as the single source of truth.
//!
//! Every node records its family, its research-question number (the pink
//! highlight in Figure 1), whether it is *new in this survey* (the star
//! markers), and which workspace crate implements it — so drift between
//! the paper's taxonomy and the codebase is visible in one place.

use serde::Serialize;

/// The three top-level interplay families of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Family {
    /// LLMs used to build / refine KGs (paper §2).
    LlmForKg,
    /// KGs used to improve LLMs (paper §3).
    KgEnhancedLlm,
    /// Collaborative use of both (paper §4).
    Cooperation,
}

impl Family {
    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Family::LlmForKg => "LLM for KG",
            Family::KgEnhancedLlm => "KG-enhanced LLM",
            Family::Cooperation => "LLM-KG Cooperation",
        }
    }
}

/// One node of the taxonomy.
#[derive(Debug, Clone, Serialize)]
pub struct TaxonomyNode {
    /// Family this node belongs to.
    pub family: Family,
    /// Parent category name (`None` for category roots).
    pub parent: Option<&'static str>,
    /// Node name as printed in Figure 1 / Table 1.
    pub name: &'static str,
    /// Research question number (1–6) if this node is one of the paper's
    /// formulated research questions.
    pub research_question: Option<u8>,
    /// Starred in Figure 1: not addressed by previous survey papers.
    pub new_in_survey: bool,
    /// The workspace crate (and module) implementing this node.
    pub implemented_by: &'static str,
    /// Paper section covering the node.
    pub section: &'static str,
}

/// The full Figure 1 taxonomy.
pub fn taxonomy() -> Vec<TaxonomyNode> {
    use Family::*;
    let n = |family, parent, name, research_question, new_in_survey, implemented_by, section| {
        TaxonomyNode {
            family,
            parent,
            name,
            research_question,
            new_in_survey,
            implemented_by,
            section,
        }
    };
    vec![
        // ── LLM for KG ────────────────────────────────────────────────
        n(
            LlmForKg,
            None,
            "KG Construction",
            None,
            false,
            "kgextract",
            "§2.1",
        ),
        n(
            LlmForKg,
            Some("KG Construction"),
            "Ontology Creation",
            Some(2),
            false,
            "kgonto",
            "§2.1.1",
        ),
        n(
            LlmForKg,
            Some("KG Construction"),
            "Entity Extraction and Alignment",
            None,
            false,
            "kgextract::ner, kgextract::align",
            "§2.1.2",
        ),
        n(
            LlmForKg,
            Some("KG Construction"),
            "Relation Extraction",
            None,
            false,
            "kgextract::relation",
            "§2.1.3",
        ),
        n(
            LlmForKg,
            None,
            "KG-to-Text Generation",
            Some(1),
            false,
            "kgtext",
            "§2.2",
        ),
        n(
            LlmForKg,
            None,
            "KG Reasoning",
            None,
            false,
            "kgreason",
            "§2.3",
        ),
        n(
            LlmForKg,
            None,
            "KG Completion",
            None,
            false,
            "kgcomplete",
            "§2.4",
        ),
        n(
            LlmForKg,
            Some("KG Completion"),
            "Entity, Relation and Triple Classification",
            None,
            false,
            "kgcomplete::classify",
            "§2.4",
        ),
        n(
            LlmForKg,
            Some("KG Completion"),
            "Entity Prediction",
            None,
            false,
            "kgcomplete::link",
            "§2.4",
        ),
        n(
            LlmForKg,
            Some("KG Completion"),
            "Relation Prediction",
            None,
            false,
            "kgcomplete::link",
            "§2.4",
        ),
        n(
            LlmForKg,
            None,
            "KG Embedding",
            None,
            false,
            "kgembed",
            "§2.5",
        ),
        n(
            LlmForKg,
            None,
            "KG Validation",
            None,
            true,
            "kgvalidate",
            "§2.6",
        ),
        n(
            LlmForKg,
            Some("KG Validation"),
            "Fact Checking",
            Some(4),
            true,
            "kgvalidate::factcheck",
            "§2.6.1",
        ),
        n(
            LlmForKg,
            Some("KG Validation"),
            "Inconsistency Detection",
            Some(3),
            true,
            "kgvalidate::inconsistency",
            "§2.6.2",
        ),
        // ── KG-enhanced LLM ──────────────────────────────────────────
        n(
            KgEnhancedLlm,
            None,
            "KG-enhanced LLM",
            None,
            false,
            "kgrag",
            "§3",
        ),
        // ── LLM-KG Cooperation ───────────────────────────────────────
        n(
            Cooperation,
            None,
            "KG Question Answering",
            None,
            false,
            "kgqa",
            "§4.1",
        ),
        n(
            Cooperation,
            Some("KG Question Answering"),
            "Multi-Hop Question Generation",
            None,
            true,
            "kgqa::qgen",
            "§4.1.1",
        ),
        n(
            Cooperation,
            Some("KG Question Answering"),
            "Complex Question Answering",
            Some(5),
            true,
            "kgqa::multihop",
            "§4.1.2",
        ),
        n(
            Cooperation,
            Some("KG Question Answering"),
            "Query Generation from natural text",
            Some(6),
            true,
            "kgqa::text2sparql",
            "§4.1.3",
        ),
        n(
            Cooperation,
            Some("KG Question Answering"),
            "Querying LLMs with SPARQL",
            None,
            true,
            "kgqa::hybrid",
            "§4.1.4",
        ),
        n(
            Cooperation,
            Some("KG Question Answering"),
            "Knowledge Graph Chatbots",
            None,
            true,
            "kgqa::chatbot",
            "§4.1.5",
        ),
    ]
}

/// Look up a taxonomy node by name.
pub fn node(name: &str) -> Option<TaxonomyNode> {
    taxonomy().into_iter().find(|n| n.name == name)
}

/// Render the taxonomy as an indented text tree (the Figure 1 regenerator).
pub fn render_tree() -> String {
    let nodes = taxonomy();
    let mut out = String::new();
    for family in [Family::LlmForKg, Family::KgEnhancedLlm, Family::Cooperation] {
        out.push_str(family.name());
        out.push('\n');
        for root in nodes
            .iter()
            .filter(|n| n.family == family && n.parent.is_none())
        {
            out.push_str(&format!("├── {}{}\n", root.name, markers(root)));
            let children: Vec<&TaxonomyNode> = nodes
                .iter()
                .filter(|n| n.parent == Some(root.name))
                .collect();
            for child in &children {
                out.push_str(&format!("│   ├── {}{}\n", child.name, markers(child)));
            }
        }
    }
    out
}

fn markers(n: &TaxonomyNode) -> String {
    let mut m = String::new();
    if let Some(rq) = n.research_question {
        m.push_str(&format!(" [RQ{rq}]"));
    }
    if n.new_in_survey {
        m.push_str(" ★");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_has_three_families() {
        let t = taxonomy();
        for f in [Family::LlmForKg, Family::KgEnhancedLlm, Family::Cooperation] {
            assert!(t.iter().any(|n| n.family == f), "{:?} missing", f);
        }
    }

    #[test]
    fn all_six_research_questions_present_exactly_once_each() {
        let t = taxonomy();
        for rq in 1..=6u8 {
            let hits: Vec<_> = t
                .iter()
                .filter(|n| n.research_question == Some(rq))
                .collect();
            assert_eq!(
                hits.len(),
                1,
                "RQ{rq} must map to exactly one node: {hits:?}"
            );
        }
    }

    #[test]
    fn starred_nodes_match_paper() {
        // the paper stars KG Validation (both children) and the new KGQA
        // subcategories
        let t = taxonomy();
        let starred: Vec<&str> = t
            .iter()
            .filter(|n| n.new_in_survey)
            .map(|n| n.name)
            .collect();
        assert!(starred.contains(&"Fact Checking"));
        assert!(starred.contains(&"Inconsistency Detection"));
        assert!(starred.contains(&"Multi-Hop Question Generation"));
        assert!(starred.contains(&"Querying LLMs with SPARQL"));
        assert!(starred.contains(&"Knowledge Graph Chatbots"));
        assert!(!starred.contains(&"KG Embedding"));
    }

    #[test]
    fn every_node_is_implemented_somewhere() {
        for n in taxonomy() {
            assert!(!n.implemented_by.is_empty(), "{} unimplemented", n.name);
        }
    }

    #[test]
    fn parents_resolve() {
        let t = taxonomy();
        for n in &t {
            if let Some(p) = n.parent {
                assert!(t.iter().any(|m| m.name == p), "missing parent {p}");
            }
        }
    }

    #[test]
    fn tree_renders_all_families_and_stars() {
        let tree = render_tree();
        assert!(tree.contains("LLM for KG"));
        assert!(tree.contains("KG-enhanced LLM"));
        assert!(tree.contains("LLM-KG Cooperation"));
        assert!(tree.contains('★'));
        assert!(tree.contains("[RQ6]"));
    }

    #[test]
    fn node_lookup() {
        assert!(node("KG Embedding").is_some());
        assert!(node("Nonexistent").is_none());
    }
}
