//! The open challenges registry (paper §5.2).

use serde::Serialize;

/// One open challenge the survey identifies.
#[derive(Debug, Clone, Serialize)]
pub struct Challenge {
    /// Short identifier.
    pub id: &'static str,
    /// Challenge statement, paraphrasing §5.2.
    pub statement: &'static str,
    /// Which workspace experiment (if any) probes the challenge.
    pub probed_by: Option<&'static str>,
}

/// All open challenges of §5.2.
pub fn challenges() -> Vec<Challenge> {
    vec![
        Challenge {
            id: "reliable-knowledge-injection",
            statement: "Incorporate knowledge from KGs reliably into LLM answers \
                        instead of storing facts in model parameters.",
            probed_by: Some("E10 (RAG ablation: retrieval vs parametric answers)"),
        },
        Challenge {
            id: "smaller-models",
            statement: "Shrink LLMs without losing reasoning capability by excluding \
                        KG-stored facts from training data.",
            probed_by: Some("E10 (closed-book vs retrieval-augmented accuracy)"),
        },
        Challenge {
            id: "core-language-fragments",
            statement: "Train on core fragments of query languages (coreSPARQL, XPath \
                        without redundant constructs) to reduce parameter needs.",
            probed_by: Some("E13 (grammar-constrained SPARQL generation)"),
        },
        Challenge {
            id: "satisfiable-queries-only",
            statement: "Prefer satisfiable queries in training data — queries that can \
                        return results.",
            probed_by: Some("E13 (execution-accuracy metric rejects unsatisfiable queries)"),
        },
        Challenge {
            id: "knowledge-language-separation",
            statement: "Separate knowledge (KGs) from language understanding (minimal \
                        high-quality training set), making domain fine-tuning obsolete.",
            probed_by: Some("slm design: enumerable knowledge + generic language layer"),
        },
        Challenge {
            id: "personal-kg-llms",
            statement: "Personal-KG-enhanced LLMs imitating an individual's style with \
                        private knowledge.",
            probed_by: None,
        },
        Challenge {
            id: "agi-architectures",
            statement: "Brain-inspired architectures where LLMs only verbalize and KGs \
                        administrate knowledge.",
            probed_by: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_challenges_registered() {
        assert_eq!(challenges().len(), 7);
    }

    #[test]
    fn most_challenges_are_probed_by_experiments() {
        let probed = challenges()
            .iter()
            .filter(|c| c.probed_by.is_some())
            .count();
        assert!(probed >= 5);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = challenges().iter().map(|c| c.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
