//! Table 1: the survey-coverage matrix, transcribed from the paper.

use serde::Serialize;

/// The five columns of Table 1, in paper order: the four prior surveys
/// (`[68]` Pan et al. roadmap, `[67]` Pan et al. opportunities, `[41]` Hu
/// et al., `[90]` Yang et al.) and this survey.
pub const SURVEYS: [&str; 5] = ["[68]", "[67]", "[41]", "[90]", "Our Survey"];

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageRow {
    /// Main category (left column).
    pub main: &'static str,
    /// Subcategory.
    pub sub: &'static str,
    /// Coverage flags aligned with [`SURVEYS`].
    pub covered: [bool; 5],
}

const T: bool = true;
const F: bool = false;

/// The full Table 1 as printed in the paper.
pub fn coverage_matrix() -> Vec<CoverageRow> {
    let row = |main, sub, covered| CoverageRow { main, sub, covered };
    vec![
        row(
            "KG Construction",
            "Relation and Attribute Extraction",
            [T, T, F, F, T],
        ),
        row(
            "KG Construction",
            "Entity Extraction and Alignment",
            [T, T, F, F, T],
        ),
        row(
            "KG Construction",
            "Event Detection or Extraction",
            [F, F, F, F, F],
        ),
        row("KG Construction", "Ontology Creation", [F, T, F, F, T]),
        row(
            "KG-to-Text Generation",
            "KG-to-Text Generation",
            [T, F, F, F, T],
        ),
        row("KG Reasoning", "KG Reasoning", [T, T, F, F, T]),
        row(
            "KG Completion",
            "Entity, Relation and Triple Classification",
            [T, T, F, F, T],
        ),
        row("KG Completion", "Entity Prediction", [T, T, F, F, T]),
        row("KG Completion", "Relation Prediction", [F, T, F, F, T]),
        row("KG Embedding", "KG Embedding", [T, F, F, F, T]),
        row("KG-enhanced LLM", "KG-enhanced LLM", [T, T, T, T, T]),
        row("KG Validation", "Fact Checking", [F, F, F, F, T]),
        row("KG Validation", "Inconsistency Detection", [F, F, F, F, T]),
        row(
            "KG Question Answering",
            "Complex Question Answering",
            [F, F, F, F, T],
        ),
        row(
            "KG Question Answering",
            "Multi-Hop Question Generation",
            [F, F, F, F, T],
        ),
        row(
            "KG Question Answering",
            "Knowledge Graph Chatbots",
            [F, F, F, F, T],
        ),
        row(
            "KG Question Answering",
            "Query Generation from natural text",
            [F, F, F, F, T],
        ),
        row(
            "KG Question Answering",
            "Querying Large Language Models with SPARQL",
            [F, F, F, F, T],
        ),
    ]
}

/// Per-survey coverage counts (how many subcategories each survey covers).
pub fn coverage_counts() -> [usize; 5] {
    let mut counts = [0usize; 5];
    for r in coverage_matrix() {
        for (i, &c) in r.covered.iter().enumerate() {
            if c {
                counts[i] += 1;
            }
        }
    }
    counts
}

/// Render Table 1 as an aligned text table (the Table 1 regenerator).
pub fn render_table() -> String {
    let rows = coverage_matrix();
    let main_w = rows.iter().map(|r| r.main.len()).max().unwrap_or(0);
    let sub_w = rows.iter().map(|r| r.sub.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "{:main_w$}  {:sub_w$}  {:>5} {:>5} {:>5} {:>5} {:>10}\n",
        "Main Category", "Subcategory", SURVEYS[0], SURVEYS[1], SURVEYS[2], SURVEYS[3], SURVEYS[4],
    ));
    let mut last_main = "";
    for r in &rows {
        let main = if r.main == last_main { "" } else { r.main };
        last_main = r.main;
        let flags: Vec<&str> = r
            .covered
            .iter()
            .map(|&c| if c { "✓" } else { "✗" })
            .collect();
        out.push_str(&format!(
            "{:main_w$}  {:sub_w$}  {:>5} {:>5} {:>5} {:>5} {:>10}\n",
            main, r.sub, flags[0], flags[1], flags[2], flags[3], flags[4],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_rows_as_in_the_paper() {
        assert_eq!(coverage_matrix().len(), 18);
    }

    #[test]
    fn our_survey_dominates_every_prior_survey() {
        for r in coverage_matrix() {
            for prior in 0..4 {
                if r.covered[prior] {
                    assert!(
                        r.covered[4],
                        "our survey must cover everything priors cover: {}",
                        r.sub
                    );
                }
            }
        }
        let counts = coverage_counts();
        for prior in 0..4 {
            assert!(counts[4] > counts[prior]);
        }
    }

    #[test]
    fn our_survey_covers_all_but_event_detection() {
        for r in coverage_matrix() {
            let expect = r.sub != "Event Detection or Extraction";
            assert_eq!(r.covered[4], expect, "{}", r.sub);
        }
    }

    #[test]
    fn kg_enhanced_llm_is_the_only_universally_covered_row() {
        let universal: Vec<String> = coverage_matrix()
            .into_iter()
            .filter(|r| r.covered.iter().all(|&c| c))
            .map(|r| r.sub.to_string())
            .collect();
        assert_eq!(universal, vec!["KG-enhanced LLM"]);
    }

    #[test]
    fn render_contains_headers_and_marks() {
        let t = render_table();
        assert!(t.contains("Our Survey"));
        assert!(t.contains('✓') && t.contains('✗'));
        assert!(t.contains("Inconsistency Detection"));
    }
}
