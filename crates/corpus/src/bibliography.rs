//! The survey's bibliography as structured data.
//!
//! All 96 references (`[1]`–`[96]` in the paper) are encoded; *approach*
//! papers additionally carry the
//! taxonomy category they are cited under and the LLMs / KGs they employ —
//! the exact inputs to the paper's Figure 2 statistics. Annotations were
//! transcribed from the survey text and the cited papers' own evaluation
//! sections (e.g. KG-BERT evaluates on FB15k/WN18RR/UMLS, hence
//! Freebase/WordNet/UMLS).

use serde::Serialize;

/// What role a reference plays in the survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RefKind {
    /// A technique paper categorized in the taxonomy and counted in Fig. 2.
    Approach,
    /// One of the prior surveys compared in Table 1.
    Survey,
    /// Background: datasets, models, foundations, the authors' prior work.
    Background,
}

/// One bibliography entry.
#[derive(Debug, Clone, Serialize)]
pub struct Reference {
    /// Reference number as in the paper (1–96).
    pub id: u8,
    /// Short citation key (first author + year).
    pub key: &'static str,
    /// Short system / paper name as cited in the survey prose.
    pub name: &'static str,
    /// Publication year.
    pub year: u16,
    /// Role of the reference.
    pub kind: RefKind,
    /// Taxonomy node the approach is cited under (approach papers only).
    pub category: Option<&'static str>,
    /// LLMs the approach employs (raw names; see `stats::normalize_llm`).
    pub llms: &'static [&'static str],
    /// KGs the approach uses or evaluates on.
    pub kgs: &'static [&'static str],
}

const fn approach(
    id: u8,
    key: &'static str,
    name: &'static str,
    year: u16,
    category: &'static str,
    llms: &'static [&'static str],
    kgs: &'static [&'static str],
) -> Reference {
    Reference {
        id,
        key,
        name,
        year,
        kind: RefKind::Approach,
        category: Some(category),
        llms,
        kgs,
    }
}

const fn background(id: u8, key: &'static str, name: &'static str, year: u16) -> Reference {
    Reference {
        id,
        key,
        name,
        year,
        kind: RefKind::Background,
        category: None,
        llms: &[],
        kgs: &[],
    }
}

const fn survey(id: u8, key: &'static str, name: &'static str, year: u16) -> Reference {
    Reference {
        id,
        key,
        name,
        year,
        kind: RefKind::Survey,
        category: None,
        llms: &[],
        kgs: &[],
    }
}

/// The full reference list.
pub const REFERENCES: &[Reference] = &[
    approach(
        1,
        "aigo2021",
        "T5 question generation",
        2021,
        "Multi-Hop Question Generation",
        &["T5"],
        &[],
    ),
    background(2, "alam2023", "Semantically enriched embeddings", 2023),
    approach(
        3,
        "ashok2023",
        "PromptNER",
        2023,
        "Entity Extraction and Alignment",
        &["GPT-4"],
        &[],
    ),
    approach(
        4,
        "babaeigiglou2023",
        "LLMs4OL",
        2023,
        "Ontology Creation",
        &["BERT", "GPT-3", "GPT-4"],
        &["WordNet", "GeoNames"],
    ),
    approach(
        5,
        "baek2023",
        "KAPING",
        2023,
        "Complex Question Answering",
        &["GPT-3"],
        &["Freebase", "Wikidata"],
    ),
    approach(
        6,
        "baldazzi2023",
        "Ontological reasoning fine-tuning",
        2023,
        "Ontology Creation",
        &["GPT-3"],
        &[],
    ),
    approach(
        7,
        "bang2023",
        "ChatGPT multitask evaluation",
        2023,
        "Fact Checking",
        &["ChatGPT"],
        &[],
    ),
    approach(
        8,
        "biswas2021",
        "Contextual LMs for KGC",
        2021,
        "Entity Prediction",
        &["GPT-2"],
        &["Wikidata"],
    ),
    approach(
        9,
        "bordes2013",
        "TransE",
        2013,
        "Entity Prediction",
        &[],
        &["Freebase", "WordNet"],
    ),
    approach(
        10,
        "cao2023",
        "ReLMKG",
        2023,
        "Complex Question Answering",
        &["GPT-2"],
        &["Freebase"],
    ),
    approach(
        11,
        "caufield2023",
        "SPIRES",
        2023,
        "Entity Extraction and Alignment",
        &["GPT-3"],
        &[],
    ),
    approach(
        12,
        "chang2023",
        "Concept-oriented deep learning",
        2023,
        "Ontology Creation",
        &["GPT-4"],
        &[],
    ),
    approach(
        13,
        "chen2023detect",
        "LLM-misinformation detection",
        2023,
        "Fact Checking",
        &["ChatGPT", "LLaMA"],
        &[],
    ),
    approach(
        14,
        "chen2023combat",
        "Combating misinformation",
        2023,
        "Fact Checking",
        &["ChatGPT"],
        &[],
    ),
    approach(
        15,
        "chen2022kgs2s",
        "KG-S2S",
        2022,
        "Entity Prediction",
        &["T5"],
        &["Freebase", "WordNet", "NELL"],
    ),
    approach(
        16,
        "chen2023subsumption",
        "BERT subsumption prediction",
        2023,
        "Ontology Creation",
        &["BERT"],
        &[],
    ),
    approach(
        17,
        "chen2020kgpt",
        "KGPT",
        2020,
        "KG-to-Text Generation",
        &[],
        &["Wikidata"],
    ),
    background(18, "chen2020review", "KG reasoning review", 2020),
    approach(
        19,
        "chern2023",
        "FacTool",
        2023,
        "Fact Checking",
        &["ChatGPT", "GPT-4"],
        &[],
    ),
    approach(
        20,
        "cheung2023",
        "FactLLaMA",
        2023,
        "Fact Checking",
        &["LLaMA"],
        &[],
    ),
    approach(
        21,
        "choudhary2023",
        "LARK",
        2023,
        "KG Reasoning",
        &["LLaMA", "GPT-3.5"],
        &["Freebase", "NELL"],
    ),
    approach(
        22,
        "colas2022",
        "GAP",
        2022,
        "KG-to-Text Generation",
        &["BART", "T5"],
        &["DBpedia"],
    ),
    background(23, "droop2007", "XPath to SPARQL translation", 2007),
    background(24, "droop2008a", "XML/RDF world bridging", 2008),
    background(25, "droop2008b", "Embedding XPath into SPARQL", 2008),
    approach(
        26,
        "edge2024",
        "Graph RAG",
        2024,
        "KG-enhanced LLM",
        &["GPT-4"],
        &[],
    ),
    background(27, "etezadi2023", "Complex QA survey", 2023),
    approach(
        28,
        "ezzabady2024",
        "COVID-19 KG construction",
        2024,
        "Ontology Creation",
        &["GPT-3.5"],
        &[],
    ),
    approach(
        29,
        "funk2023",
        "Ontology construction with LMs",
        2023,
        "Ontology Creation",
        &["GPT-4"],
        &[],
    ),
    background(30, "gao2023", "RAG survey", 2023),
    approach(
        31,
        "gong2020",
        "KCF-NET",
        2020,
        "KG-enhanced LLM",
        &["BERT"],
        &[],
    ),
    background(32, "groppe2006a", "XPath satisfiability tester", 2006),
    background(33, "groppe2006b", "XPath satisfiability & rewriting", 2006),
    background(34, "groppe2008", "Filtering unsatisfiable XPath", 2008),
    background(35, "groppe2009core", "coreSPARQL optimization", 2009),
    background(36, "groppe2006views", "XPath/XSLT view reformulation", 2006),
    background(37, "groppe2006simpl", "XPath query simplification", 2006),
    background(38, "groppe2011", "XSLT/XQuery transformation", 2011),
    background(39, "groppe2008sparql", "SPARQL in XQuery/XSLT", 2008),
    background(40, "groppe2009swobe", "SWOBE embedding", 2009),
    survey(41, "hu2023", "Knowledge-enhanced PLM survey", 2023),
    approach(
        42,
        "huang2020",
        "Few-shot NER study",
        2020,
        "Entity Extraction and Alignment",
        &["BERT", "RoBERTa"],
        &[],
    ),
    approach(
        43,
        "huguetcabot2021",
        "REBEL",
        2021,
        "Relation Extraction",
        &["BART"],
        &["Wikidata"],
    ),
    approach(
        44,
        "ji2020",
        "Concept-enhanced pre-training",
        2020,
        "KG-enhanced LLM",
        &["BERT"],
        &[],
    ),
    approach(
        45,
        "ke2021",
        "JointGT",
        2021,
        "KG-to-Text Generation",
        &["BART", "T5"],
        &["DBpedia", "Wikidata"],
    ),
    approach(
        46,
        "khorashadizadeh2023",
        "ICL for KG generation",
        2023,
        "Relation Extraction",
        &["GPT-3", "ChatGPT"],
        &[],
    ),
    approach(
        47,
        "kim2020",
        "Multi-task KGC",
        2020,
        "Entity Prediction",
        &["BERT"],
        &["Freebase", "WordNet"],
    ),
    approach(
        48,
        "kim2023",
        "KG-GPT",
        2023,
        "KG Reasoning",
        &["GPT-3.5"],
        &["DBpedia"],
    ),
    approach(
        49,
        "kojima2023",
        "Zero-shot reasoners",
        2023,
        "Relation Extraction",
        &["GPT-3"],
        &[],
    ),
    approach(
        50,
        "korel2023",
        "Text-to-ontology mapping",
        2023,
        "Ontology Creation",
        &["BERT"],
        &[],
    ),
    approach(
        51,
        "kovriguina2023",
        "SPARQLGEN",
        2023,
        "Query Generation from natural text",
        &["GPT-3"],
        &["DBpedia"],
    ),
    background(52, "lan2021", "Complex KBQA survey", 2021),
    background(53, "lewis2020", "BART", 2020),
    approach(
        54,
        "li2023zeroshot",
        "Zero-shot relation extractors",
        2023,
        "Relation Extraction",
        &["ChatGPT"],
        &[],
    ),
    approach(
        55,
        "li2023semiauto",
        "Distant-supervision doc-level RE",
        2023,
        "Relation Extraction",
        &["ChatGPT"],
        &[],
    ),
    approach(
        56,
        "li2021fewshot",
        "Few-shot KG-to-text",
        2021,
        "KG-to-Text Generation",
        &["GPT-2"],
        &["DBpedia"],
    ),
    approach(
        57,
        "li2023kgel",
        "KGEL",
        2023,
        "Multi-Hop Question Generation",
        &["GPT-2"],
        &[],
    ),
    approach(
        58,
        "lin2015",
        "TransR",
        2015,
        "Entity Prediction",
        &[],
        &["Freebase", "WordNet"],
    ),
    approach(
        59,
        "lippolis2023",
        "Wikidata-ArtGraph alignment",
        2023,
        "Entity Extraction and Alignment",
        &["GPT-3.5"],
        &["Wikidata"],
    ),
    approach(
        60,
        "liu2020",
        "K-BERT",
        2020,
        "KG-enhanced LLM",
        &["BERT"],
        &["HowNet", "CN-DBpedia"],
    ),
    approach(
        61,
        "luo2023chatrule",
        "ChatRule",
        2023,
        "Inconsistency Detection",
        &["ChatGPT", "GPT-4"],
        &["Freebase", "WordNet", "YAGO"],
    ),
    approach(
        62,
        "luo2023rog",
        "RoG",
        2023,
        "KG Reasoning",
        &["LLaMA", "ChatGPT"],
        &["Freebase"],
    ),
    background(63, "meng2022", "Locating factual associations", 2022),
    background(64, "neuhaus2023", "Ontologies in the LLM era", 2023),
    approach(
        65,
        "omar2023",
        "KG chatbot comparison",
        2023,
        "Knowledge Graph Chatbots",
        &["ChatGPT"],
        &["DBpedia", "YAGO"],
    ),
    background(66, "ouyang2022", "InstructGPT", 2022),
    survey(67, "pan2023", "LLM+KG opportunities survey", 2023),
    survey(68, "pan2024", "Unifying LLMs and KGs roadmap", 2024),
    approach(
        69,
        "pliukhin2023",
        "Improved one-shot SPARQL generation",
        2023,
        "Query Generation from natural text",
        &["GPT-3"],
        &["DBpedia"],
    ),
    approach(
        70,
        "ribeiro2020",
        "PLMs for graph-to-text",
        2020,
        "KG-to-Text Generation",
        &["BART", "T5"],
        &["DBpedia"],
    ),
    approach(
        71,
        "rony2022",
        "SGPT",
        2022,
        "Query Generation from natural text",
        &["GPT-2"],
        &["DBpedia", "Wikidata"],
    ),
    approach(
        72,
        "saeed2023",
        "Querying LLMs with SQL",
        2023,
        "Querying LLMs with SPARQL",
        &["GPT-3"],
        &[],
    ),
    approach(
        73,
        "schaeffer2023",
        "OLAF",
        2023,
        "Ontology Creation",
        &[],
        &[],
    ),
    approach(
        74,
        "sen2023",
        "KG-augmented LM ensemble",
        2023,
        "Complex Question Answering",
        &["T5"],
        &["Freebase"],
    ),
    background(75, "shevlin2019", "Limits of machine intelligence", 2019),
    approach(
        76,
        "strakova2023",
        "Event-type ontology extension",
        2023,
        "Ontology Creation",
        &["BERT"],
        &[],
    ),
    approach(
        77,
        "trouillon2016",
        "ComplEx",
        2016,
        "Entity Prediction",
        &[],
        &["Freebase", "WordNet"],
    ),
    approach(
        78,
        "wadhwa2023",
        "RE in the LLM era",
        2023,
        "Relation Extraction",
        &["GPT-3", "Flan-T5"],
        &[],
    ),
    approach(
        79,
        "wan2023",
        "GPT-RE",
        2023,
        "Relation Extraction",
        &["GPT-3"],
        &[],
    ),
    approach(
        80,
        "wang2021star",
        "StAR",
        2021,
        "Entity Prediction",
        &["BERT", "RoBERTa"],
        &["Freebase", "WordNet"],
    ),
    approach(
        81,
        "wang2023deepstruct",
        "DeepStruct",
        2023,
        "Relation Extraction",
        &["GLM"],
        &[],
    ),
    approach(
        82,
        "wang2022simkgc",
        "SimKGC",
        2022,
        "Entity Prediction",
        &["BERT"],
        &["Freebase", "WordNet", "Wikidata"],
    ),
    background(83, "wang2021quality", "KG quality control survey", 2021),
    approach(
        84,
        "wang2023knowledgegpt",
        "KnowledgeGPT",
        2023,
        "KG-enhanced LLM",
        &["GPT-4"],
        &[],
    ),
    approach(
        85,
        "wei2023chatie",
        "Zero-shot IE via chatting",
        2023,
        "Relation Extraction",
        &["ChatGPT"],
        &[],
    ),
    approach(
        86,
        "wei2023kicgpt",
        "KICGPT",
        2023,
        "Entity Prediction",
        &["ChatGPT"],
        &["Freebase", "WordNet"],
    ),
    approach(
        87,
        "xie2022",
        "GenKGC",
        2022,
        "Entity Prediction",
        &["BART"],
        &["Freebase", "WordNet"],
    ),
    approach(
        88,
        "xu2021",
        "Sem-K-BERT",
        2021,
        "KG-enhanced LLM",
        &["BERT"],
        &["HowNet"],
    ),
    approach(
        89,
        "xu2023",
        "LLMs for few-shot RE",
        2023,
        "Relation Extraction",
        &["GPT-3.5"],
        &[],
    ),
    survey(90, "yang2024", "Fact-aware language modeling survey", 2024),
    background(91, "yang2018", "HotpotQA", 2018),
    approach(
        92,
        "yao2019",
        "KG-BERT",
        2019,
        "Entity, Relation and Triple Classification",
        &["BERT"],
        &["Freebase", "WordNet", "UMLS"],
    ),
    approach(
        93,
        "yu2022",
        "Dict-BERT",
        2022,
        "KG-enhanced LLM",
        &["BERT"],
        &[],
    ),
    approach(
        94,
        "yuan2023",
        "Zero-shot temporal RE",
        2023,
        "Relation Extraction",
        &["ChatGPT"],
        &[],
    ),
    background(95, "zaveri2016", "Linked-data quality survey", 2016),
    approach(
        96,
        "zhou2023",
        "UniversalNER",
        2023,
        "Entity Extraction and Alignment",
        &["LLaMA", "ChatGPT"],
        &[],
    ),
];

/// All approach references.
pub fn approaches() -> impl Iterator<Item = &'static Reference> {
    REFERENCES.iter().filter(|r| r.kind == RefKind::Approach)
}

/// Look up a reference by its paper number.
pub fn by_id(id: u8) -> Option<&'static Reference> {
    REFERENCES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::taxonomy;

    #[test]
    fn all_96_references_present_in_order() {
        assert_eq!(REFERENCES.len(), 96);
        for (i, r) in REFERENCES.iter().enumerate() {
            assert_eq!(r.id as usize, i + 1, "reference {} out of order", r.key);
        }
    }

    #[test]
    fn four_prior_surveys_marked() {
        let surveys: Vec<u8> = REFERENCES
            .iter()
            .filter(|r| r.kind == RefKind::Survey)
            .map(|r| r.id)
            .collect();
        assert_eq!(surveys, vec![41, 67, 68, 90]);
    }

    #[test]
    fn approach_categories_exist_in_taxonomy() {
        let names: Vec<&str> = taxonomy().iter().map(|n| n.name).collect();
        for r in approaches() {
            let cat = r.category.expect("approaches must have categories");
            assert!(
                names.contains(&cat),
                "{} cites unknown category {cat}",
                r.key
            );
        }
    }

    #[test]
    fn non_approaches_carry_no_annotations() {
        for r in REFERENCES.iter().filter(|r| r.kind != RefKind::Approach) {
            assert!(r.category.is_none(), "{}", r.key);
            assert!(r.llms.is_empty() && r.kgs.is_empty(), "{}", r.key);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(by_id(92).unwrap().name, "KG-BERT");
        assert!(by_id(200).is_none());
    }

    #[test]
    fn survey_cites_a_healthy_number_of_approaches() {
        assert!(approaches().count() >= 50);
    }
}
