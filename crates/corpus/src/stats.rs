//! Figure 2: statistics of LLM and KG usage in the cited approach papers.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::bibliography::approaches;
use crate::taxonomy::{node, Family};

/// Normalize an LLM name to the family Figure 2 charts: the survey counts
/// the GPT-3 model line (GPT-3, GPT-3.5, ChatGPT) as one series.
pub fn normalize_llm(name: &str) -> &str {
    match name {
        "GPT-3.5" | "ChatGPT" => "GPT-3",
        other => other,
    }
}

/// Aggregated usage statistics.
#[derive(Debug, Clone, Serialize)]
pub struct UsageStats {
    /// LLM → number of approach papers using it (after normalization).
    pub llm_counts: BTreeMap<String, usize>,
    /// KG → number of approach papers using it.
    pub kg_counts: BTreeMap<String, usize>,
    /// (family, LLM) → count, for the per-category breakdown.
    pub llm_by_family: BTreeMap<(String, String), usize>,
    /// (family, KG) → count.
    pub kg_by_family: BTreeMap<(String, String), usize>,
    /// Number of approach papers considered.
    pub n_approaches: usize,
}

/// Compute the Figure 2 statistics from the bibliography.
pub fn usage_stats() -> UsageStats {
    let mut llm_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut kg_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut llm_by_family: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut kg_by_family: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut n = 0usize;
    for r in approaches() {
        n += 1;
        let family: Option<Family> = r.category.and_then(node).map(|t| t.family);
        let fam_name = family.map(|f| f.name().to_string()).unwrap_or_default();
        // count each model family once per paper
        let mut seen: Vec<&str> = Vec::new();
        for llm in r.llms {
            let norm = normalize_llm(llm);
            if seen.contains(&norm) {
                continue;
            }
            seen.push(norm);
            *llm_counts.entry(norm.to_string()).or_insert(0) += 1;
            *llm_by_family
                .entry((fam_name.clone(), norm.to_string()))
                .or_insert(0) += 1;
        }
        for kg in r.kgs {
            *kg_counts.entry((*kg).to_string()).or_insert(0) += 1;
            *kg_by_family
                .entry((fam_name.clone(), (*kg).to_string()))
                .or_insert(0) += 1;
        }
    }
    UsageStats {
        llm_counts,
        kg_counts,
        llm_by_family,
        kg_by_family,
        n_approaches: n,
    }
}

impl UsageStats {
    /// Names sorted by descending count (ties alphabetical).
    fn ranked(counts: &BTreeMap<String, usize>) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = counts.iter().map(|(k, &c)| (k.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// LLMs ranked by usage.
    pub fn top_llms(&self) -> Vec<(&str, usize)> {
        Self::ranked(&self.llm_counts)
    }

    /// KGs ranked by usage.
    pub fn top_kgs(&self) -> Vec<(&str, usize)> {
        Self::ranked(&self.kg_counts)
    }

    /// Render the Figure 2 regeneration as two text bar charts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 2 — LLM/KG usage across {} cited approach papers\n\n",
            self.n_approaches
        ));
        out.push_str("LLMs:\n");
        for (name, count) in self.top_llms() {
            out.push_str(&format!("  {name:10} {:3} {}\n", count, "█".repeat(count)));
        }
        out.push_str("\nKGs:\n");
        for (name, count) in self.top_kgs() {
            out.push_str(&format!("  {name:10} {:3} {}\n", count, "█".repeat(count)));
        }
        out
    }

    /// Render the per-family breakdown (the "per category" aspect of
    /// Figure 2's x-axis grouping).
    pub fn render_by_family(&self) -> String {
        let mut out = String::new();
        let mut families: Vec<&str> = self.llm_by_family.keys().map(|(f, _)| f.as_str()).collect();
        families.sort_unstable();
        families.dedup();
        for fam in families {
            out.push_str(&format!("{fam}\n"));
            out.push_str("  LLMs: ");
            let mut entries: Vec<(&str, usize)> = self
                .llm_by_family
                .iter()
                .filter(|((f, _), _)| f == fam)
                .map(|((_, l), &c)| (l.as_str(), c))
                .collect();
            entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            out.push_str(
                &entries
                    .iter()
                    .map(|(l, c)| format!("{l}×{c}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
            let mut kgs: Vec<(&str, usize)> = self
                .kg_by_family
                .iter()
                .filter(|((f, _), _)| f == fam)
                .map(|((_, k), &c)| (k.as_str(), c))
                .collect();
            kgs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            out.push_str("  KGs:  ");
            out.push_str(
                &kgs.iter()
                    .map(|(k, c)| format!("{k}×{c}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freebase_is_the_most_used_kg() {
        // the paper's headline finding
        let s = usage_stats();
        let top = s.top_kgs();
        assert_eq!(top[0].0, "Freebase", "{top:?}");
    }

    #[test]
    fn bert_and_gpt3_are_the_top_llms() {
        // the paper's second headline finding
        let s = usage_stats();
        let top = s.top_llms();
        let first_two: Vec<&str> = top.iter().take(2).map(|(n, _)| *n).collect();
        assert!(first_two.contains(&"BERT"), "{top:?}");
        assert!(first_two.contains(&"GPT-3"), "{top:?}");
    }

    #[test]
    fn normalization_folds_the_gpt3_family() {
        assert_eq!(normalize_llm("ChatGPT"), "GPT-3");
        assert_eq!(normalize_llm("GPT-3.5"), "GPT-3");
        assert_eq!(normalize_llm("GPT-4"), "GPT-4");
        assert_eq!(normalize_llm("BERT"), "BERT");
    }

    #[test]
    fn counts_are_per_paper_not_per_mention() {
        // ref 46 lists GPT-3 and ChatGPT; after normalization that's one
        // GPT-3 usage, not two — so GPT-3 count must not exceed the number
        // of approach papers
        let s = usage_stats();
        let gpt3 = s.llm_counts.get("GPT-3").copied().unwrap_or(0);
        assert!(gpt3 <= s.n_approaches);
        assert!(
            gpt3 >= 10,
            "expected double-digit GPT-3 family usage, got {gpt3}"
        );
    }

    #[test]
    fn per_family_breakdown_covers_all_families() {
        let s = usage_stats();
        let fams: Vec<&String> = s.llm_by_family.keys().map(|(f, _)| f).collect();
        assert!(fams.iter().any(|f| f.as_str() == "LLM for KG"));
        assert!(fams.iter().any(|f| f.as_str() == "LLM-KG Cooperation"));
    }

    #[test]
    fn renders_are_non_empty_and_mention_winners() {
        let s = usage_stats();
        let r = s.render();
        assert!(r.contains("Freebase"));
        assert!(r.contains("BERT"));
        assert!(!s.render_by_family().is_empty());
    }
}
