//! # corpus — the survey's own analysis artifacts, as data + code
//!
//! The paper's quantitative content is (a) the Figure 1 taxonomy of the
//! LLM⟷KG interplay, (b) the Table 1 coverage matrix comparing four prior
//! surveys with this one, and (c) the Figure 2 bibliometric statistics of
//! which LLMs and KGs the cited approach papers use. This crate encodes
//! all three as structured data with the analysis code that regenerates
//! them, so the `llmkg-bench` binaries can print the paper's exact
//! artifacts and diff them against expectations.

pub mod bibliography;
pub mod challenges;
pub mod coverage;
pub mod stats;
pub mod taxonomy;

pub use bibliography::{RefKind, Reference, REFERENCES};
pub use coverage::{coverage_matrix, CoverageRow, SURVEYS};
pub use stats::{usage_stats, UsageStats};
pub use taxonomy::{taxonomy, Family, TaxonomyNode};
