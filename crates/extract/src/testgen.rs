//! Gold-annotated sentence generation from a KG.
//!
//! Each relation triple of a generated KG is verbalized into a sentence
//! whose entity spans and relation are known exactly — the ground truth
//! that the NER / RE evaluations (E1, E2) score against. This mirrors the
//! distant-supervision setup the surveyed RE papers use, but with perfect
//! alignment because we control the verbalizer.

use kg::namespace as ns;
use kg::ontology::Ontology;
use kg::term::Sym;
use kg::Graph;

/// One gold-annotated sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedSentence {
    /// The sentence text.
    pub text: String,
    /// Entity mentions: `(surface form, KG entity)` in order of appearance.
    pub entities: Vec<(String, Sym)>,
    /// The relation the sentence expresses: `(subject, relation IRI, object)`.
    pub relation: (Sym, String, Sym),
}

/// Prefix a relation phrase with a copula unless it already starts with a
/// finite verb ("has genre", "cites", "works at" — first word ending in
/// `s`), so verbalizations read "is directed by" but "has genre".
pub fn copula(phrase: &str) -> String {
    let first = phrase.split_whitespace().next().unwrap_or("");
    if first.ends_with('s') && first != "is" {
        phrase.to_string()
    } else {
        format!("is {phrase}")
    }
}

/// Verbalize one triple with the ontology's relation label
/// (`"The Big Chill is directed by Bob Lee"`, `"Rex disease has symptom
/// Fever"`).
pub fn verbalize_triple(graph: &Graph, onto: &Ontology, s: Sym, p_iri: &str, o: Sym) -> String {
    let s_label = graph.display_name(s);
    let o_label = graph.display_name(o);
    let phrase = onto
        .property(p_iri)
        .and_then(|d| d.label.clone())
        .unwrap_or_else(|| ns::humanize(ns::local_name(p_iri)));
    format!("{s_label} {} {o_label}", copula(&phrase))
}

/// Annotate all object-valued relation triples of a graph. Predicates
/// outside the synthetic vocabulary namespace (types, labels) are skipped.
pub fn annotate_graph(graph: &Graph, onto: &Ontology) -> Vec<AnnotatedSentence> {
    let mut out = Vec::new();
    for t in graph.iter() {
        let Some(p_iri) = graph.resolve(t.p).as_iri() else {
            continue;
        };
        if !p_iri.starts_with(ns::SYNTH_VOCAB) {
            continue;
        }
        if !graph.resolve(t.o).is_iri() {
            continue;
        }
        let text = verbalize_triple(graph, onto, t.s, p_iri, t.o);
        out.push(AnnotatedSentence {
            text,
            entities: vec![
                (graph.display_name(t.s), t.s),
                (graph.display_name(t.o), t.o),
            ],
            relation: (t.s, p_iri.to_string(), t.o),
        });
    }
    out
}

/// Connector templates used by the varied verbalizer (`%p` = property
/// label). Lexical variety is what separates the RE learning paradigms in
/// experiment E2: supervised models see all variants, few-shot models only
/// `k` of them.
pub const CONNECTOR_VARIANTS: [&str; 4] = ["is %p", "was %p", "has always been %p", "remains %p"];

/// Synonym paraphrases for relation phrases. Sentences using a synonym
/// never contain the canonical label, so zero-shot verbalizer matching
/// (which only knows canonical labels) degrades on them — the lexical gap
/// that separates the learning paradigms.
pub const PHRASE_SYNONYMS: &[(&str, &str)] = &[
    ("directed by", "helmed by"),
    ("starring", "featuring"),
    ("has genre", "classified under"),
    ("produced by", "made by"),
    ("released in", "premiered in"),
    ("spouse of", "married to"),
    ("advised by", "mentored by"),
    ("works at", "employed by"),
    ("author of", "writer of"),
    ("cites", "references"),
    ("published in", "appearing in"),
];

/// Like [`annotate_graph`] but with seeded lexical variation in the
/// connector phrase, for the relation-extraction paradigm sweep.
pub fn annotate_graph_varied(graph: &Graph, onto: &Ontology, seed: u64) -> Vec<AnnotatedSentence> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for t in graph.iter() {
        let Some(p_iri) = graph.resolve(t.p).as_iri() else {
            continue;
        };
        if !p_iri.starts_with(ns::SYNTH_VOCAB) || !graph.resolve(t.o).is_iri() {
            continue;
        }
        let s_label = graph.display_name(t.s);
        let o_label = graph.display_name(t.o);
        let mut phrase = onto
            .property(p_iri)
            .and_then(|d| d.label.clone())
            .unwrap_or_else(|| ns::humanize(ns::local_name(p_iri)));
        // 40% of sentences paraphrase the relation with a synonym the
        // canonical label never mentions
        if rng.gen_bool(0.4) {
            if let Some((_, syn)) = PHRASE_SYNONYMS.iter().find(|(c, _)| *c == phrase) {
                phrase = (*syn).to_string();
            }
        }
        let template = CONNECTOR_VARIANTS.choose(&mut rng).expect("non-empty");
        let connector = template.replace("%p", &phrase);
        out.push(AnnotatedSentence {
            text: format!("{s_label} {connector} {o_label}"),
            entities: vec![(s_label, t.s), (o_label, t.o)],
            relation: (t.s, p_iri.to_string(), t.o),
        });
    }
    out
}

/// The corpus of all verbalized sentences (text only) — what the simulated
/// LM trains on to "know" this KG.
pub fn corpus_sentences(graph: &Graph, onto: &Ontology) -> Vec<String> {
    annotate_graph(graph, onto)
        .into_iter()
        .map(|a| a.text)
        .collect()
}

/// All distinct entity surface forms of a graph (for gazetteers and the
/// LM's entity-name registry).
pub fn entity_surface_forms(graph: &Graph) -> Vec<String> {
    let mut names: Vec<String> = graph
        .entities()
        .into_iter()
        .filter(|&e| {
            graph
                .resolve(e)
                .as_iri()
                .is_some_and(|i| i.starts_with(ns::SYNTH_ENTITY))
        })
        .map(|e| graph.display_name(e))
        .collect();
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};

    #[test]
    fn annotations_cover_all_relation_triples() {
        let kg = movies(3, Scale::tiny());
        let anns = annotate_graph(&kg.graph, &kg.ontology);
        assert!(!anns.is_empty());
        for a in &anns {
            // the surface forms occur in the text
            for (surface, _) in &a.entities {
                assert!(a.text.contains(surface), "{} not in {:?}", surface, a.text);
            }
        }
    }

    #[test]
    fn verbalizer_uses_ontology_labels() {
        let kg = movies(3, Scale::tiny());
        let anns = annotate_graph(&kg.graph, &kg.ontology);
        let directed: Vec<_> = anns
            .iter()
            .filter(|a| a.relation.1.ends_with("directedBy"))
            .collect();
        assert!(!directed.is_empty());
        assert!(
            directed[0].text.contains("directed by"),
            "{}",
            directed[0].text
        );
    }

    #[test]
    fn surface_forms_are_sorted_unique() {
        let kg = movies(3, Scale::tiny());
        let names = entity_surface_forms(&kg.graph);
        assert!(names.len() > 10);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(names, sorted);
    }

    #[test]
    fn corpus_matches_annotations() {
        let kg = movies(3, Scale::tiny());
        assert_eq!(
            corpus_sentences(&kg.graph, &kg.ontology).len(),
            annotate_graph(&kg.graph, &kg.ontology).len()
        );
    }
}
