//! Entity linking and cross-KG entity alignment (§2.1.2, \[59\]).

use kg::namespace as ns;
use kg::term::Sym;
use kg::Graph;
use slm::Slm;

/// A mention linked to a KG entity.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedMention {
    /// The surface form from the text.
    pub mention: String,
    /// The linked entity.
    pub entity: Sym,
    /// Link confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Levenshtein edit distance (iterative two-row).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized string similarity in `[0,1]` (1 = identical, case-folded).
pub fn string_similarity(a: &str, b: &str) -> f64 {
    let (la, lb) = (a.to_lowercase(), b.to_lowercase());
    let max_len = la.chars().count().max(lb.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - edit_distance(&la, &lb) as f64 / max_len as f64
}

/// Links textual mentions to entities of a target KG.
pub struct EntityLinker<'a> {
    graph: &'a Graph,
    /// `(display name, entity)` pairs for all linkable entities.
    catalog: Vec<(String, Sym)>,
    /// Optional LM for embedding-based disambiguation.
    slm: Option<&'a Slm>,
}

impl<'a> EntityLinker<'a> {
    /// Build a linker over all synthetic-namespace entities of a graph.
    pub fn new(graph: &'a Graph) -> Self {
        let catalog: Vec<(String, Sym)> = graph
            .entities()
            .into_iter()
            .filter(|&e| {
                graph
                    .resolve(e)
                    .as_iri()
                    .is_some_and(|i| i.starts_with(ns::SYNTH_ENTITY))
            })
            .map(|e| (graph.display_name(e), e))
            .collect();
        EntityLinker {
            graph,
            catalog,
            slm: None,
        }
    }

    /// Attach an LM for embedding-assisted disambiguation.
    pub fn with_slm(mut self, slm: &'a Slm) -> Self {
        self.slm = Some(slm);
        self
    }

    /// The backing graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Link a mention: exact match first, then fuzzy string similarity,
    /// optionally blended with LM embedding similarity. Returns `None`
    /// below the 0.55 confidence floor.
    pub fn link(&self, mention: &str) -> Option<LinkedMention> {
        // exact (case-insensitive)
        for (name, e) in &self.catalog {
            if name.eq_ignore_ascii_case(mention) {
                return Some(LinkedMention {
                    mention: mention.to_string(),
                    entity: *e,
                    confidence: 1.0,
                });
            }
        }
        let mut best: Option<(f64, Sym)> = None;
        for (name, e) in &self.catalog {
            let mut score = string_similarity(mention, name);
            if let Some(m) = self.slm {
                score = 0.7 * score + 0.3 * f64::from(m.similarity(mention, name));
            }
            match best {
                Some((b, _)) if score <= b => {}
                _ => best = Some((score, *e)),
            }
        }
        best.filter(|&(s, _)| s >= 0.55)
            .map(|(confidence, entity)| LinkedMention {
                mention: mention.to_string(),
                entity,
                confidence,
            })
    }
}

/// One proposed cross-KG correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentPair {
    /// Entity in the left graph.
    pub left: Sym,
    /// Entity in the right graph.
    pub right: Sym,
    /// Combined label + neighborhood score.
    pub score: f64,
}

/// Align entities across two graphs: candidate pairs by label similarity,
/// re-scored with neighborhood (shared neighbor-label) evidence — the
/// label+structure recipe of LLM-assisted alignment \[59\].
pub fn align_graphs(left: &Graph, right: &Graph, threshold: f64) -> Vec<AlignmentPair> {
    let left_entities: Vec<(String, Sym)> = catalog(left);
    let right_entities: Vec<(String, Sym)> = catalog(right);
    let mut out = Vec::new();
    for (ln, le) in &left_entities {
        let mut best: Option<(f64, Sym)> = None;
        for (rn, re) in &right_entities {
            let label_sim = string_similarity(ln, rn);
            if label_sim < 0.5 {
                continue;
            }
            let neigh = neighborhood_overlap(left, *le, right, *re);
            let score = 0.7 * label_sim + 0.3 * neigh;
            match best {
                Some((b, _)) if score <= b => {}
                _ => best = Some((score, *re)),
            }
        }
        if let Some((score, re)) = best {
            if score >= threshold {
                out.push(AlignmentPair {
                    left: *le,
                    right: re,
                    score,
                });
            }
        }
    }
    out
}

fn catalog(g: &Graph) -> Vec<(String, Sym)> {
    g.entities()
        .into_iter()
        .filter(|&e| {
            g.resolve(e)
                .as_iri()
                .is_some_and(|i| i.starts_with(ns::SYNTH_ENTITY))
        })
        .map(|e| (g.display_name(e), e))
        .collect()
}

/// Jaccard overlap of neighbor display names.
fn neighborhood_overlap(lg: &Graph, le: Sym, rg: &Graph, re: Sym) -> f64 {
    let ln: Vec<String> = lg
        .outgoing(le)
        .iter()
        .map(|&(_, o)| lg.display_name(o))
        .collect();
    let rn: Vec<String> = rg
        .outgoing(re)
        .iter()
        .map(|&(_, o)| rg.display_name(o))
        .collect();
    if ln.is_empty() && rn.is_empty() {
        return 0.0;
    }
    let shared = ln.iter().filter(|n| rn.contains(n)).count();
    let union = ln.len() + rn.len() - shared;
    if union == 0 {
        0.0
    } else {
        shared as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }

    #[test]
    fn string_similarity_ranges() {
        assert_eq!(string_similarity("Alice", "alice"), 1.0);
        assert!(string_similarity("Alice", "Alicia") > 0.6);
        assert!(string_similarity("Alice", "Zorblax") < 0.4);
    }

    #[test]
    fn linker_exact_and_fuzzy() {
        let kg = movies(31, Scale::tiny());
        let linker = EntityLinker::new(&kg.graph);
        let (name, entity) = linker.catalog[0].clone();
        let exact = linker.link(&name).expect("exact link");
        assert_eq!(exact.entity, entity);
        assert_eq!(exact.confidence, 1.0);
        // typo: drop last char
        let typo: String = name.chars().take(name.chars().count() - 1).collect();
        let fuzzy = linker.link(&typo).expect("fuzzy link");
        assert_eq!(fuzzy.entity, entity);
        assert!(fuzzy.confidence < 1.0 && fuzzy.confidence > 0.55);
    }

    #[test]
    fn linker_rejects_garbage() {
        let kg = movies(31, Scale::tiny());
        let linker = EntityLinker::new(&kg.graph);
        assert!(linker.link("qqqqzzzz xxxxyyy").is_none());
    }

    #[test]
    fn aligning_a_graph_with_itself_is_perfect() {
        let kg = movies(31, Scale::tiny());
        let pairs = align_graphs(&kg.graph, &kg.graph, 0.9);
        assert!(!pairs.is_empty());
        for p in &pairs {
            assert_eq!(
                kg.graph.display_name(p.left),
                kg.graph.display_name(p.right)
            );
        }
    }

    #[test]
    fn alignment_is_robust_to_small_perturbations() {
        let kg = movies(31, Scale::tiny());
        // same seed twice = identical graphs with identical pools; align a
        // clone where nothing changed but the pool object
        let kg2 = movies(31, Scale::tiny());
        let pairs = align_graphs(&kg.graph, &kg2.graph, 0.8);
        let entities = catalog(&kg.graph).len();
        assert!(
            pairs.len() >= entities * 9 / 10,
            "aligned {} of {}",
            pairs.len(),
            entities
        );
    }
}
