//! # kgextract — KG construction from text (paper §2.1.2–2.1.3)
//!
//! Implements the survey's KG-construction toolchain against the simulated
//! LM substrate:
//!
//! * [`testgen`] — gold-annotated sentence generation from a synthetic KG
//!   (the evaluation corpus: every sentence knows its entity spans and the
//!   relation it verbalizes),
//! * [`ner`] — four entity-extraction methods: gazetteer lookup, pattern
//!   (capitalization) heuristics, PromptNER-style few-shot prompting \[3\],
//!   and a UniversalNER-style distilled combination \[96\],
//! * [`relation`] — relation extraction under the survey's three learning
//!   paradigms: supervised fine-tuning (connector-phrase classifier),
//!   few-shot in-context learning \[89\], and zero-shot verbalizer matching
//!   \[54, 94\],
//! * [`align`] — entity linking against a KG and cross-KG entity alignment
//!   (label + neighborhood evidence, à la \[59\]),
//! * [`pipeline`] — the end-to-end text → triples → [`kg::Graph`]
//!   assembly.

pub mod align;
pub mod metrics;
pub mod ner;
pub mod pipeline;
pub mod relation;
pub mod testgen;

pub use align::{EntityLinker, LinkedMention};
pub use metrics::Prf;
pub use ner::{NerMethod, NerSystem};
pub use pipeline::ExtractionPipeline;
pub use relation::{Paradigm, RelationExtractor};
pub use testgen::{annotate_graph, AnnotatedSentence};
