//! End-to-end text → KG extraction pipeline.
//!
//! Wires NER → entity linking → relation extraction → triple assembly:
//! the full "KG construction with LLMs" loop of paper §2.1.

use std::collections::BTreeMap;

use kg::namespace as ns;
use kg::term::Term;
use kg::Graph;
use slm::tokenizer::split_sentences;
use slm::Slm;

use crate::align::EntityLinker;
use crate::ner::{NerMethod, NerSystem};
use crate::relation::{Paradigm, RelationExtractor};
use crate::testgen::AnnotatedSentence;

/// A full extraction pipeline.
pub struct ExtractionPipeline<'a> {
    ner: NerSystem<'a>,
    ner_method: NerMethod,
    linker: EntityLinker<'a>,
    relation: RelationExtractor<'a>,
    paradigm: Paradigm,
}

/// A triple extracted from text, before graph assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedTriple {
    /// Subject surface form.
    pub subject: String,
    /// Relation IRI.
    pub relation: String,
    /// Object surface form.
    pub object: String,
    /// The sentence it came from.
    pub sentence: String,
}

impl<'a> ExtractionPipeline<'a> {
    /// Assemble a pipeline from its trained parts.
    pub fn new(
        ner: NerSystem<'a>,
        ner_method: NerMethod,
        linker: EntityLinker<'a>,
        relation: RelationExtractor<'a>,
        paradigm: Paradigm,
    ) -> Self {
        ExtractionPipeline {
            ner,
            ner_method,
            linker,
            relation,
            paradigm,
        }
    }

    /// A ready-to-run pipeline for a known KG: gazetteer NER from the KG's
    /// own labels, supervised RE trained on `training`, linking against
    /// `reference`.
    pub fn for_kg(
        reference: &'a Graph,
        slm: &'a Slm,
        relations: BTreeMap<String, String>,
        training: &[AnnotatedSentence],
    ) -> Self {
        let names = crate::testgen::entity_surface_forms(reference);
        let ner = NerSystem::new(names).with_slm(slm);
        let linker = EntityLinker::new(reference).with_slm(slm);
        let mut re = RelationExtractor::new(slm, relations);
        re.train(training);
        ExtractionPipeline {
            ner,
            ner_method: NerMethod::Gazetteer,
            linker,
            relation: re,
            paradigm: Paradigm::Supervised,
        }
    }

    /// Extract triples from raw text (sentence-by-sentence, adjacent
    /// mention pairs).
    pub fn extract(&self, text: &str) -> Vec<ExtractedTriple> {
        let mut out = Vec::new();
        for sentence in split_sentences(text) {
            let mentions = self.ner.extract(self.ner_method, &sentence);
            if mentions.len() < 2 {
                continue;
            }
            for pair in mentions.windows(2) {
                let pseudo = AnnotatedSentence {
                    text: sentence.clone(),
                    entities: vec![
                        (pair[0].clone(), kg::term::Sym(0)),
                        (pair[1].clone(), kg::term::Sym(0)),
                    ],
                    relation: (kg::term::Sym(0), String::new(), kg::term::Sym(0)),
                };
                if let Some(rel) = self.relation.extract(self.paradigm, &pseudo) {
                    out.push(ExtractedTriple {
                        subject: pair[0].clone(),
                        relation: rel,
                        object: pair[1].clone(),
                        sentence: sentence.clone(),
                    });
                }
            }
        }
        out
    }

    /// Extract and assemble into a graph, linking mentions to the
    /// reference KG where possible and minting fresh IRIs otherwise.
    pub fn build_graph(&self, text: &str) -> Graph {
        let mut g = Graph::new();
        for t in self.extract(text) {
            let s_iri = self.resolve_iri(&t.subject);
            let o_iri = self.resolve_iri(&t.object);
            g.insert_iri(&s_iri, &t.relation, &o_iri);
            g.insert_terms(
                Term::iri(s_iri.clone()),
                Term::iri(ns::RDFS_LABEL),
                Term::lit(t.subject.clone()),
            );
            g.insert_terms(
                Term::iri(o_iri),
                Term::iri(ns::RDFS_LABEL),
                Term::lit(t.object.clone()),
            );
        }
        g
    }

    fn resolve_iri(&self, mention: &str) -> String {
        match self.linker.link(mention) {
            Some(l) => self
                .linker
                .graph()
                .resolve(l.entity)
                .as_iri()
                .map(str::to_string)
                .unwrap_or_else(|| format!("{}{}", ns::SYNTH_ENTITY, ns::slug(mention))),
            None => format!("{}{}", ns::SYNTH_ENTITY, ns::slug(mention)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::{annotate_graph, corpus_sentences, entity_surface_forms};
    use kg::synth::{movies, Scale};

    struct Fixture {
        kg: kg::synth::SynthKg,
        slm: Slm,
        sentences: Vec<AnnotatedSentence>,
    }

    fn fixture() -> Fixture {
        let kg = movies(41, Scale::tiny());
        let sentences = annotate_graph(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(
                corpus_sentences(&kg.graph, &kg.ontology)
                    .iter()
                    .map(String::as_str),
            )
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        Fixture { kg, slm, sentences }
    }

    fn relations(kg: &kg::synth::SynthKg) -> BTreeMap<String, String> {
        kg.ontology
            .properties()
            .filter_map(|(iri, d)| d.label.clone().map(|l| (iri.to_string(), l)))
            .collect()
    }

    #[test]
    fn pipeline_reconstructs_verbalized_triples() {
        let f = fixture();
        let pipeline =
            ExtractionPipeline::for_kg(&f.kg.graph, &f.slm, relations(&f.kg), &f.sentences);
        // feed back a few gold sentences; the pipeline should recover the
        // exact triples
        let text: String = f.sentences[..5]
            .iter()
            .map(|s| format!("{}.", s.text))
            .collect::<Vec<_>>()
            .join(" ");
        let triples = pipeline.extract(&text);
        assert!(triples.len() >= 4, "only {} triples", triples.len());
        for (t, gold) in triples.iter().zip(&f.sentences[..triples.len().min(5)]) {
            assert_eq!(t.relation, gold.relation.1, "{t:?}");
        }
    }

    #[test]
    fn build_graph_links_back_to_reference_iris() {
        let f = fixture();
        let pipeline =
            ExtractionPipeline::for_kg(&f.kg.graph, &f.slm, relations(&f.kg), &f.sentences);
        let text = format!("{}.", f.sentences[0].text);
        let g = pipeline.build_graph(&text);
        assert!(!g.is_empty());
        // subject IRI must be the reference KG's IRI, not a minted one
        let gold_subj_iri =
            f.kg.graph
                .resolve(f.sentences[0].relation.0)
                .as_iri()
                .unwrap();
        assert!(
            g.pool().get_iri(gold_subj_iri).is_some(),
            "expected linked IRI {gold_subj_iri}"
        );
    }

    #[test]
    fn unknown_entities_get_minted_iris() {
        let f = fixture();
        let pipeline =
            ExtractionPipeline::for_kg(&f.kg.graph, &f.slm, relations(&f.kg), &f.sentences);
        // no recognizable entities → no triples, empty graph (not a crash)
        let g = pipeline.build_graph("Zzz Qqq is directed by Yyy Www.");
        assert!(g.is_empty());
    }
}
