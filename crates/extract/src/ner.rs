//! Named-entity recognition: the four method families of §2.1.2.

use slm::task::capitalized_spans;
use slm::Slm;

use crate::metrics::Prf;
use crate::testgen::AnnotatedSentence;

/// Which NER method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NerMethod {
    /// Dictionary lookup against known entity names (longest match).
    Gazetteer,
    /// Capitalization-pattern heuristics (no knowledge).
    Pattern,
    /// PromptNER-style few-shot prompting of the (simulated) LLM \[3\].
    PromptSim,
    /// UniversalNER-style distillation: pattern candidates filtered by the
    /// LM's entity knowledge \[96\].
    Distilled,
}

impl NerMethod {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            NerMethod::Gazetteer => "gazetteer",
            NerMethod::Pattern => "pattern",
            NerMethod::PromptSim => "prompt-ner",
            NerMethod::Distilled => "distilled",
        }
    }

    /// All methods, for sweeps.
    pub fn all() -> [NerMethod; 4] {
        [
            NerMethod::Gazetteer,
            NerMethod::Pattern,
            NerMethod::PromptSim,
            NerMethod::Distilled,
        ]
    }
}

/// A configured NER system.
pub struct NerSystem<'a> {
    /// Known entity surface forms (sorted longest-first internally).
    gazetteer: Vec<String>,
    /// The backbone LM for the prompting/distillation methods.
    slm: Option<&'a Slm>,
    /// Few-shot examples for [`NerMethod::PromptSim`].
    examples: Vec<(String, String)>,
}

impl<'a> NerSystem<'a> {
    /// Build a system from a gazetteer; attach an LM with
    /// [`NerSystem::with_slm`].
    pub fn new(mut gazetteer: Vec<String>) -> Self {
        // longest-first so longer names shadow their substrings
        gazetteer.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
        NerSystem {
            gazetteer,
            slm: None,
            examples: Vec::new(),
        }
    }

    /// Attach the backbone LM.
    pub fn with_slm(mut self, slm: &'a Slm) -> Self {
        self.slm = Some(slm);
        self
    }

    /// Provide few-shot demonstrations (input sentence, comma-joined spans).
    pub fn with_examples(mut self, examples: Vec<(String, String)>) -> Self {
        self.examples = examples;
        self
    }

    /// Extract entity mentions with the chosen method.
    pub fn extract(&self, method: NerMethod, text: &str) -> Vec<String> {
        match method {
            NerMethod::Gazetteer => self.gazetteer_extract(text),
            NerMethod::Pattern => capitalized_spans(text),
            NerMethod::PromptSim => match self.slm {
                Some(m) => m.extract_spans(&self.examples, text),
                None => Vec::new(),
            },
            NerMethod::Distilled => {
                // pattern candidates kept if the LM knows the name (i.e. it
                // appears in the gazetteer distilled from the LM's corpus)
                let lower_gaz: Vec<String> =
                    self.gazetteer.iter().map(|g| g.to_lowercase()).collect();
                capitalized_spans(text)
                    .into_iter()
                    .filter(|c| lower_gaz.contains(&c.to_lowercase()))
                    .collect()
            }
        }
    }

    fn gazetteer_extract(&self, text: &str) -> Vec<String> {
        let lower = text.to_lowercase();
        let mut found: Vec<(usize, usize, &str)> = Vec::new();
        for name in &self.gazetteer {
            let needle = name.to_lowercase();
            let mut from = 0;
            while let Some(pos) = lower[from..].find(&needle) {
                let start = from + pos;
                let end = start + needle.len();
                // word boundaries
                let boundary_ok = (start == 0
                    || !lower.as_bytes()[start - 1].is_ascii_alphanumeric())
                    && (end == lower.len()
                        || !lower.as_bytes()[end..]
                            .first()
                            .is_some_and(|b| b.is_ascii_alphanumeric()));
                // skip if covered by an earlier (longer) match
                let covered = found.iter().any(|&(s, e, _)| start >= s && end <= e);
                if boundary_ok && !covered {
                    found.push((start, end, name));
                }
                from = end.min(lower.len());
                if from >= lower.len() {
                    break;
                }
            }
        }
        found.sort_by_key(|&(s, _, _)| s);
        found.into_iter().map(|(_, _, n)| n.to_string()).collect()
    }

    /// Evaluate a method over annotated sentences (span-level micro P/R/F1).
    pub fn evaluate(&self, method: NerMethod, sentences: &[AnnotatedSentence]) -> Prf {
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for s in sentences {
            let gold: Vec<String> = s.entities.iter().map(|(n, _)| n.clone()).collect();
            let pred = self.extract(method, &s.text);
            let p = Prf::from_sets(&pred, &gold);
            tp += p.tp;
            fp += p.fp;
            fn_ += p.fn_;
        }
        Prf::from_counts(tp, fp, fn_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::{annotate_graph, corpus_sentences, entity_surface_forms};
    use kg::synth::{movies, Scale};

    fn fixture() -> (Vec<AnnotatedSentence>, Vec<String>, Slm) {
        let kg = movies(12, Scale::tiny());
        let sentences = annotate_graph(&kg.graph, &kg.ontology);
        let names = entity_surface_forms(&kg.graph);
        let corpus = corpus_sentences(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .entity_names(names.iter().map(String::as_str))
            .build();
        (sentences, names, slm)
    }

    #[test]
    fn gazetteer_is_near_perfect_on_verbalized_corpus() {
        let (sentences, names, _) = fixture();
        let sys = NerSystem::new(names);
        let prf = sys.evaluate(NerMethod::Gazetteer, &sentences);
        assert!(prf.f1 > 0.95, "gazetteer F1 {} too low", prf.f1);
    }

    #[test]
    fn gazetteer_prefers_longest_match() {
        let sys = NerSystem::new(vec!["Lake".into(), "Lake Como".into()]);
        let spans = sys.extract(NerMethod::Gazetteer, "We visited Lake Como today");
        assert_eq!(spans, vec!["Lake Como"]);
    }

    #[test]
    fn gazetteer_respects_word_boundaries() {
        let sys = NerSystem::new(vec!["Rome".into()]);
        assert!(sys
            .extract(NerMethod::Gazetteer, "The syndrome persisted")
            .is_empty());
        assert_eq!(
            sys.extract(NerMethod::Gazetteer, "He left Rome."),
            vec!["Rome"]
        );
    }

    #[test]
    fn pattern_method_finds_capitalized_entities() {
        let (sentences, _, _) = fixture();
        let sys = NerSystem::new(Vec::new());
        let prf = sys.evaluate(NerMethod::Pattern, &sentences);
        assert!(prf.recall > 0.5, "pattern recall {} too low", prf.recall);
    }

    #[test]
    fn distilled_beats_raw_pattern_on_precision() {
        let (sentences, names, slm) = fixture();
        let sys = NerSystem::new(names).with_slm(&slm);
        let pattern = sys.evaluate(NerMethod::Pattern, &sentences);
        let distilled = sys.evaluate(NerMethod::Distilled, &sentences);
        assert!(
            distilled.precision >= pattern.precision,
            "distillation should not hurt precision: {} vs {}",
            distilled.precision,
            pattern.precision
        );
    }

    #[test]
    fn prompt_sim_uses_examples() {
        let (_, names, slm) = fixture();
        let examples = vec![(
            "Zara Quinn is spouse of Omar Reyes".to_string(),
            "Zara Quinn, Omar Reyes".to_string(),
        )];
        let sys = NerSystem::new(names).with_slm(&slm).with_examples(examples);
        let spans = sys.extract(NerMethod::PromptSim, "Lena Marsh is spouse of Kurt Vale");
        assert_eq!(spans, vec!["Lena Marsh", "Kurt Vale"]);
    }

    #[test]
    fn prompt_sim_without_slm_is_empty() {
        let sys = NerSystem::new(Vec::new());
        assert!(sys
            .extract(NerMethod::PromptSim, "Alice met Bob")
            .is_empty());
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(NerMethod::all().len(), 4);
        assert_eq!(NerMethod::Gazetteer.name(), "gazetteer");
    }
}
