//! Relation extraction under the survey's three learning paradigms
//! (§2.1.3): supervised fine-tuning, few-shot in-context learning, and
//! zero-shot verbalizer matching.
//!
//! The unit of classification is the *connector phrase* between two entity
//! mentions — the lexical realization of the relation. The paradigms
//! differ only in how much supervision shapes the connector→relation
//! mapping, which is exactly the axis the survey organizes the literature
//! along.

use std::collections::BTreeMap;

use slm::Slm;

use crate::metrics::Prf;
use crate::testgen::AnnotatedSentence;

/// Learning paradigm for relation extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    /// Full supervision: all training connectors count.
    Supervised,
    /// In-context learning with `k` demonstrations per relation \[89\].
    FewShot(usize),
    /// No demonstrations: match connectors against relation labels \[54\].
    ZeroShot,
}

impl Paradigm {
    /// Stable display name.
    pub fn name(self) -> String {
        match self {
            Paradigm::Supervised => "supervised".to_string(),
            Paradigm::FewShot(k) => format!("few-shot(k={k})"),
            Paradigm::ZeroShot => "zero-shot".to_string(),
        }
    }
}

/// A relation-extraction system bound to an LM backbone.
pub struct RelationExtractor<'a> {
    slm: &'a Slm,
    /// relation IRI → human phrase (for zero-shot matching).
    relation_labels: BTreeMap<String, String>,
    /// learned connector → relation counts (supervised).
    connector_counts: BTreeMap<String, BTreeMap<String, usize>>,
    /// few-shot demonstration pool: relation IRI → distinct connectors
    /// seen in training (ranked by frequency at selection time).
    demos: BTreeMap<String, Vec<String>>,
}

impl<'a> RelationExtractor<'a> {
    /// Create with the candidate relation inventory
    /// (`IRI → label phrase`, e.g. `…/directedBy → "directed by"`).
    pub fn new(slm: &'a Slm, relations: BTreeMap<String, String>) -> Self {
        RelationExtractor {
            slm,
            relation_labels: relations,
            connector_counts: BTreeMap::new(),
            demos: BTreeMap::new(),
        }
    }

    /// Train from annotated sentences (populates both the supervised
    /// statistics and the few-shot demonstration pool).
    pub fn train(&mut self, sentences: &[AnnotatedSentence]) {
        for s in sentences {
            let Some(conn) = connector_of(s) else {
                continue;
            };
            let rel = s.relation.1.clone();
            *self
                .connector_counts
                .entry(conn.clone())
                .or_default()
                .entry(rel.clone())
                .or_insert(0) += 1;
            let pool = self.demos.entry(rel).or_default();
            if !pool.contains(&conn) {
                pool.push(conn);
            }
        }
    }

    /// Predict the relation expressed between the two gold entity spans of
    /// a sentence, under a paradigm. Returns the relation IRI.
    pub fn extract(&self, paradigm: Paradigm, sentence: &AnnotatedSentence) -> Option<String> {
        let conn = connector_of(sentence)?;
        match paradigm {
            Paradigm::Supervised => {
                // exact connector lookup, falling back to best token overlap
                if let Some(counts) = self.connector_counts.get(&conn) {
                    return counts
                        .iter()
                        .max_by_key(|(_, &c)| c)
                        .map(|(rel, _)| rel.clone());
                }
                self.best_by_similarity(&conn, self.all_training_pairs())
            }
            Paradigm::FewShot(k) => {
                // k demonstrations per relation, most frequent connector
                // first — the canonical realizations, not the first k the
                // training pass happened to see
                let pairs: Vec<(&str, &str)> = self
                    .demos
                    .iter()
                    .flat_map(|(rel, conns)| {
                        let mut ranked: Vec<&String> = conns.iter().collect();
                        ranked.sort_by_key(|c| {
                            std::cmp::Reverse(
                                self.connector_counts
                                    .get(c.as_str())
                                    .and_then(|m| m.get(rel))
                                    .copied()
                                    .unwrap_or(0),
                            )
                        });
                        ranked
                            .into_iter()
                            .take(k)
                            .map(move |c| (c.as_str(), rel.as_str()))
                    })
                    .collect();
                self.best_by_similarity(&conn, pairs)
            }
            Paradigm::ZeroShot => {
                // match the connector against relation label phrases
                let pairs: Vec<(&str, &str)> = self
                    .relation_labels
                    .iter()
                    .map(|(iri, label)| (label.as_str(), iri.as_str()))
                    .collect();
                self.best_by_similarity(&conn, pairs)
            }
        }
    }

    fn all_training_pairs(&self) -> Vec<(&str, &str)> {
        self.connector_counts
            .iter()
            .flat_map(|(conn, rels)| rels.keys().map(move |r| (conn.as_str(), r.as_str())))
            .collect()
    }

    /// Pick the relation whose anchor text is most similar to the
    /// connector (LM embedding similarity; ties broken by IRI order).
    fn best_by_similarity(&self, conn: &str, pairs: Vec<(&str, &str)>) -> Option<String> {
        let mut best: Option<(f32, &str)> = None;
        for (anchor, rel) in pairs {
            let sim = self.slm.similarity(conn, anchor);
            match best {
                Some((b, _)) if sim <= b => {}
                _ => best = Some((sim, rel)),
            }
        }
        best.filter(|&(s, _)| s > 0.1)
            .map(|(_, rel)| rel.to_string())
    }

    /// Evaluate a paradigm: micro P/R/F1 over relation predictions
    /// (a `None` prediction counts as a false negative).
    pub fn evaluate(&self, paradigm: Paradigm, test: &[AnnotatedSentence]) -> Prf {
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for s in test {
            match self.extract(paradigm, s) {
                Some(pred) if pred == s.relation.1 => tp += 1,
                Some(_) => {
                    fp += 1;
                    fn_ += 1;
                }
                None => fn_ += 1,
            }
        }
        Prf::from_counts(tp, fp, fn_)
    }
}

/// The text between the subject mention and the object mention.
fn connector_of(s: &AnnotatedSentence) -> Option<String> {
    let subj = &s.entities.first()?.0;
    let obj = &s.entities.get(1)?.0;
    let start = s.text.find(subj.as_str())? + subj.len();
    let end = s.text.rfind(obj.as_str())?;
    if end <= start {
        return None;
    }
    let conn = s.text[start..end].trim().to_string();
    if conn.is_empty() {
        None
    } else {
        Some(conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::{annotate_graph_varied, corpus_sentences, entity_surface_forms};
    use kg::synth::{movies, Scale};

    struct Fixture {
        train: Vec<AnnotatedSentence>,
        test: Vec<AnnotatedSentence>,
        relations: BTreeMap<String, String>,
        slm: Slm,
    }

    fn fixture() -> Fixture {
        let kg = movies(21, Scale::default());
        let mut sentences = annotate_graph_varied(&kg.graph, &kg.ontology, 77);
        let n = sentences.len();
        let test = sentences.split_off(n * 7 / 10);
        let relations: BTreeMap<String, String> = kg
            .ontology
            .properties()
            .filter_map(|(iri, d)| d.label.clone().map(|l| (iri.to_string(), l)))
            .collect();
        let slm = Slm::builder()
            .corpus(
                corpus_sentences(&kg.graph, &kg.ontology)
                    .iter()
                    .map(String::as_str),
            )
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        Fixture {
            train: sentences,
            test,
            relations,
            slm,
        }
    }

    #[test]
    fn supervised_is_strong_on_seen_connectors() {
        let f = fixture();
        let mut re = RelationExtractor::new(&f.slm, f.relations.clone());
        re.train(&f.train);
        let prf = re.evaluate(Paradigm::Supervised, &f.test);
        assert!(prf.f1 > 0.9, "supervised F1 {}", prf.f1);
    }

    #[test]
    fn paradigm_ordering_matches_survey_claim() {
        // supervised ≥ few-shot(k) ≥ zero-shot, and few-shot grows with k
        let f = fixture();
        let mut re = RelationExtractor::new(&f.slm, f.relations.clone());
        re.train(&f.train);
        let sup = re.evaluate(Paradigm::Supervised, &f.test).f1;
        let few4 = re.evaluate(Paradigm::FewShot(4), &f.test).f1;
        let few1 = re.evaluate(Paradigm::FewShot(1), &f.test).f1;
        let zero = re.evaluate(Paradigm::ZeroShot, &f.test).f1;
        assert!(sup >= few4, "supervised {sup} < few-shot(4) {few4}");
        assert!(few4 >= few1, "few-shot(4) {few4} < few-shot(1) {few1}");
        assert!(few1 >= zero * 0.8, "few-shot(1) {few1} ≪ zero-shot {zero}");
        assert!(zero > 0.3, "zero-shot should be well above chance: {zero}");
    }

    #[test]
    fn connector_extraction_works() {
        let f = fixture();
        let s = &f.train[0];
        let conn = connector_of(s).expect("connector exists");
        assert!(!conn.is_empty());
        assert!(!conn.contains(&s.entities[0].0));
    }

    #[test]
    fn untrained_supervised_falls_back_gracefully() {
        let f = fixture();
        let re = RelationExtractor::new(&f.slm, f.relations.clone());
        // no training data at all: supervised has no pairs → None
        let pred = re.extract(Paradigm::Supervised, &f.test[0]);
        assert!(pred.is_none());
        // zero-shot still works without training
        let prf = re.evaluate(Paradigm::ZeroShot, &f.test);
        assert!(prf.f1 > 0.3);
    }
}
