//! Precision / recall / F1 over sets of predictions.

/// Precision, recall, F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// Precision in `[0,1]`.
    pub precision: f64,
    /// Recall in `[0,1]`.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Prf {
    /// Compute from counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf {
            precision,
            recall,
            f1,
            tp,
            fp,
            fn_,
        }
    }

    /// Compute by set comparison (predictions vs gold), deduplicating.
    pub fn from_sets<T: PartialEq>(predicted: &[T], gold: &[T]) -> Self {
        let mut tp = 0;
        let mut seen: Vec<&T> = Vec::new();
        for p in predicted {
            if seen.contains(&p) {
                continue;
            }
            seen.push(p);
            if gold.contains(p) {
                tp += 1;
            }
        }
        let distinct_pred = seen.len();
        let mut gold_seen: Vec<&T> = Vec::new();
        for g in gold {
            if !gold_seen.contains(&g) {
                gold_seen.push(g);
            }
        }
        let fp = distinct_pred - tp;
        let fn_ = gold_seen.len() - tp;
        Prf::from_counts(tp, fp, fn_)
    }

    /// One-line report.
    pub fn report(&self, name: &str) -> String {
        format!(
            "{name:24} P {:.3}  R {:.3}  F1 {:.3}  (tp {} fp {} fn {})",
            self.precision, self.recall, self.f1, self.tp, self.fp, self.fn_
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let p = Prf::from_sets(&["a", "b"], &["a", "b"]);
        assert_eq!(p.f1, 1.0);
        assert_eq!(p.tp, 2);
    }

    #[test]
    fn partial_prediction() {
        let p = Prf::from_sets(&["a", "x"], &["a", "b"]);
        assert_eq!(p.tp, 1);
        assert_eq!(p.fp, 1);
        assert_eq!(p.fn_, 1);
        assert!((p.precision - 0.5).abs() < 1e-9);
        assert!((p.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_cases_do_not_divide_by_zero() {
        let p = Prf::from_sets::<&str>(&[], &[]);
        assert_eq!(p.f1, 0.0);
        let q = Prf::from_sets(&["a"], &[]);
        assert_eq!(q.precision, 0.0);
    }

    #[test]
    fn duplicates_count_once() {
        let p = Prf::from_sets(&["a", "a", "b"], &["a", "b", "b"]);
        assert_eq!(p.tp, 2);
        assert_eq!(p.fp, 0);
        assert_eq!(p.fn_, 0);
    }
}
