//! Bounded admission between connection handlers and the worker pool.
//!
//! The controller is the server's overload valve. Its policy is two
//! watermarks over one queue:
//!
//! * depth < `degrade_depth` — admit at [`Grade::Normal`];
//! * `degrade_depth` ≤ depth < `queue_capacity` — admit at
//!   [`Grade::Degraded`] (the engine runs the request under the tenant's
//!   [`crate::Tenant::degraded_limits`]);
//! * depth = `queue_capacity` — **shed**: the job is handed straight back
//!   to the caller, who must still write a well-formed apology reply.
//!
//! On top of the global watermarks, [`submit_keyed`] enforces a
//! **per-key occupancy cap** (`per_tenant_cap`): one tenant class may
//! hold at most that many queued slots at once, so a free-tier flood
//! fills its own allowance and is shed with
//! [`ShedReason::TenantCap`] while the rest of the queue stays
//! available to other tenants. The cap counts *queued* jobs — a slot is
//! released the moment a worker dequeues the job.
//!
//! Shedding returns the job instead of an error so the caller cannot
//! forget it holds a client that is owed an answer — under overload the
//! protocol degrades, it never drops connections or emits protocol
//! errors.
//!
//! [`submit_keyed`]: AdmissionController::submit_keyed

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// The admission verdict attached to an accepted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grade {
    /// Queue is shallow: run under the tenant's full budget preset.
    Normal,
    /// Queue is past the degrade watermark: run under the tenant's
    /// degraded (tighter) budget preset.
    Degraded,
}

impl Grade {
    /// Stable label used in replies and reports.
    pub fn label(self) -> &'static str {
        match self {
            Grade::Normal => "normal",
            Grade::Degraded => "degraded",
        }
    }
}

/// Why a submission was handed back instead of queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global queue is at capacity.
    QueueFull,
    /// The submitting key already holds `per_tenant_cap` queued slots.
    TenantCap,
    /// The controller has been closed (shutdown in progress).
    Closed,
}

impl ShedReason {
    /// Stable label used in replies and counters.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::TenantCap => "tenant_cap",
            ShedReason::Closed => "closed",
        }
    }
}

/// Watermarks for the bounded queue.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Hard queue bound; submissions at this depth are shed.
    pub queue_capacity: usize,
    /// Depth at and above which admitted work is [`Grade::Degraded`].
    pub degrade_depth: usize,
    /// Most queued slots one key may hold at once
    /// ([`AdmissionController::submit_keyed`]); unkeyed submissions are
    /// exempt. Clamped into `1..=queue_capacity`.
    pub per_tenant_cap: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            queue_capacity: 64,
            degrade_depth: 16,
            // a quarter of the queue: one tenant class can saturate its
            // own allowance without starving the other three quarters
            per_tenant_cap: 16,
        }
    }
}

struct Queue<T> {
    jobs: VecDeque<(T, Grade, Option<String>)>,
    /// Queued-slot count per submission key; entries are removed at zero.
    held: HashMap<String, usize>,
    closed: bool,
}

/// A bounded MPMC work queue with degrade/shed watermarks.
///
/// `submit` never blocks — backpressure is expressed as degradation and
/// shedding, not as producer stalls (a stalled producer would hold a
/// client connection hostage). `next` blocks until a job or close.
pub struct AdmissionController<T> {
    queue: Mutex<Queue<T>>,
    wake: Condvar,
    policy: AdmissionPolicy,
}

impl<T> AdmissionController<T> {
    /// Build a controller with the given watermarks. `degrade_depth` is
    /// clamped into `1..=queue_capacity` and `queue_capacity` to at
    /// least 1, so every controller admits *some* normal-grade work.
    pub fn new(policy: AdmissionPolicy) -> Self {
        let capacity = policy.queue_capacity.max(1);
        let policy = AdmissionPolicy {
            queue_capacity: capacity,
            degrade_depth: policy.degrade_depth.clamp(1, capacity),
            per_tenant_cap: policy.per_tenant_cap.clamp(1, capacity),
        };
        AdmissionController {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                held: HashMap::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            policy,
        }
    }

    /// The active (clamped) policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Try to enqueue a job with no per-tenant accounting. Returns the
    /// admission grade, or the job back when the queue is full (shed) or
    /// the controller is closed — either way the caller still owes the
    /// client a reply.
    pub fn submit(&self, job: T) -> Result<Grade, T> {
        self.submit_inner(job, None).map_err(|(job, _)| job)
    }

    /// Try to enqueue a job charged against `key`'s queued-slot
    /// allowance (`per_tenant_cap`). On shed the job comes back with the
    /// [`ShedReason`], so the apology reply can say *why* — a
    /// `tenant_cap` shed under a half-empty queue is the fairness valve
    /// working, not overload.
    pub fn submit_keyed(&self, job: T, key: &str) -> Result<Grade, (T, ShedReason)> {
        self.submit_inner(job, Some(key))
    }

    fn submit_inner(&self, job: T, key: Option<&str>) -> Result<Grade, (T, ShedReason)> {
        let mut q = self.queue.lock().unwrap();
        if q.closed {
            return Err((job, ShedReason::Closed));
        }
        if q.jobs.len() >= self.policy.queue_capacity {
            return Err((job, ShedReason::QueueFull));
        }
        if let Some(key) = key {
            if q.held.get(key).copied().unwrap_or(0) >= self.policy.per_tenant_cap {
                return Err((job, ShedReason::TenantCap));
            }
            *q.held.entry(key.to_string()).or_insert(0) += 1;
        }
        let grade = if q.jobs.len() >= self.policy.degrade_depth {
            Grade::Degraded
        } else {
            Grade::Normal
        };
        q.jobs.push_back((job, grade, key.map(str::to_string)));
        drop(q);
        self.wake.notify_one();
        Ok(grade)
    }

    /// Block until a job is available (FIFO) or the controller closes.
    /// Jobs come back with the grade they were admitted at. `None` means
    /// closed *and* drained: the worker should exit. Dequeuing releases
    /// the job's per-tenant queued slot.
    pub fn next(&self) -> Option<(T, Grade)> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some((job, grade, key)) = q.jobs.pop_front() {
                if let Some(key) = key {
                    if let Some(held) = q.held.get_mut(&key) {
                        *held -= 1;
                        if *held == 0 {
                            q.held.remove(&key);
                        }
                    }
                }
                return Some((job, grade));
            }
            if q.closed {
                return None;
            }
            q = self.wake.wait(q).unwrap();
        }
    }

    /// Current queue depth (advisory; races with concurrent activity).
    pub fn depth(&self) -> usize {
        self.queue.lock().unwrap().jobs.len()
    }

    /// Close the controller: future submissions are rejected, queued
    /// jobs still drain, and blocked workers wake to exit.
    pub fn close(&self) {
        self.queue.lock().unwrap().closed = true;
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(capacity: usize, degrade: usize) -> AdmissionController<u32> {
        AdmissionController::new(AdmissionPolicy {
            queue_capacity: capacity,
            degrade_depth: degrade,
            ..AdmissionPolicy::default()
        })
    }

    #[test]
    fn grades_follow_the_watermarks_deterministically() {
        let c = controller(4, 2);
        assert_eq!(c.submit(0), Ok(Grade::Normal)); // depth 0
        assert_eq!(c.submit(1), Ok(Grade::Normal)); // depth 1
        assert_eq!(c.submit(2), Ok(Grade::Degraded)); // depth 2 == degrade
        assert_eq!(c.submit(3), Ok(Grade::Degraded)); // depth 3
        assert_eq!(c.submit(4), Err(4)); // depth 4 == capacity: shed
        assert_eq!(c.depth(), 4);
        // Draining one slot readmits — at degraded grade (depth 3).
        assert_eq!(c.next(), Some((0, Grade::Normal)));
        assert_eq!(c.submit(5), Ok(Grade::Degraded));
    }

    #[test]
    fn queue_is_fifo_and_drains_after_close() {
        let c = controller(8, 8);
        for i in 0..3 {
            c.submit(i).unwrap();
        }
        c.close();
        assert!(c.submit(99).is_err(), "closed controller must shed");
        assert_eq!(c.next(), Some((0, Grade::Normal)));
        assert_eq!(c.next(), Some((1, Grade::Normal)));
        assert_eq!(c.next(), Some((2, Grade::Normal)));
        assert_eq!(c.next(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let c = std::sync::Arc::new(controller(2, 1));
        let worker = {
            let c = c.clone();
            std::thread::spawn(move || c.next())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn degenerate_policies_are_clamped() {
        let c = controller(0, 0);
        assert_eq!(c.policy().queue_capacity, 1);
        assert_eq!(c.policy().degrade_depth, 1);
        assert_eq!(c.policy().per_tenant_cap, 1);
        assert_eq!(c.submit(1), Ok(Grade::Normal));
        assert_eq!(c.submit(2), Err(2));
        let wide = controller(4, 100);
        assert_eq!(wide.policy().degrade_depth, 4);
        assert_eq!(wide.policy().per_tenant_cap, 4, "cap clamped to capacity");
    }

    #[test]
    fn tenant_cap_sheds_the_flooder_not_the_queue() {
        let c = AdmissionController::new(AdmissionPolicy {
            queue_capacity: 8,
            degrade_depth: 8,
            per_tenant_cap: 2,
        });
        // "free" fills its allowance, then is shed with TenantCap while
        // the global queue still has six slots free
        assert_eq!(c.submit_keyed(0, "free"), Ok(Grade::Normal));
        assert_eq!(c.submit_keyed(1, "free"), Ok(Grade::Normal));
        assert_eq!(c.submit_keyed(2, "free"), Err((2, ShedReason::TenantCap)));
        assert_eq!(c.depth(), 2);
        // another key is unaffected
        assert_eq!(c.submit_keyed(3, "pro"), Ok(Grade::Normal));
        // dequeuing a "free" job releases one slot for that key
        assert_eq!(c.next(), Some((0, Grade::Normal)));
        assert_eq!(c.submit_keyed(4, "free"), Ok(Grade::Normal));
        assert_eq!(c.submit_keyed(5, "free"), Err((5, ShedReason::TenantCap)));
    }

    #[test]
    fn keyed_sheds_report_queue_full_and_closed() {
        let c = AdmissionController::new(AdmissionPolicy {
            queue_capacity: 2,
            degrade_depth: 2,
            per_tenant_cap: 2,
        });
        assert_eq!(c.submit_keyed(0, "a"), Ok(Grade::Normal));
        assert_eq!(c.submit_keyed(1, "b"), Ok(Grade::Normal));
        // capacity, not the per-key cap, is the binding constraint here
        assert_eq!(c.submit_keyed(2, "c"), Err((2, ShedReason::QueueFull)));
        c.close();
        assert_eq!(c.submit_keyed(3, "a"), Err((3, ShedReason::Closed)));
    }
}
