//! The scenario engine: one parsed [`Request`] in, one JSON reply out.
//!
//! The engine owns the shared read side — a borrowed
//! [`llmkg::Workbench`] plus one RAG pipeline built over its corpus —
//! and is shared (`&Engine`) by every worker thread. Each call runs the
//! request's scenario under the tenant's budget preset (the degraded
//! preset when admission said so), wires the caller's
//! [`CancelToken`] into the executor, and accounts the request in the
//! engine's [`obs::Registry`]:
//!
//! * `serve.requests`, `serve.requests.<scenario>`, `serve.tenant.<class>`
//! * `serve.degraded` — requests run under degraded budgets
//! * `serve.latency_us.<scenario>` — per-scenario latency histograms
//!
//! Replies are never errors for overload-shaped trouble: budget
//! exhaustion and cancellation produce `ok: true` apology/degraded
//! replies; only malformed client input (bad JSON, bad SPARQL) produces
//! `ok: false`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use durable::{DurableGraph, Op};
use kgquery::exec::ExecOptions;
use kgquery::{CacheOutcome, PlanCache, QueryError, ResultSet};
use kgrag::{RagMode, RagPipeline};
use llmkg::Workbench;
use obs::{MetricsSnapshot, NullRecorder, Registry, Tracer};
use resilience::CancelToken;
use serde_json::{Map, Value};
use slm::GenParams;

use crate::admission::Grade;
use crate::protocol::{Request, Scenario};
use crate::tenant::Tenant;

/// Token cap for degraded LM completions (normal runs use the
/// [`GenParams::default`] cap).
const DEGRADED_MAX_TOKENS: usize = 8;

/// How many result rows a SPARQL reply renders inline.
const RENDERED_ROWS: usize = 5;

/// The apology text served when admission sheds a request.
pub const SHED_APOLOGY: &str =
    "I can't take this request right now — the service is over capacity. Please retry shortly.";

/// The apology text served when the client went away mid-request.
const CANCELLED_APOLOGY: &str = "Request cancelled by the caller before it could run.";

/// The reply text for ingest requests while the durable store is in
/// read-only degrade (a persistent I/O error was observed).
pub const READ_ONLY_APOLOGY: &str =
    "The durable store hit a persistent I/O error and is read-only; \
     queries still work, writes are refused until the operator intervenes.";

/// The server's durable write side: the WAL-backed graph behind a lock
/// (ingest is rare next to reads; one writer at a time keeps ack
/// ordering trivial) plus the sticky read-only latch that trips on the
/// first persistent I/O error.
struct DurableState {
    store: Mutex<DurableGraph>,
    read_only: AtomicBool,
}

/// The shared scenario engine. One per server; `&Engine` is handed to
/// every worker thread (see the crate-level `Send + Sync` assertions).
pub struct Engine<'a> {
    wb: &'a Workbench,
    rag: RagPipeline<'a>,
    tracer: Tracer,
    /// One prepared-query plan cache per tenant class (free / standard /
    /// pro), so a noisy free tenant's query churn can never evict a paid
    /// tenant's hot plans. Cache traffic lands on the `plan_cache.*`
    /// counters and therefore in every stats reply.
    plan_caches: [Arc<PlanCache>; 3],
    /// The durable write side, when the server was configured with one.
    durable: Option<DurableState>,
}

impl<'a> Engine<'a> {
    /// Build the engine over a workbench. The RAG pipeline (chunking +
    /// vector index over the verbalized corpus) is built once here, not
    /// per request.
    pub fn new(wb: &'a Workbench) -> Engine<'a> {
        Engine {
            wb,
            rag: wb.rag(),
            // Spans are discarded (a long-lived server cannot buffer
            // every span in memory); the tracer's registry still
            // accumulates every counter and histogram.
            tracer: Tracer::new(Arc::new(NullRecorder)),
            plan_caches: std::array::from_fn(|_| Arc::new(PlanCache::default())),
            durable: None,
        }
    }

    /// Enable retrieval request coalescing on the shared RAG pipeline:
    /// concurrent `rag` requests whose vector searches land within one
    /// time/size window run as a single batched kernel pass, bit-identical
    /// to uncoalesced retrieval (see [`kgrag::batch`]).
    pub fn with_coalescing(mut self, window: kgrag::BatchWindow) -> Engine<'a> {
        self.rag = self.rag.with_coalescing(window);
        self
    }

    /// Attach an opened durable store; `ingest` requests append to it.
    pub fn with_durable(mut self, store: DurableGraph) -> Engine<'a> {
        self.durable = Some(DurableState {
            store: Mutex::new(store),
            read_only: AtomicBool::new(false),
        });
        self
    }

    /// Whether the durable store has latched into read-only degrade.
    pub fn durable_read_only(&self) -> bool {
        self.durable
            .as_ref()
            .is_some_and(|d| d.read_only.load(Ordering::SeqCst))
    }

    /// Checkpoint the durable store (shutdown path): fsync the WAL,
    /// snapshot the graph, rotate to a fresh segment. Best-effort —
    /// `Ok(false)` when no store is attached; an `Err` leaves the WAL as
    /// the source of truth for the next recovery.
    pub fn checkpoint_durable(&self) -> std::io::Result<bool> {
        let Some(ds) = &self.durable else {
            return Ok(false);
        };
        let mut store = ds.store.lock().expect("durable store lock");
        store.checkpoint()?;
        Ok(true)
    }

    /// The plan cache serving a tenant class.
    pub fn plan_cache(&self, tenant: Tenant) -> &Arc<PlanCache> {
        let idx = match tenant {
            Tenant::Free => 0,
            Tenant::Standard => 1,
            Tenant::Pro => 2,
        };
        &self.plan_caches[idx]
    }

    /// The engine's metrics registry (counters + latency histograms).
    pub fn registry(&self) -> &Registry {
        self.tracer.registry()
    }

    /// A consistent copy of the engine's metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry().snapshot()
    }

    /// Run one admitted request to a reply. Never panics on any input
    /// and never returns a non-object value.
    pub fn handle(&self, req: &Request, grade: Grade, cancel: &CancelToken) -> Value {
        let start = Instant::now();
        let tenant = Tenant::from_id(&req.tenant);
        let limits = match grade {
            Grade::Normal => tenant.limits(),
            Grade::Degraded => tenant.degraded_limits(),
        };
        let reg = self.registry();
        reg.incr("serve.requests", 1);
        reg.incr(&format!("serve.requests.{}", req.scenario.label()), 1);
        reg.incr(&format!("serve.tenant.{}", tenant.label()), 1);
        if grade == Grade::Degraded {
            reg.incr("serve.degraded", 1);
        }

        let span = self.tracer.span("serve.request");
        span.set("scenario", req.scenario.label());
        span.set("tenant", tenant.label());
        span.set("grade", grade.label());

        let mut reply = base_reply(req, tenant, grade.label());
        reply.insert("shed".into(), Value::Bool(false));
        let mut degraded = grade == Grade::Degraded;

        if cancel.is_cancelled() && req.scenario != Scenario::Stats {
            reg.incr("serve.cancelled", 1);
            reply.insert("ok".into(), Value::Bool(true));
            reply.insert("answer".into(), Value::String(CANCELLED_APOLOGY.into()));
            reply.insert("route".into(), Value::String("cancelled".into()));
            reply.insert("degraded".into(), Value::Bool(true));
            return self.finish(reply, req.scenario, start);
        }

        match req.scenario {
            Scenario::Chat => {
                let mut bot = self
                    .wb
                    .chatbot()
                    .with_limits(limits)
                    .with_cancel(cancel.clone());
                let r = bot.handle_observed(&req.input, &span);
                degraded |= r.degradation.degraded();
                reply.insert("ok".into(), Value::Bool(true));
                reply.insert("answer".into(), Value::String(r.text));
                reply.insert("route".into(), Value::String(r.decision.label().into()));
                reply.insert("rows".into(), Value::from(r.rows as u64));
            }
            Scenario::Rag => {
                // The pipeline is shared across workers, so per-request
                // cancellation is checked up front (above) rather than
                // threaded into it; degradation swaps the requested mode
                // for closed-book generation — no retrieval work at all.
                let mode = if grade == Grade::Degraded {
                    RagMode::ClosedBook
                } else {
                    req.mode
                };
                let r = self.rag.answer_observed(mode, &req.input, &span);
                degraded |= r.degradation.degraded();
                reply.insert("ok".into(), Value::Bool(true));
                reply.insert("answer".into(), Value::String(r.text));
                reply.insert("route".into(), Value::String(r.module.into()));
                reply.insert("rows".into(), Value::from(r.retrieved.len() as u64));
            }
            Scenario::Sparql => {
                let mut opts = ExecOptions::with_limits(limits);
                opts.cancel = Some(cancel.clone());
                // Prepare through the tenant class's plan cache: repeated
                // query shapes (templated clients, dashboards, retries)
                // skip parse + planning. A parse/compile failure surfaces
                // below exactly as the old parse-execute path did.
                let result = self
                    .plan_cache(tenant)
                    .prepare(self.wb.graph(), &req.input)
                    .and_then(|(prepared, outcome)| {
                        reg.incr(
                            match outcome {
                                CacheOutcome::Hit => "plan_cache.hits",
                                CacheOutcome::Miss => "plan_cache.misses",
                                CacheOutcome::Invalidated => "plan_cache.invalidations",
                            },
                            1,
                        );
                        prepared.run_observed(self.wb.graph(), &opts, &span)
                    });
                match result {
                    Ok(rs) => {
                        degraded |= rs.truncated;
                        reply.insert("ok".into(), Value::Bool(true));
                        reply.insert("answer".into(), Value::String(self.render_rows(&rs)));
                        reply.insert("route".into(), Value::String("sparql".into()));
                        reply.insert("rows".into(), Value::from(rs.len() as u64));
                        reply.insert("truncated".into(), Value::Bool(rs.truncated));
                    }
                    Err(QueryError::LimitExceeded { .. }) => {
                        // Budget exhaustion is overload, not client error:
                        // apologize inside the protocol.
                        degraded = true;
                        reg.incr("serve.budget_exhausted", 1);
                        reply.insert("ok".into(), Value::Bool(true));
                        reply.insert(
                            "answer".into(),
                            Value::String(
                                "The query exceeded its resource budget and was stopped."
                                    .to_string(),
                            ),
                        );
                        reply.insert("route".into(), Value::String("budget-exceeded".into()));
                        reply.insert("rows".into(), Value::from(0u64));
                    }
                    Err(e) => {
                        reg.incr("serve.client_errors", 1);
                        reply.insert("ok".into(), Value::Bool(false));
                        reply.insert("error".into(), Value::String(format!("query error: {e}")));
                    }
                }
            }
            Scenario::Complete => {
                let params = GenParams {
                    max_tokens: if grade == Grade::Degraded {
                        DEGRADED_MAX_TOKENS
                    } else {
                        GenParams::default().max_tokens
                    },
                    ..GenParams::default()
                };
                let text = self.wb.slm.complete(&req.input, &params);
                reply.insert("ok".into(), Value::Bool(true));
                reply.insert("answer".into(), Value::String(text));
                reply.insert("route".into(), Value::String("completion".into()));
            }
            Scenario::Ingest => {
                degraded |= self.handle_ingest(req, &mut reply, reg);
            }
            Scenario::Stats => {
                // Normally intercepted by the server (which knows queue
                // depth and inflight); served standalone the live-state
                // gauges read zero.
                return self.stats_reply(req, 0, 0);
            }
        }

        reply.insert("degraded".into(), Value::Bool(degraded));
        self.finish(reply, req.scenario, start)
    }

    /// Run one `ingest` request against the durable store, filling in
    /// the reply fields; returns whether the outcome counts as degraded.
    ///
    /// The failure ladder never drops the connection:
    /// * no durable store configured → `ok: false` client error;
    /// * unparseable N-Triples → `ok: false` client error;
    /// * store already read-only → `ok: true`, `route: "read-only"`,
    ///   `durable: false` (the write was NOT accepted);
    /// * I/O error on append/fsync → same read-only reply, and the
    ///   read-only latch trips so later writes are refused up front.
    ///   The batch is unacknowledged: recovery is free to drop it.
    fn handle_ingest(&self, req: &Request, reply: &mut Map<String, Value>, reg: &Registry) -> bool {
        let Some(ds) = &self.durable else {
            reg.incr("serve.client_errors", 1);
            reply.insert("ok".into(), Value::Bool(false));
            reply.insert(
                "error".into(),
                Value::String("this server has no durable store configured".into()),
            );
            return false;
        };
        if ds.read_only.load(Ordering::SeqCst) {
            reg.incr("serve.read_only_rejects", 1);
            reply.insert("ok".into(), Value::Bool(true));
            reply.insert("durable".into(), Value::Bool(false));
            reply.insert("route".into(), Value::String("read-only".into()));
            reply.insert("answer".into(), Value::String(READ_ONLY_APOLOGY.into()));
            reply.insert("rows".into(), Value::from(0u64));
            return true;
        }
        let parsed = match kg::turtle::parse_ntriples(&req.input) {
            Ok(g) => g,
            Err(e) => {
                reg.incr("serve.client_errors", 1);
                reply.insert("ok".into(), Value::Bool(false));
                reply.insert("error".into(), Value::String(format!("bad N-Triples: {e}")));
                return false;
            }
        };
        let ops: Vec<Op> = parsed
            .iter()
            .map(|t| {
                let pool = parsed.pool();
                Op::Insert(
                    pool.resolve(t.s).clone(),
                    pool.resolve(t.p).clone(),
                    pool.resolve(t.o).clone(),
                )
            })
            .collect();
        let mut store = ds.store.lock().expect("durable store lock");
        let result = match store.append(&ops) {
            Ok(true) => Ok(()),
            Ok(false) => store.sync(), // group-commit window still open
            Err(e) => Err(e),
        };
        match result {
            Ok(()) => {
                reply.insert("ok".into(), Value::Bool(true));
                reply.insert("durable".into(), Value::Bool(true));
                reply.insert("route".into(), Value::String("ingest".into()));
                reply.insert("rows".into(), Value::from(ops.len() as u64));
                false
            }
            Err(e) => {
                drop(store);
                ds.read_only.store(true, Ordering::SeqCst);
                reg.incr("serve.durable_io_errors", 1);
                reply.insert("ok".into(), Value::Bool(true));
                reply.insert("durable".into(), Value::Bool(false));
                reply.insert("route".into(), Value::String("read-only".into()));
                reply.insert(
                    "answer".into(),
                    Value::String(format!("{READ_ONLY_APOLOGY} ({e})")),
                );
                reply.insert("rows".into(), Value::from(0u64));
                true
            }
        }
    }

    /// The introspection reply: every counter plus per-histogram
    /// `count/mean/p50/p95/p99/max`, with the server's live gauges.
    pub fn stats_reply(&self, req: &Request, inflight: u64, queue_depth: u64) -> Value {
        let start = Instant::now();
        let snap = self.snapshot();
        let mut counters = Map::new();
        for (name, v) in &snap.counters {
            counters.insert(name.clone(), Value::from(*v));
        }
        counters.insert("serve.inflight".into(), Value::from(inflight));
        counters.insert("serve.queue_depth".into(), Value::from(queue_depth));
        // The durable store accumulates its wal.* metrics in its own
        // registry (it outlives any one tracer); splice them in so one
        // stats call sees the whole server.
        let durable_snap = self.durable.as_ref().map(|ds| {
            counters.insert(
                "serve.durable_read_only".into(),
                Value::from(ds.read_only.load(Ordering::SeqCst) as u64),
            );
            ds.store.lock().expect("durable store lock").metrics()
        });
        if let Some(dsnap) = &durable_snap {
            for (name, v) in &dsnap.counters {
                counters.insert(name.clone(), Value::from(*v));
            }
        }
        // Gauges are ratios (f64), kept apart from the monotone counters.
        let mut gauges = Map::new();
        let mut agg = kgquery::PlanCacheStats::default();
        for tenant in [Tenant::Free, Tenant::Standard, Tenant::Pro] {
            let s = self.plan_cache(tenant).stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.invalidations += s.invalidations;
            gauges.insert(
                format!("plan_cache.warmth.{}", tenant.label()),
                Value::from(s.warmth()),
            );
        }
        gauges.insert("plan_cache.warmth".into(), Value::from(agg.warmth()));
        let mut hists = Map::new();
        if let Some(dsnap) = &durable_snap {
            for (name, h) in &dsnap.histograms {
                hists.insert(name.clone(), histogram_json(h));
            }
        }
        for (name, h) in &snap.histograms {
            hists.insert(name.clone(), histogram_json(h));
        }
        // The retrieval block: serving-relevant facts about the shared
        // vector index that counters alone can't carry — which SIMD path
        // the batch kernel dispatched to, whether (and why) IVF silently
        // fell back to exact scans, and the coalescing window knobs.
        let mut retrieval = Map::new();
        let vidx = self.rag.vector_index();
        retrieval.insert("docs_indexed".into(), Value::from(vidx.len() as u64));
        retrieval.insert(
            "dispatch".into(),
            Value::String(slm::dispatch_path().label().into()),
        );
        retrieval.insert("ivf_enabled".into(), Value::Bool(vidx.ivf_enabled()));
        if let Some(fb) = vidx.ivf_fallback() {
            retrieval.insert("ivf_fallback".into(), Value::String(fb.reason().into()));
            retrieval.insert("ivf_fallback_detail".into(), Value::String(fb.describe()));
        }
        match vidx.coalescing_window() {
            Some(w) => {
                retrieval.insert("coalescing".into(), Value::Bool(true));
                retrieval.insert("batch_max".into(), Value::from(w.max_batch as u64));
                retrieval.insert(
                    "batch_max_wait_us".into(),
                    Value::from(w.max_wait.as_micros() as u64),
                );
            }
            None => {
                retrieval.insert("coalescing".into(), Value::Bool(false));
            }
        }
        let mut reply = base_reply(req, Tenant::from_id(&req.tenant), "normal");
        reply.insert("ok".into(), Value::Bool(true));
        reply.insert("shed".into(), Value::Bool(false));
        reply.insert("degraded".into(), Value::Bool(false));
        reply.insert("counters".into(), Value::Object(counters));
        reply.insert("gauges".into(), Value::Object(gauges));
        reply.insert("histograms".into(), Value::Object(hists));
        reply.insert("retrieval".into(), Value::Object(retrieval));
        self.finish(reply, Scenario::Stats, start)
    }

    /// The well-formed apology reply for a shed request, carrying the
    /// [`crate::admission::ShedReason`] label so clients can tell a
    /// per-tenant cap (`tenant_cap` — back off *your* traffic) from
    /// global overload (`queue_full`). The caller (the connection
    /// handler) accounts `serve.shed.*` — this is a static constructor
    /// so shedding does zero engine work.
    pub fn shed_reply(req: &Request, reason: &str) -> Value {
        let mut reply = base_reply(req, Tenant::from_id(&req.tenant), "shed");
        reply.insert("ok".into(), Value::Bool(true));
        reply.insert("shed".into(), Value::Bool(true));
        reply.insert("shed_reason".into(), Value::String(reason.into()));
        reply.insert("degraded".into(), Value::Bool(true));
        reply.insert("answer".into(), Value::String(SHED_APOLOGY.into()));
        reply.insert("route".into(), Value::String("shed".into()));
        Value::Object(reply)
    }

    /// The well-formed reply for a request that failed to parse.
    pub fn error_reply(message: &str) -> Value {
        let mut reply = Map::new();
        reply.insert("ok".into(), Value::Bool(false));
        reply.insert("shed".into(), Value::Bool(false));
        reply.insert("degraded".into(), Value::Bool(false));
        reply.insert("error".into(), Value::String(message.to_string()));
        Value::Object(reply)
    }

    fn finish(&self, mut reply: Map<String, Value>, scenario: Scenario, start: Instant) -> Value {
        let us = start.elapsed().as_micros() as u64;
        self.registry()
            .observe(&format!("serve.latency_us.{}", scenario.label()), us as f64);
        reply.insert("latency_us".into(), Value::from(us));
        Value::Object(reply)
    }

    /// Render the first [`RENDERED_ROWS`] rows of a result set as display
    /// text (entity display names, literal lexical forms).
    fn render_rows(&self, rs: &ResultSet) -> String {
        if let Some(b) = rs.ask {
            return b.to_string();
        }
        let g = self.wb.graph();
        let rendered: Vec<String> = rs
            .rows
            .iter()
            .take(RENDERED_ROWS)
            .map(|row| {
                row.iter()
                    .map(|cell| match cell {
                        None => "∅".to_string(),
                        Some(kg::Term::Literal(l)) => l.lexical.clone(),
                        Some(kg::Term::Blank(b)) => b.clone(),
                        Some(kg::Term::Iri(iri)) => g
                            .pool()
                            .get_iri(iri)
                            .map(|s| g.display_name(s))
                            .unwrap_or_else(|| {
                                kg::namespace::humanize(kg::namespace::local_name(iri))
                            }),
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .collect();
        let mut out = rendered.join("; ");
        if rs.len() > RENDERED_ROWS {
            out.push_str(&format!("; … ({} rows total)", rs.len()));
        }
        out
    }
}

/// Render one histogram snapshot as the stats reply's summary object.
fn histogram_json(h: &obs::HistogramSnapshot) -> Value {
    let mut one = Map::new();
    one.insert("count".into(), Value::from(h.count));
    one.insert("mean".into(), Value::from(h.mean()));
    one.insert("p50".into(), Value::from(h.quantile(0.50)));
    one.insert("p95".into(), Value::from(h.quantile(0.95)));
    one.insert("p99".into(), Value::from(h.quantile(0.99)));
    one.insert("max".into(), Value::from(h.max));
    Value::Object(one)
}

/// The fields every reply carries, whatever the scenario or outcome.
fn base_reply(req: &Request, tenant: Tenant, grade: &str) -> Map<String, Value> {
    let mut reply = Map::new();
    if let Some(id) = req.id {
        reply.insert("id".into(), Value::from(id));
    }
    reply.insert(
        "scenario".into(),
        Value::String(req.scenario.label().into()),
    );
    reply.insert("tenant".into(), Value::String(tenant.label().into()));
    reply.insert("grade".into(), Value::String(grade.into()));
    reply
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmkg::WorkbenchConfig;

    fn wb() -> Workbench {
        Workbench::build(&WorkbenchConfig {
            entities_per_class: 8,
            ..Default::default()
        })
    }

    fn req(scenario: Scenario, input: &str) -> Request {
        Request {
            id: Some(1),
            tenant: "pro:test".into(),
            scenario,
            input: input.into(),
            mode: RagMode::Naive,
        }
    }

    #[test]
    fn all_four_scenarios_produce_ok_replies() {
        let wb = wb();
        let engine = Engine::new(&wb);
        let film = wb.graph().display_name(wb.graph().entities()[0]);
        let cancel = CancelToken::new();
        let cases = [
            req(Scenario::Chat, &format!("Who directed {film}?")),
            req(Scenario::Rag, &format!("Who directed {film}?")),
            req(
                Scenario::Sparql,
                "PREFIX v: <http://llmkg.dev/vocab/> SELECT ?f WHERE { ?f a v:Film }",
            ),
            req(Scenario::Complete, "the film"),
        ];
        for r in cases {
            let v = engine.handle(&r, Grade::Normal, &cancel);
            let obj = v.as_object().unwrap();
            assert_eq!(obj.get("ok").and_then(Value::as_bool), Some(true), "{r:?}");
            assert_eq!(obj.get("id").and_then(Value::as_u64), Some(1));
            assert_eq!(obj.get("grade").and_then(Value::as_str), Some("normal"));
            assert!(obj.get("latency_us").is_some());
        }
        let snap = engine.snapshot();
        assert_eq!(snap.counter("serve.requests"), 4);
        assert_eq!(snap.counter("serve.tenant.pro"), 4);
        assert_eq!(snap.histograms["serve.latency_us.chat"].count, 1);
    }

    #[test]
    fn degraded_grade_is_marked_and_counted() {
        let wb = wb();
        let engine = Engine::new(&wb);
        let cancel = CancelToken::new();
        let v = engine.handle(
            &req(Scenario::Complete, "the film"),
            Grade::Degraded,
            &cancel,
        );
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("grade").and_then(Value::as_str), Some("degraded"));
        assert_eq!(obj.get("degraded").and_then(Value::as_bool), Some(true));
        assert_eq!(engine.snapshot().counter("serve.degraded"), 1);
    }

    #[test]
    fn cancelled_requests_get_an_apology_not_work() {
        let wb = wb();
        let engine = Engine::new(&wb);
        let cancel = CancelToken::new();
        cancel.cancel();
        let v = engine.handle(
            &req(Scenario::Sparql, "SELECT ?x WHERE { ?x a ?c }"),
            Grade::Normal,
            &cancel,
        );
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(obj.get("route").and_then(Value::as_str), Some("cancelled"));
        assert_eq!(engine.snapshot().counter("serve.cancelled"), 1);
    }

    #[test]
    fn bad_sparql_is_a_client_error_but_well_formed() {
        let wb = wb();
        let engine = Engine::new(&wb);
        let cancel = CancelToken::new();
        let v = engine.handle(
            &req(Scenario::Sparql, "SELEC nonsense"),
            Grade::Normal,
            &cancel,
        );
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("ok").and_then(Value::as_bool), Some(false));
        assert!(obj.get("error").and_then(Value::as_str).is_some());
    }

    #[test]
    fn repeated_sparql_hits_the_tenant_class_plan_cache() {
        let wb = wb();
        let engine = Engine::new(&wb);
        let cancel = CancelToken::new();
        let q = "PREFIX v: <http://llmkg.dev/vocab/> SELECT ?f WHERE { ?f a v:Film }";
        let first = engine.handle(&req(Scenario::Sparql, q), Grade::Normal, &cancel);
        // same query, different whitespace: still one cache entry
        let q2 = "PREFIX v: <http://llmkg.dev/vocab/>  SELECT ?film\nWHERE { ?film a v:Film }";
        let second = engine.handle(&req(Scenario::Sparql, q2), Grade::Normal, &cancel);
        assert_eq!(
            first.as_object().unwrap().get("rows"),
            second.as_object().unwrap().get("rows")
        );
        let snap = engine.snapshot();
        assert_eq!(snap.counter("plan_cache.misses"), 1);
        assert_eq!(snap.counter("plan_cache.hits"), 1);
        // a free tenant running the same query goes to its own cache
        let mut free = req(Scenario::Sparql, q);
        free.tenant = "free:guest".into();
        engine.handle(&free, Grade::Normal, &cancel);
        assert_eq!(engine.snapshot().counter("plan_cache.misses"), 2);
        assert_eq!(engine.plan_cache(Tenant::Pro).stats().entries, 1);
        assert_eq!(engine.plan_cache(Tenant::Free).stats().entries, 1);
        // the stats reply surfaces the counters to clients
        let stats = engine.stats_reply(&req(Scenario::Stats, ""), 0, 0);
        let counters = stats
            .as_object()
            .unwrap()
            .get("counters")
            .and_then(Value::as_object)
            .unwrap();
        assert_eq!(
            counters.get("plan_cache.hits").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn shed_and_error_replies_are_static_and_well_formed() {
        let r = req(Scenario::Chat, "hi");
        let v = Engine::shed_reply(&r, "queue_full");
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("shed").and_then(Value::as_bool), Some(true));
        assert_eq!(
            obj.get("shed_reason").and_then(Value::as_str),
            Some("queue_full")
        );
        assert_eq!(obj.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            obj.get("answer").and_then(Value::as_str),
            Some(SHED_APOLOGY)
        );
        let e = Engine::error_reply("nope");
        assert_eq!(
            e.as_object().unwrap().get("error").and_then(Value::as_str),
            Some("nope")
        );
    }

    #[test]
    fn ingest_without_a_durable_store_is_a_client_error() {
        let wb = wb();
        let engine = Engine::new(&wb);
        let cancel = CancelToken::new();
        let v = engine.handle(
            &req(Scenario::Ingest, "<http://a> <http://b> <http://c> ."),
            Grade::Normal,
            &cancel,
        );
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("ok").and_then(Value::as_bool), Some(false));
        assert!(obj
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("durable"));
    }

    #[test]
    fn ingest_appends_durably_and_surfaces_wal_metrics() {
        let wb = wb();
        let storage = Arc::new(durable::MemStorage::new());
        let store = DurableGraph::open(storage, durable::DurableOptions::default()).unwrap();
        let engine = Engine::new(&wb).with_durable(store);
        let cancel = CancelToken::new();
        let v = engine.handle(
            &req(
                Scenario::Ingest,
                "<http://e/x> <http://v/p> <http://e/y> .\n<http://e/y> <http://v/p> <http://e/z> .",
            ),
            Grade::Normal,
            &cancel,
        );
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj.get("ok").and_then(Value::as_bool),
            Some(true),
            "{obj:?}"
        );
        assert_eq!(obj.get("durable").and_then(Value::as_bool), Some(true));
        assert_eq!(obj.get("rows").and_then(Value::as_u64), Some(2));
        // bad N-Triples is a client error, not an I/O event
        let bad = engine.handle(
            &req(Scenario::Ingest, "this is not ntriples"),
            Grade::Normal,
            &cancel,
        );
        assert_eq!(
            bad.as_object().unwrap().get("ok").and_then(Value::as_bool),
            Some(false)
        );
        assert!(!engine.durable_read_only());
        // wal.* counters and the warmth gauges ride the stats reply
        let stats = engine.stats_reply(&req(Scenario::Stats, ""), 0, 0);
        let obj = stats.as_object().unwrap();
        let counters = obj.get("counters").and_then(Value::as_object).unwrap();
        assert_eq!(counters.get("wal.appends").and_then(Value::as_u64), Some(1));
        assert_eq!(counters.get("wal.fsyncs").and_then(Value::as_u64), Some(1));
        assert_eq!(
            counters
                .get("serve.durable_read_only")
                .and_then(Value::as_u64),
            Some(0)
        );
        let gauges = obj.get("gauges").and_then(Value::as_object).unwrap();
        assert!(gauges.contains_key("plan_cache.warmth"));
        assert!(gauges.contains_key("plan_cache.warmth.pro"));
        let hists = obj.get("histograms").and_then(Value::as_object).unwrap();
        assert!(hists.contains_key("wal.fsync_us"));
        // shutdown checkpoint succeeds
        assert!(engine.checkpoint_durable().unwrap());
    }

    #[test]
    fn durable_io_error_degrades_to_read_only_not_a_dropped_reply() {
        let wb = wb();
        // Kill the backing store after ~1KiB: the first big append tears.
        let storage = Arc::new(durable::FaultyStorage::new(durable::IoFaultConfig {
            kill_at_byte: Some(1024),
            ..Default::default()
        }));
        let store = DurableGraph::open(storage, durable::DurableOptions::default()).unwrap();
        let engine = Engine::new(&wb).with_durable(store);
        let cancel = CancelToken::new();
        let mut nt = String::new();
        for i in 0..100 {
            nt.push_str(&format!("<http://e/s{i}> <http://v/p> <http://e/o{i}> .\n"));
        }
        let v = engine.handle(&req(Scenario::Ingest, &nt), Grade::Normal, &cancel);
        let obj = v.as_object().unwrap();
        // well-formed in-protocol reply, not an error or a hang
        assert_eq!(
            obj.get("ok").and_then(Value::as_bool),
            Some(true),
            "{obj:?}"
        );
        assert_eq!(obj.get("durable").and_then(Value::as_bool), Some(false));
        assert_eq!(obj.get("route").and_then(Value::as_str), Some("read-only"));
        assert!(engine.durable_read_only());
        // subsequent writes are refused up front, still in-protocol
        let again = engine.handle(
            &req(Scenario::Ingest, "<http://a> <http://b> <http://c> ."),
            Grade::Normal,
            &cancel,
        );
        let obj = again.as_object().unwrap();
        assert_eq!(obj.get("route").and_then(Value::as_str), Some("read-only"));
        assert_eq!(engine.snapshot().counter("serve.read_only_rejects"), 1);
    }

    #[test]
    fn stats_reply_surfaces_retrieval_block_and_coalesced_rag_path() {
        let wb = wb();
        let engine = Engine::new(&wb).with_coalescing(kgrag::BatchWindow::default());
        let v = engine.stats_reply(&req(Scenario::Stats, ""), 0, 0);
        let retrieval = v
            .as_object()
            .unwrap()
            .get("retrieval")
            .and_then(Value::as_object)
            .unwrap();
        assert!(
            retrieval
                .get("docs_indexed")
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );
        let dispatch = retrieval.get("dispatch").and_then(Value::as_str).unwrap();
        assert!(["scalar", "avx2", "neon"].contains(&dispatch), "{dispatch}");
        assert_eq!(
            retrieval.get("coalescing").and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(retrieval.get("batch_max").and_then(Value::as_u64), Some(8));
        assert_eq!(
            retrieval.get("batch_max_wait_us").and_then(Value::as_u64),
            Some(200)
        );
        // rag requests now retrieve through the coalesced entry point
        let cancel = CancelToken::new();
        let film = wb.graph().display_name(wb.graph().entities()[0]);
        let r = engine.handle(
            &req(Scenario::Rag, &format!("Who directed {film}?")),
            Grade::Normal,
            &cancel,
        );
        assert_eq!(
            r.as_object().unwrap().get("ok").and_then(Value::as_bool),
            Some(true)
        );
        assert!(engine.snapshot().counter("retrieval.batch.coalesced") >= 1);
        // without the builder, the block reports coalescing off
        let plain = Engine::new(&wb);
        let v = plain.stats_reply(&req(Scenario::Stats, ""), 0, 0);
        let retrieval = v
            .as_object()
            .unwrap()
            .get("retrieval")
            .and_then(Value::as_object)
            .unwrap();
        assert_eq!(
            retrieval.get("coalescing").and_then(Value::as_bool),
            Some(false)
        );
    }

    #[test]
    fn stats_reply_carries_counters_and_quantiles() {
        let wb = wb();
        let engine = Engine::new(&wb);
        let cancel = CancelToken::new();
        engine.handle(&req(Scenario::Complete, "the film"), Grade::Normal, &cancel);
        let v = engine.stats_reply(&req(Scenario::Stats, ""), 3, 7);
        let obj = v.as_object().unwrap();
        let counters = obj.get("counters").and_then(Value::as_object).unwrap();
        assert_eq!(
            counters.get("serve.requests").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            counters.get("serve.inflight").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(
            counters.get("serve.queue_depth").and_then(Value::as_u64),
            Some(7)
        );
        let hists = obj.get("histograms").and_then(Value::as_object).unwrap();
        let h = hists
            .get("serve.latency_us.complete")
            .and_then(Value::as_object)
            .unwrap();
        assert_eq!(h.get("count").and_then(Value::as_u64), Some(1));
        assert!(h.get("p99").is_some());
    }
}
