//! # serve — the multi-tenant serving front end
//!
//! Everything below this crate answers questions; this crate answers
//! *traffic*. A hand-rolled thread-pool TCP server speaks a minimal
//! newline-delimited JSON protocol and multiplexes the workspace's four
//! scenario types — KGQA chat, RAG answering, raw SPARQL, and LM
//! completion — onto one shared [`llmkg::Workbench`], wiring the
//! resilience primitives end-to-end (see `docs/serving.md`):
//!
//! * **per-tenant budgets** — each request's tenant id selects a
//!   [`Tenant`] class whose [`resilience::ResourceLimits`] preset governs
//!   its KG queries;
//! * **admission control** — a bounded work queue between the connection
//!   handlers and the worker pool degrades (tighter limits) and then
//!   sheds (immediate apology reply) under overload, instead of erroring
//!   or dropping connections;
//! * **cancellation on disconnect** — a [`resilience::CancelToken`] per
//!   request trips when the client's connection dies, so abandoned work
//!   backs out at the executor's next checkpoint;
//! * **introspection** — `serve.*` counters and per-scenario latency
//!   histograms accumulate in an [`obs::Registry`] and are served back by
//!   the `stats` scenario.
//!
//! The zero-dependency ethos holds: the server is `std::net` + a scoped
//! thread pool; the protocol reuses the workspace's vendored
//! `serde_json` (which grew a parser for this crate).
//!
//! ```no_run
//! use serve::{Server, ServeConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let handle = Server::spawn(ServeConfig::default()).unwrap();
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! writeln!(conn, r#"{{"scenario":"chat","tenant":"pro:acme","input":"Who directed Heat?"}}"#).unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use admission::{AdmissionController, AdmissionPolicy, Grade, ShedReason};
pub use engine::Engine;
pub use protocol::{parse_request, Request, Scenario};
pub use server::{DurableStore, ServeConfig, Server, ServerHandle};
pub use tenant::Tenant;
