//! The TCP front end: accept loop, connection handlers, worker pool.
//!
//! ```text
//!  client ──TCP──▶ connection handler ──▶ AdmissionController ──▶ worker pool ──▶ Engine
//!                   (parse, grade,          (bounded queue,        (N threads,     (Workbench)
//!                    disconnect watch)       degrade / shed)        shared &Engine)
//! ```
//!
//! One OS thread per connection reads newline-delimited requests, grades
//! them through the [`AdmissionController`], and writes exactly one
//! reply line per request, in order. While a request is in flight its
//! handler polls the socket for EOF; a client that goes away trips the
//! request's [`CancelToken`], so the executor backs out at its next
//! checkpoint instead of finishing work nobody will read.
//!
//! [`Server::spawn`] binds the listener synchronously (so the caller has
//! a connectable address immediately) and builds the
//! [`llmkg::Workbench`] on the server's root thread; early connections
//! queue in the accept backlog until it is ready.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use durable::{DiskStorage, DurableGraph, DurableOptions, Storage};
use llmkg::{Workbench, WorkbenchConfig};
use resilience::CancelToken;
use serde_json::Value;

use crate::admission::{AdmissionController, AdmissionPolicy};
use crate::engine::Engine;
use crate::protocol::{parse_request, Scenario, MAX_REQUEST_BYTES};
use crate::tenant::Tenant;

/// Where the server's durable (`ingest`) store lives.
#[derive(Clone)]
pub enum DurableStore {
    /// A directory on disk ([`DiskStorage`]).
    Dir(String),
    /// An injected storage backend — tests hand in a
    /// [`durable::MemStorage`] or [`durable::FaultyStorage`] here to
    /// exercise restart and fault paths without touching disk.
    Custom(Arc<dyn Storage>),
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableStore::Dir(p) => f.debug_tuple("Dir").field(p).finish(),
            DurableStore::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Admission watermarks for the worker queue.
    pub admission: AdmissionPolicy,
    /// The workbench (domain, scale, seed) to serve.
    pub workbench: WorkbenchConfig,
    /// Socket read timeout; bounds how fast handlers notice shutdown and
    /// client disconnects.
    pub poll_interval: Duration,
    /// Optional durable store backing the `ingest` scenario. Recovery
    /// runs inside [`Server::spawn`] (so corruption surfaces as an error
    /// there, not a half-started server); recovered triples are merged
    /// into the served graph before the first connection is accepted,
    /// and a checkpoint is written on clean shutdown.
    pub durable: Option<DurableStore>,
    /// Retrieval request coalescing: concurrent `rag` requests whose
    /// vector searches land within one time/size window are serviced by
    /// a single batched kernel pass (see `docs/serving.md`). Results are
    /// bit-identical to uncoalesced retrieval; the window's `max_wait`
    /// bounds the added latency. `None` disables coalescing.
    pub coalescing: Option<kgrag::BatchWindow>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            admission: AdmissionPolicy::default(),
            workbench: WorkbenchConfig::default(),
            poll_interval: Duration::from_millis(50),
            durable: None,
            coalescing: Some(kgrag::BatchWindow::default()),
        }
    }
}

/// An admitted unit of work: the request, its cancel token, and the
/// channel its reply goes back on.
struct Job {
    req: crate::protocol::Request,
    cancel: CancelToken,
    reply: mpsc::Sender<Value>,
}

/// The server entry point; see [`Server::spawn`].
pub struct Server;

/// Handle to a running server: its bound address and a shutdown switch.
/// Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    root: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind the listener, start the server on a background thread, and
    /// return a handle with the (resolved) local address.
    pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Open (and recover) the durable store synchronously: an
        // unreadable store is a spawn error the operator sees, never a
        // server that silently serves less data than it accepted.
        let durable = match &config.durable {
            None => None,
            Some(store) => {
                let storage: Arc<dyn Storage> = match store {
                    DurableStore::Dir(path) => Arc::new(DiskStorage::new(path.clone())?),
                    DurableStore::Custom(s) => Arc::clone(s),
                };
                Some(DurableGraph::open(storage, DurableOptions::default())?)
            }
        };
        let stop = Arc::new(AtomicBool::new(false));
        let root = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("serve-root".to_string())
                .spawn(move || run(listener, config, durable, &stop))?
        };
        Ok(ServerHandle {
            addr,
            stop,
            root: Some(root),
        })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain queued work, and join every server thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(root) = self.root.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; the connection is closed immediately
        // by the stop check on the other side.
        let _ = TcpStream::connect(self.addr);
        let _ = root.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The root thread: build the workbench, then host workers, the accept
/// loop, and one handler thread per connection under a single scope.
fn run(
    listener: TcpListener,
    config: ServeConfig,
    durable: Option<DurableGraph>,
    stop: &AtomicBool,
) {
    let mut wb = Workbench::build(&config.workbench);
    if let Some(d) = &durable {
        // Triples recovered from the WAL/checkpoint are served alongside
        // the synthetic graph from the first request.
        wb.kg.graph.merge(d.graph());
    }
    let mut engine = match durable {
        Some(d) => Engine::new(&wb).with_durable(d),
        None => Engine::new(&wb),
    };
    if let Some(window) = config.coalescing {
        engine = engine.with_coalescing(window);
    }
    let engine = engine;
    let admission = AdmissionController::<Job>::new(config.admission);
    let inflight = AtomicU64::new(0);

    thread::scope(|s| {
        for i in 0..config.workers.max(1) {
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn_scoped(s, || worker_loop(&engine, &admission, &inflight))
                .expect("spawn worker");
        }
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(sock) = conn else { continue };
            engine.registry().incr("serve.connections", 1);
            let handler = thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn_scoped(s, || {
                    handle_connection(
                        sock,
                        &engine,
                        &admission,
                        &inflight,
                        stop,
                        config.poll_interval,
                    )
                });
            if handler.is_err() {
                // Could not spawn a handler (resource pressure): the
                // socket just closed; the client sees a clean EOF.
                engine.registry().incr("serve.connections_refused", 1);
            }
        }
        admission.close();
    });
    // Workers have drained: snapshot the durable store so the next start
    // recovers from a checkpoint instead of replaying the whole WAL. An
    // error here is fine — the synced WAL already holds every acked
    // write; it just means a longer replay next time.
    if engine.checkpoint_durable().is_err() {
        engine.registry().incr("serve.checkpoint_errors", 1);
    }
}

/// Worker: pull admitted jobs, run them, send replies back.
fn worker_loop(engine: &Engine<'_>, admission: &AdmissionController<Job>, inflight: &AtomicU64) {
    while let Some((job, grade)) = admission.next() {
        inflight.fetch_add(1, Ordering::SeqCst);
        let reply = engine.handle(&job.req, grade, &job.cancel);
        inflight.fetch_sub(1, Ordering::SeqCst);
        // A dead receiver means the client's handler already gave up
        // (disconnect); the work was cancelled best-effort, drop it.
        let _ = job.reply.send(reply);
    }
}

/// What [`read_request_line`] produced.
enum LineOutcome {
    /// A complete request line (newline included) is in the buffer.
    Line,
    /// The client closed (or half-closed) the connection.
    Eof,
    /// The line exceeded [`MAX_REQUEST_BYTES`]; the stream cannot be
    /// resynchronized.
    Oversized,
}

/// Accumulate one newline-terminated line, tolerating read timeouts
/// (which double as stop-flag checks) and bounding the buffer so a
/// newline-free stream cannot grow memory without limit.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    stop: &AtomicBool,
) -> LineOutcome {
    line.clear();
    let cap = (MAX_REQUEST_BYTES + 2) as u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return LineOutcome::Eof;
        }
        let remaining = cap.saturating_sub(line.len() as u64);
        if remaining == 0 {
            return LineOutcome::Oversized;
        }
        let mut limited = Read::take(reader.by_ref(), remaining);
        match limited.read_line(line) {
            Ok(0) => return LineOutcome::Eof,
            Ok(_) if line.ends_with('\n') => return LineOutcome::Line,
            // Hit the take-limit or a mid-line EOF: loop to classify
            // (next pass returns Oversized or Eof).
            Ok(_) => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Invalid UTF-8 or a transport error: drop the connection
            // (there is no line to attach an error reply to).
            Err(_) => return LineOutcome::Eof,
        }
    }
}

/// Serve one connection: read → grade → dispatch → reply, in order,
/// watching for client disconnect while a request is in flight.
fn handle_connection(
    sock: TcpStream,
    engine: &Engine<'_>,
    admission: &AdmissionController<Job>,
    inflight: &AtomicU64,
    stop: &AtomicBool,
    poll: Duration,
) {
    let _ = sock.set_read_timeout(Some(poll));
    let _ = sock.set_nodelay(true);
    let Ok(read_half) = sock.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = &sock;
    let mut line = String::new();

    loop {
        match read_request_line(&mut reader, &mut line, stop) {
            LineOutcome::Eof => return,
            LineOutcome::Oversized => {
                engine.registry().incr("serve.protocol_errors", 1);
                let reply =
                    Engine::error_reply(&format!("request line exceeds {MAX_REQUEST_BYTES} bytes"));
                let _ = write_reply(&mut writer, &reply);
                return; // stream is desynchronized; close it
            }
            LineOutcome::Line => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        engine.registry().incr("serve.accepted", 1);

        let req = match parse_request(trimmed) {
            Ok(req) => req,
            Err(msg) => {
                engine.registry().incr("serve.protocol_errors", 1);
                if write_reply(&mut writer, &Engine::error_reply(&msg)).is_err() {
                    return;
                }
                continue;
            }
        };

        // Stats is introspection, answered inline: it must work *during*
        // overload, so it never competes for the queue it is reporting on.
        if req.scenario == Scenario::Stats {
            let reply = engine.stats_reply(
                &req,
                inflight.load(Ordering::SeqCst),
                admission.depth() as u64,
            );
            if write_reply(&mut writer, &reply).is_err() {
                return;
            }
            continue;
        }

        let cancel = CancelToken::new();
        // If this handler unwinds with the job still in flight, the
        // guard trips the token so a worker doesn't finish work nobody
        // will read; on the normal path it is disarmed once the reply
        // (or shed verdict) is in hand.
        let guard = cancel.drop_guard();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            req,
            cancel: cancel.clone(),
            reply: tx,
        };
        // Admission is keyed by tenant class, so one class's flood fills
        // its own per-tenant allowance instead of the whole queue.
        let tenant_class = Tenant::from_id(&job.req.tenant).label();
        let reply = match admission.submit_keyed(job, tenant_class) {
            Err((job, reason)) => {
                engine.registry().incr("serve.shed", 1);
                engine
                    .registry()
                    .incr(&format!("serve.shed.{}", reason.label()), 1);
                Engine::shed_reply(&job.req, reason.label())
            }
            Ok(_grade) => await_reply(&rx, &sock, &cancel, poll),
        };
        guard.disarm();
        if write_reply(&mut writer, &reply).is_err() {
            return;
        }
        if cancel.is_cancelled() {
            // The disconnect watch tripped: the peer is gone.
            return;
        }
    }
}

/// Wait for the worker's reply, polling the socket for EOF; a vanished
/// client cancels the in-flight work (the worker still sends a reply —
/// it is written into the void and the handler exits).
fn await_reply(
    rx: &mpsc::Receiver<Value>,
    sock: &TcpStream,
    cancel: &CancelToken,
    poll: Duration,
) -> Value {
    loop {
        match rx.recv_timeout(poll) {
            Ok(reply) => return reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !cancel.is_cancelled() && peer_gone(sock) {
                    cancel.cancel();
                }
            }
            // Worker pool shut down mid-request (server stopping): the
            // client still gets a well-formed apology.
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Engine::error_reply("server is shutting down");
            }
        }
    }
}

/// True when the peer has closed its end: a zero-byte peek. Unread
/// pipelined bytes or a quiet-but-alive peer (peek times out) both mean
/// the connection is still good.
fn peer_gone(sock: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    matches!(sock.peek(&mut probe), Ok(0))
}

fn write_reply(writer: &mut &TcpStream, reply: &Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string(reply)
        .unwrap_or_else(|_| "{\"ok\":false,\"error\":\"serialization failure\"}".to_string());
    text.push('\n');
    // One write call → one TCP segment: splitting the newline off into
    // its own write invites a Nagle / delayed-ACK stall on the peer.
    writer.write_all(text.as_bytes())?;
    writer.flush()
}
