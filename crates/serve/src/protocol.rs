//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one reply line per request, in order. A request
//! is a JSON object:
//!
//! ```json
//! {"id": 7, "tenant": "pro:acme", "scenario": "chat", "input": "Who directed Heat?"}
//! ```
//!
//! * `scenario` (required) — `"chat"`, `"rag"`, `"sparql"`, `"complete"`,
//!   `"ingest"`, or `"stats"`;
//! * `input` (required except for `stats`) — the utterance / question /
//!   query / prompt, or (for `ingest`) N-Triples text to append to the
//!   server's durable store;
//! * `tenant` (optional) — free-form id classified by
//!   [`crate::Tenant::from_id`]; absent means anonymous (free tier);
//! * `id` (optional) — echoed verbatim in the reply for client-side
//!   correlation;
//! * `mode` (optional, `rag` only) — `"naive"` (default), `"closed-book"`,
//!   `"advanced"`, or `"modular"`.
//!
//! Every reply is a well-formed JSON object with at least `ok`, `shed`,
//! `degraded`, and `grade` fields; malformed input produces
//! `{"ok": false, "error": ...}` on the same connection rather than a
//! close (see `docs/serving.md` for the full reply schema).

use kgrag::RagMode;
use serde_json::Value;

/// Longest accepted request line, in bytes. Longer lines are answered
/// with a protocol error reply and skipped, never buffered unboundedly.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// The four servable scenario types, plus introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// One KGQA chatbot turn (text-to-SPARQL ladder).
    Chat,
    /// One RAG answer over the verbalized corpus.
    Rag,
    /// A raw SPARQL query against the KG.
    Sparql,
    /// A raw LM completion.
    Complete,
    /// Append N-Triples to the server's durable (WAL-backed) store;
    /// `ok` + `durable: true` means the write survived an fsync.
    Ingest,
    /// Introspection: the server's counters and latency histograms.
    Stats,
}

impl Scenario {
    /// Stable label used on the wire, in counters, and in reports.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Chat => "chat",
            Scenario::Rag => "rag",
            Scenario::Sparql => "sparql",
            Scenario::Complete => "complete",
            Scenario::Ingest => "ingest",
            Scenario::Stats => "stats",
        }
    }

    /// The four workload scenarios (excludes `stats`).
    pub fn workloads() -> [Scenario; 4] {
        [
            Scenario::Chat,
            Scenario::Rag,
            Scenario::Sparql,
            Scenario::Complete,
        ]
    }

    fn parse(s: &str) -> Option<Scenario> {
        Some(match s {
            "chat" => Scenario::Chat,
            "rag" => Scenario::Rag,
            "sparql" => Scenario::Sparql,
            "complete" => Scenario::Complete,
            "ingest" => Scenario::Ingest,
            "stats" => Scenario::Stats,
            _ => return None,
        })
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client correlation id, echoed in the reply when present.
    pub id: Option<u64>,
    /// Raw tenant id (empty when absent).
    pub tenant: String,
    /// Which scenario to run.
    pub scenario: Scenario,
    /// The utterance / question / query / prompt.
    pub input: String,
    /// RAG mode (only meaningful for [`Scenario::Rag`]).
    pub mode: RagMode,
}

/// Parse one request line. Errors are human-readable strings that go
/// straight into the `error` field of a protocol-error reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(format!(
            "request line exceeds {MAX_REQUEST_BYTES} bytes ({})",
            line.len()
        ));
    }
    let v = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = v
        .as_object()
        .ok_or_else(|| "request must be a JSON object".to_string())?;
    let scenario_name = obj
        .get("scenario")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing required string field \"scenario\"".to_string())?;
    let scenario = Scenario::parse(scenario_name).ok_or_else(|| {
        format!(
            "unknown scenario {scenario_name:?} (expected chat|rag|sparql|complete|ingest|stats)"
        )
    })?;
    let input = obj
        .get("input")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    if input.is_empty() && scenario != Scenario::Stats {
        return Err(format!(
            "scenario {:?} requires a non-empty \"input\" field",
            scenario.label()
        ));
    }
    let mode = match obj.get("mode").and_then(Value::as_str) {
        None => RagMode::Naive,
        Some("naive") => RagMode::Naive,
        Some("closed-book") => RagMode::ClosedBook,
        Some("advanced") => RagMode::Advanced,
        Some("modular") => RagMode::Modular,
        Some(other) => {
            return Err(format!(
                "unknown rag mode {other:?} (expected naive|closed-book|advanced|modular)"
            ))
        }
    };
    Ok(Request {
        id: obj.get("id").and_then(Value::as_u64),
        tenant: obj
            .get("tenant")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string(),
        scenario,
        input,
        mode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = parse_request(
            r#"{"id": 9, "tenant": "pro:acme", "scenario": "rag", "mode": "modular", "input": "q"}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(9));
        assert_eq!(r.tenant, "pro:acme");
        assert_eq!(r.scenario, Scenario::Rag);
        assert_eq!(r.mode, RagMode::Modular);
        assert_eq!(r.input, "q");
    }

    #[test]
    fn defaults_are_sensible() {
        let r = parse_request(r#"{"scenario": "chat", "input": "hello"}"#).unwrap();
        assert_eq!(r.id, None);
        assert_eq!(r.tenant, "");
        assert_eq!(r.mode, RagMode::Naive);
        let stats = parse_request(r#"{"scenario": "stats"}"#).unwrap();
        assert_eq!(stats.scenario, Scenario::Stats);
        let ingest = parse_request(
            r#"{"scenario": "ingest", "input": "<http://a> <http://b> <http://c> ."}"#,
        )
        .unwrap();
        assert_eq!(ingest.scenario, Scenario::Ingest);
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"input": "x"}"#, "scenario"),
            (r#"{"scenario": "warp", "input": "x"}"#, "unknown scenario"),
            (r#"{"scenario": "chat"}"#, "non-empty"),
            (
                r#"{"scenario": "rag", "mode": "hyper", "input": "x"}"#,
                "unknown rag mode",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn oversized_lines_are_rejected_cheaply() {
        let huge = format!(
            r#"{{"scenario":"chat","input":"{}"}}"#,
            "x".repeat(MAX_REQUEST_BYTES)
        );
        assert!(parse_request(&huge).unwrap_err().contains("exceeds"));
    }
}
