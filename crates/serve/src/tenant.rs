//! Tenant classes and their [`ResourceLimits`] presets.
//!
//! A request names its tenant with a free-form id (`"free:alice"`,
//! `"pro:acme"`); the id's class prefix selects the budget preset its KG
//! work runs under. The presets are the per-tenant follow-on that
//! `docs/resilience.md` deferred until a serving front end existed.

use std::time::Duration;

use resilience::ResourceLimits;

/// A tenant's service class, parsed from the request's tenant id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tenant {
    /// Anonymous / free tier: tight budgets, first to degrade.
    Free,
    /// The default tier for any unrecognized tenant id.
    Standard,
    /// Paid tier: the widest budgets, degraded only under real pressure.
    Pro,
}

impl Tenant {
    /// Classify a tenant id by its class prefix (`free:`/`pro:`, or the
    /// bare class name). Unknown ids — including the empty id — are
    /// [`Tenant::Standard`].
    pub fn from_id(id: &str) -> Tenant {
        let class = id.split(':').next().unwrap_or("");
        match class.to_ascii_lowercase().as_str() {
            "free" | "anon" | "anonymous" => Tenant::Free,
            "pro" | "paid" => Tenant::Pro,
            _ => Tenant::Standard,
        }
    }

    /// Stable label used in replies, counters, and reports.
    pub fn label(self) -> &'static str {
        match self {
            Tenant::Free => "free",
            Tenant::Standard => "standard",
            Tenant::Pro => "pro",
        }
    }

    /// The tenant's normal-operation budget preset.
    ///
    /// Wall clocks are generous relative to the synthetic workloads (a
    /// chat turn is ~1ms): the budgets exist to bound pathological
    /// queries, not to shape healthy traffic.
    pub fn limits(self) -> ResourceLimits {
        match self {
            Tenant::Free => ResourceLimits::unlimited()
                .with_wall(Duration::from_millis(250))
                .with_max_rows(20_000)
                .with_max_path_expansions(20_000),
            Tenant::Standard => ResourceLimits::unlimited()
                .with_wall(Duration::from_millis(1_000))
                .with_max_rows(200_000)
                .with_max_path_expansions(200_000),
            Tenant::Pro => ResourceLimits::unlimited()
                .with_wall(Duration::from_millis(4_000))
                .with_max_rows(2_000_000)
                .with_max_path_expansions(2_000_000),
        }
    }

    /// The tenant's budget preset under admission-controller degradation:
    /// wall clock quartered, row/path budgets cut 8×. Degraded requests
    /// still complete — with smaller answers and earlier truncation — and
    /// carry `"grade": "degraded"` in their reply.
    pub fn degraded_limits(self) -> ResourceLimits {
        let full = self.limits();
        let mut out = ResourceLimits::unlimited();
        if let Some(wall) = full.wall {
            out = out.with_wall(wall / 4);
        }
        if let Some(rows) = full.max_rows {
            out = out.with_max_rows((rows / 8).max(1));
        }
        if let Some(px) = full.max_path_expansions {
            out = out.with_max_path_expansions((px / 8).max(1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_classify_by_prefix() {
        assert_eq!(Tenant::from_id("free:alice"), Tenant::Free);
        assert_eq!(Tenant::from_id("anonymous"), Tenant::Free);
        assert_eq!(Tenant::from_id("pro:acme"), Tenant::Pro);
        assert_eq!(Tenant::from_id("PAID:x"), Tenant::Pro);
        assert_eq!(Tenant::from_id("team-42"), Tenant::Standard);
        assert_eq!(Tenant::from_id(""), Tenant::Standard);
    }

    #[test]
    fn presets_are_ordered_and_degradation_tightens() {
        let free = Tenant::Free.limits();
        let pro = Tenant::Pro.limits();
        assert!(free.max_rows.unwrap() < pro.max_rows.unwrap());
        assert!(free.wall.unwrap() < pro.wall.unwrap());
        for t in [Tenant::Free, Tenant::Standard, Tenant::Pro] {
            let full = t.limits();
            let deg = t.degraded_limits();
            assert!(deg.wall.unwrap() < full.wall.unwrap(), "{t:?}");
            assert!(deg.max_rows.unwrap() < full.max_rows.unwrap(), "{t:?}");
            assert!(
                deg.max_path_expansions.unwrap() < full.max_path_expansions.unwrap(),
                "{t:?}"
            );
        }
    }
}
