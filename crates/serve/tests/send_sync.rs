//! Compile-time thread-safety audit for everything the server shares
//! across its worker, handler, and accept threads. A regression here —
//! say an `Rc` or `RefCell` slipping into the `Workbench` or a pipeline
//! — fails this file at *compile* time, before any runtime test runs.

use std::net::TcpStream;

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_server_state_is_send_and_sync() {
    // The workbench is owned by the root thread and borrowed by every
    // worker through the engine: it must be Sync.
    assert_send_sync::<llmkg::Workbench>();
    // The engine itself is handed to workers as `&Engine`.
    fn engine_is_shareable<'a>() {
        assert_send_sync::<serve::Engine<'a>>();
    }
    engine_is_shareable();
    // The admission queue is the cross-thread rendezvous.
    assert_send_sync::<serve::AdmissionController<String>>();
    // Resilience primitives travel with jobs between threads.
    assert_send_sync::<resilience::CancelToken>();
    assert_send_sync::<resilience::ResourceLimits>();
    assert_send::<resilience::CancelGuard>();
    // Observability state is written from every thread.
    assert_send_sync::<obs::Registry>();
    assert_send_sync::<obs::Tracer>();
    assert_send_sync::<obs::MetricsSnapshot>();
}

#[test]
fn borrowed_pipelines_are_shareable() {
    // Workers answer RAG requests through one shared `&RagPipeline`;
    // chatbots are built per request and may move to a worker thread.
    fn rag_is_shareable<'a>() {
        assert_send_sync::<kgrag::RagPipeline<'a>>();
    }
    fn chatbot_is_sendable<'a>() {
        assert_send::<kgqa::chatbot::ChatBot<'a>>();
    }
    rag_is_shareable();
    chatbot_is_sendable();
}

#[test]
fn protocol_and_handle_types_cross_threads() {
    assert_send::<serve::Request>();
    assert_send_sync::<serve::Scenario>();
    assert_send_sync::<serve::Tenant>();
    assert_send_sync::<serve::Grade>();
    // The server handle is created on one thread and often dropped on
    // another (tests, benches).
    assert_send::<serve::ServerHandle>();
    assert_send::<TcpStream>();
}
