//! End-to-end loopback tests: a real server on an ephemeral port, real
//! TCP clients, all four scenarios, malformed input, overload, and a
//! mid-request disconnect. The contract under test: every request gets
//! exactly one well-formed JSON reply line — degraded or apologetic
//! under pressure, never a dropped connection or a protocol error.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use llmkg::WorkbenchConfig;
use serde_json::Value;
use serve::{AdmissionPolicy, ServeConfig, Server, ServerHandle};

fn small_config() -> ServeConfig {
    ServeConfig {
        workbench: WorkbenchConfig {
            entities_per_class: 8,
            ..Default::default()
        },
        workers: 2,
        ..Default::default()
    }
}

struct Client {
    sock: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let sock = TcpStream::connect(handle.addr()).expect("connect");
        sock.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(sock.try_clone().expect("clone"));
        Client { sock, reader }
    }

    // Single write per request (payload + newline): a separate `\n`
    // write can stall ~40ms on Nagle + delayed ACK.
    fn send(&mut self, line: &str) {
        self.sock
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(line.ends_with('\n'), "reply must be newline-terminated");
        serde_json::from_str(line.trim()).expect("reply must be valid JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }

    fn stats(&mut self) -> Value {
        self.roundtrip(r#"{"scenario":"stats"}"#)
    }
}

fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

#[test]
fn all_four_scenarios_roundtrip_on_one_connection() {
    let handle = Server::spawn(small_config()).unwrap();
    let mut c = Client::connect(&handle);

    let chat =
        c.roundtrip(r#"{"id":1,"tenant":"pro:t","scenario":"chat","input":"Who directed Film?"}"#);
    let rag =
        c.roundtrip(r#"{"id":2,"scenario":"rag","mode":"naive","input":"Who directed Film?"}"#);
    let sparql = c.roundtrip(
        r#"{"id":3,"tenant":"free:x","scenario":"sparql","input":"PREFIX v: <http://llmkg.dev/vocab/> SELECT ?f WHERE { ?f a v:Film }"}"#,
    );
    let complete = c.roundtrip(r#"{"id":4,"scenario":"complete","input":"the film"}"#);

    for (i, reply) in [(&chat, 1u64), (&rag, 2), (&sparql, 3), (&complete, 4)]
        .iter()
        .map(|(r, i)| (*i, *r))
    {
        assert_eq!(
            reply.get("ok").and_then(Value::as_bool),
            Some(true),
            "{reply:?}"
        );
        assert_eq!(reply.get("id").and_then(Value::as_u64), Some(i));
        assert_eq!(reply.get("grade").and_then(Value::as_str), Some("normal"));
        assert_eq!(reply.get("shed").and_then(Value::as_bool), Some(false));
        assert!(reply.get("latency_us").and_then(Value::as_u64).is_some());
    }
    assert!(sparql.get("rows").and_then(Value::as_u64).unwrap() > 0);
    assert_eq!(sparql.get("tenant").and_then(Value::as_str), Some("free"));
    assert_eq!(chat.get("tenant").and_then(Value::as_str), Some("pro"));

    let stats = c.stats();
    assert_eq!(counter(&stats, "serve.requests"), 4);
    assert_eq!(counter(&stats, "serve.accepted"), 5); // 4 workloads + stats
    assert_eq!(counter(&stats, "serve.requests.chat"), 1);
    assert_eq!(counter(&stats, "serve.tenant.pro"), 1);
    let hists = stats.get("histograms").and_then(Value::as_object).unwrap();
    assert!(
        hists.contains_key("serve.latency_us.rag"),
        "latency histogram"
    );

    handle.shutdown();
}

#[test]
fn malformed_requests_get_error_replies_and_the_connection_survives() {
    let handle = Server::spawn(small_config()).unwrap();
    let mut c = Client::connect(&handle);

    for bad in [
        "this is not json",
        r#"{"scenario":"warp","input":"x"}"#,
        r#"{"input":"no scenario"}"#,
        r#"[1,2,3]"#,
    ] {
        let reply = c.roundtrip(bad);
        assert_eq!(
            reply.get("ok").and_then(Value::as_bool),
            Some(false),
            "{bad}"
        );
        assert!(
            reply.get("error").and_then(Value::as_str).is_some(),
            "{bad}"
        );
    }
    // Blank lines are skipped, and the connection still serves real work.
    c.send("");
    let good = c.roundtrip(r#"{"scenario":"complete","input":"the film"}"#);
    assert_eq!(good.get("ok").and_then(Value::as_bool), Some(true));

    let stats = c.stats();
    assert_eq!(counter(&stats, "serve.protocol_errors"), 4);
    handle.shutdown();
}

#[test]
fn oversized_lines_are_answered_then_the_stream_closes() {
    let handle = Server::spawn(small_config()).unwrap();
    let mut c = Client::connect(&handle);
    // 80 KiB of garbage with no newline until the end: unparseable and
    // over the line cap — the server must bound its buffer, answer, and
    // hang up (the stream cannot be resynchronized).
    let huge = "x".repeat(80 * 1024);
    c.send(&huge);
    let reply = c.recv();
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
    assert!(reply
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("exceeds"));
    // Closing with unread bytes in the kernel buffer surfaces as either
    // a clean EOF or an RST depending on timing — both mean "closed".
    let mut rest = String::new();
    match c.reader.read_line(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "closed"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }
    handle.shutdown();
}

#[test]
fn overload_degrades_and_sheds_but_every_request_is_answered() {
    // One worker and a one-slot queue: any request submitted while the
    // worker is busy is degraded, any further one is shed.
    let handle = Server::spawn(ServeConfig {
        workers: 1,
        admission: AdmissionPolicy {
            queue_capacity: 1,
            degrade_depth: 1,
            ..AdmissionPolicy::default()
        },
        ..small_config()
    })
    .unwrap();

    let clients = 12;
    let per_client = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let mut joins = Vec::new();
    for t in 0..clients {
        let barrier = Arc::clone(&barrier);
        let addr = handle.addr();
        joins.push(std::thread::spawn(move || {
            let sock = TcpStream::connect(addr).expect("connect");
            sock.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(sock.try_clone().unwrap());
            let mut sock = sock;
            barrier.wait();
            let mut replies = Vec::new();
            for i in 0..per_client {
                let line = format!(
                    r#"{{"id":{i},"tenant":"free:{t}","scenario":"rag","input":"Who directed the film?"}}"#
                );
                sock.write_all(format!("{line}\n").as_bytes()).expect("send");
                let mut line = String::new();
                reader.read_line(&mut line).expect("recv");
                let v: Value = serde_json::from_str(line.trim()).expect("well-formed");
                replies.push(v);
            }
            replies
        }));
    }
    let mut total = 0u64;
    let mut shed_seen = 0u64;
    for j in joins {
        for reply in j.join().expect("client thread") {
            total += 1;
            // Overload never produces errors: every reply is ok, with
            // the pressure expressed in grade/shed/degraded fields.
            assert_eq!(
                reply.get("ok").and_then(Value::as_bool),
                Some(true),
                "{reply:?}"
            );
            assert!(reply.get("shed").and_then(Value::as_bool).is_some());
            if reply.get("shed") == Some(&Value::Bool(true)) {
                shed_seen += 1;
                assert_eq!(
                    reply.get("grade").and_then(Value::as_str),
                    Some("shed"),
                    "{reply:?}"
                );
                assert!(reply.get("answer").and_then(Value::as_str).is_some());
            }
        }
    }
    assert_eq!(total, (clients * per_client) as u64);

    let mut c = Client::connect(&handle);
    let stats = c.stats();
    let requests = counter(&stats, "serve.requests");
    let shed = counter(&stats, "serve.shed");
    let degraded = counter(&stats, "serve.degraded");
    assert_eq!(requests + shed, total, "every request ran or was shed");
    assert_eq!(shed, shed_seen);
    assert!(
        shed + degraded > 0,
        "12 concurrent clients against a 1-worker/1-slot server must trip admission \
         (shed={shed} degraded={degraded})"
    );
    handle.shutdown();
}

#[test]
fn per_tenant_cap_keeps_a_pro_tenant_served_under_a_free_flood() {
    // One worker; the queue is deep enough that global capacity never
    // binds, so the only shedding force is the per-tenant cap: the free
    // class may hold at most 2 queued slots, however many free
    // connections pile in. A pro client submitting sequentially holds at
    // most 1 slot and must therefore never be shed.
    let handle = Server::spawn(ServeConfig {
        workers: 1,
        admission: AdmissionPolicy {
            queue_capacity: 16,
            degrade_depth: 16,
            per_tenant_cap: 2,
        },
        ..small_config()
    })
    .unwrap();

    let flooders = 6;
    let per_flooder = 15;
    let barrier = Arc::new(Barrier::new(flooders + 1));
    let mut joins = Vec::new();
    for t in 0..flooders {
        let barrier = Arc::clone(&barrier);
        let addr = handle.addr();
        joins.push(std::thread::spawn(move || {
            let sock = TcpStream::connect(addr).expect("connect");
            sock.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(sock.try_clone().unwrap());
            let mut sock = sock;
            barrier.wait();
            let mut shed = 0u64;
            for i in 0..per_flooder {
                let line = format!(
                    r#"{{"id":{i},"tenant":"free:{t}","scenario":"rag","input":"Who directed the film?"}}"#
                );
                sock.write_all(format!("{line}\n").as_bytes()).expect("send");
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("recv");
                let v: Value = serde_json::from_str(reply.trim()).expect("well-formed");
                assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
                if v.get("shed") == Some(&Value::Bool(true)) {
                    shed += 1;
                    assert_eq!(
                        v.get("shed_reason").and_then(Value::as_str),
                        Some("tenant_cap"),
                        "global capacity can never bind in this setup: {v:?}"
                    );
                }
            }
            shed
        }));
    }

    let mut pro = Client::connect(&handle);
    barrier.wait();
    for i in 0..10 {
        let reply = pro.roundtrip(&format!(
            r#"{{"id":{i},"tenant":"pro:acme","scenario":"rag","input":"Who directed the film?"}}"#
        ));
        assert_eq!(
            reply.get("shed").and_then(Value::as_bool),
            Some(false),
            "a pro request was shed during a free flood: {reply:?}"
        );
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    }

    let free_shed: u64 = joins.into_iter().map(|j| j.join().expect("flooder")).sum();
    let stats = pro.stats();
    assert_eq!(counter(&stats, "serve.shed.tenant_cap"), free_shed);
    assert_eq!(counter(&stats, "serve.shed"), free_shed);
    assert!(
        free_shed > 0,
        "six flooders against a cap of 2 queued slots must shed some free traffic"
    );
    handle.shutdown();
}

#[test]
fn mid_request_disconnect_cancels_and_the_server_stays_healthy() {
    let handle = Server::spawn(ServeConfig {
        workers: 1,
        ..small_config()
    })
    .unwrap();

    {
        // Fire a request and slam the connection shut without reading
        // the reply: the handler's disconnect watch should trip the
        // cancel token (or the reply is written into the void) — either
        // way nothing panics and nothing leaks.
        let mut sock = TcpStream::connect(handle.addr()).expect("connect");
        sock.write_all(
            concat!(
                r#"{"tenant":"pro:p","scenario":"sparql","input":"PREFIX v: <http://llmkg.dev/vocab/> SELECT ?a ?b ?c ?d WHERE { ?a ?p ?b . ?c ?q ?d }"}"#,
                "\n"
            )
            .as_bytes(),
        )
        .expect("send");
        drop(sock);
    }

    // The server must drain back to idle and keep serving.
    let mut c = Client::connect(&handle);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats();
        let inflight = counter(&stats, "serve.inflight");
        let depth = counter(&stats, "serve.queue_depth");
        let done = counter(&stats, "serve.requests") >= 1;
        if inflight == 0 && depth == 0 && done {
            break;
        }
        assert!(Instant::now() < deadline, "server did not drain: {stats:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
    let good = c.roundtrip(r#"{"scenario":"complete","input":"the film"}"#);
    assert_eq!(good.get("ok").and_then(Value::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    let handle = Server::spawn(small_config()).unwrap();
    let mut c = Client::connect(&handle);
    let r = c.roundtrip(r#"{"scenario":"complete","input":"the film"}"#);
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    drop(handle); // drop == shutdown; must join cleanly, not hang
}
