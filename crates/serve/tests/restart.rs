//! Restart tests for the durable ingest path: a server is fed triples
//! over loopback, killed, and restarted on the same storage — acked
//! writes must be answerable after the restart, whether recovery comes
//! from a clean checkpoint, from WAL replay (checkpoints starved by
//! rename failures), or not at all (read-only degrade after persistent
//! I/O errors — in-protocol replies, never a dropped connection).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use durable::{FaultyStorage, IoFaultConfig, MemStorage, Storage};
use llmkg::WorkbenchConfig;
use serde_json::Value;
use serve::{DurableStore, ServeConfig, Server, ServerHandle};

fn config_with(storage: Arc<dyn Storage>) -> ServeConfig {
    ServeConfig {
        workbench: WorkbenchConfig {
            entities_per_class: 8,
            ..Default::default()
        },
        workers: 2,
        durable: Some(DurableStore::Custom(storage)),
        ..Default::default()
    }
}

struct Client {
    sock: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let sock = TcpStream::connect(handle.addr()).expect("connect");
        sock.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(sock.try_clone().expect("clone"));
        Client { sock, reader }
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.sock
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        serde_json::from_str(reply.trim()).expect("reply must be valid JSON")
    }
}

fn ingest_line(n: usize) -> String {
    let nt: String = (0..n)
        .map(|i| format!("<http://restart/s{i}> <http://restart/p> <http://restart/o{i}> .\\n"))
        .collect();
    format!(r#"{{"scenario":"ingest","tenant":"pro:t","input":"{nt}"}}"#)
}

/// Count the rows the server returns for the ingested pattern.
fn ingested_rows(c: &mut Client) -> u64 {
    let reply = c.roundtrip(
        r#"{"scenario":"sparql","input":"SELECT ?s ?o WHERE { ?s <http://restart/p> ?o }"}"#,
    );
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(true),
        "{reply:?}"
    );
    reply.get("rows").and_then(Value::as_u64).unwrap()
}

#[test]
fn acked_ingest_survives_a_checkpointed_restart() {
    let storage = Arc::new(MemStorage::new());

    let handle = Server::spawn(config_with(storage.clone())).unwrap();
    let mut c = Client::connect(&handle);
    let reply = c.roundtrip(&ingest_line(5));
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        reply.get("durable").and_then(Value::as_bool),
        Some(true),
        "{reply:?}"
    );
    // Ingested triples become query-visible at the next start (the serve
    // graph is immutable while running); not before.
    assert_eq!(ingested_rows(&mut c), 0);
    drop(c);
    handle.shutdown(); // writes a checkpoint

    let files = storage.snapshot();
    assert!(
        files.keys().any(|k| k.starts_with("ckpt-")),
        "clean shutdown checkpoints: {:?}",
        files.keys().collect::<Vec<_>>()
    );

    let handle = Server::spawn(config_with(storage.clone())).unwrap();
    let mut c = Client::connect(&handle);
    assert_eq!(
        ingested_rows(&mut c),
        5,
        "acked writes answered after restart"
    );
    // stats surfaces the recovery
    let stats = c.roundtrip(r#"{"scenario":"stats"}"#);
    let counters = stats.get("counters").and_then(Value::as_object).unwrap();
    assert_eq!(
        counters.get("wal.recoveries").and_then(Value::as_u64),
        Some(1)
    );
    handle.shutdown();
}

#[test]
fn acked_ingest_survives_via_wal_replay_when_checkpoints_fail() {
    // Renames always fail: every checkpoint attempt dies at the final
    // rename, so restart recovery has only the WAL to work from.
    let storage = Arc::new(FaultyStorage::new(IoFaultConfig {
        fail_renames: true,
        ..Default::default()
    }));

    let handle = Server::spawn(config_with(storage.clone())).unwrap();
    let mut c = Client::connect(&handle);
    let reply = c.roundtrip(&ingest_line(7));
    assert_eq!(
        reply.get("durable").and_then(Value::as_bool),
        Some(true),
        "{reply:?}"
    );
    drop(c);
    handle.shutdown(); // checkpoint attempt fails; the WAL is the truth

    let handle = Server::spawn(config_with(storage.clone())).unwrap();
    let mut c = Client::connect(&handle);
    assert_eq!(ingested_rows(&mut c), 7, "WAL replay recovers acked writes");
    handle.shutdown();
}

#[test]
fn persistent_io_errors_degrade_ingest_to_read_only_in_protocol() {
    // The store dies after 512 appended bytes: the first sizeable ingest
    // tears mid-record and every later write fails.
    let storage = Arc::new(FaultyStorage::new(IoFaultConfig {
        kill_at_byte: Some(512),
        ..Default::default()
    }));

    let handle = Server::spawn(config_with(storage)).unwrap();
    let mut c = Client::connect(&handle);
    let reply = c.roundtrip(&ingest_line(50));
    // A well-formed in-protocol reply — ok, but explicitly not durable.
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(true),
        "{reply:?}"
    );
    assert_eq!(reply.get("durable").and_then(Value::as_bool), Some(false));
    assert_eq!(
        reply.get("route").and_then(Value::as_str),
        Some("read-only")
    );

    // The connection survives; reads still work; later writes are
    // refused up front with the same shape.
    let again = c.roundtrip(&ingest_line(1));
    assert_eq!(
        again.get("route").and_then(Value::as_str),
        Some("read-only")
    );
    assert_eq!(again.get("durable").and_then(Value::as_bool), Some(false));
    let query =
        c.roundtrip(r#"{"scenario":"sparql","input":"SELECT ?s WHERE { ?s ?p ?o } LIMIT 1"}"#);
    assert_eq!(query.get("ok").and_then(Value::as_bool), Some(true));

    let stats = c.roundtrip(r#"{"scenario":"stats"}"#);
    let counters = stats.get("counters").and_then(Value::as_object).unwrap();
    assert_eq!(
        counters
            .get("serve.durable_read_only")
            .and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(
        counters
            .get("serve.durable_io_errors")
            .and_then(Value::as_u64),
        Some(1)
    );
    handle.shutdown();
}
