//! Word-level tokenization with punctuation splitting.
//!
//! The simulated LM operates on lowercased word tokens; punctuation marks
//! are their own tokens so sentence structure survives tokenization. A
//! small set of stopwords is exposed for the retrieval layers.

/// A token: lowercased word or single punctuation mark.
pub type Token = String;

/// Split text into tokens: alphanumeric runs (lowercased, keeping internal
/// apostrophes out) and individual punctuation characters.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut word = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            word.extend(c.to_lowercase());
        } else {
            if !word.is_empty() {
                out.push(std::mem::take(&mut word));
            }
            if !c.is_whitespace() {
                out.push(c.to_string());
            }
        }
    }
    if !word.is_empty() {
        out.push(word);
    }
    out
}

/// Tokenize and drop punctuation tokens.
pub fn tokenize_words(text: &str) -> Vec<Token> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.chars().next().is_some_and(char::is_alphanumeric))
        .collect()
}

/// Split text into sentences on `.`, `!`, `?`, and newlines, trimming
/// whitespace and dropping empties.
pub fn split_sentences(text: &str) -> Vec<String> {
    text.split(['.', '!', '?', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// English stopwords used for IDF-style weighting and span extraction.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "is", "are", "was", "were", "be", "been", "of", "in", "on", "at", "to", "by",
    "for", "with", "and", "or", "not", "no", "it", "its", "this", "that", "these", "those", "as",
    "from", "has", "have", "had", "who", "whom", "which", "what", "when", "where", "why", "how",
    "does", "do", "did", "s", "t",
];

/// Is this token a stopword?
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

/// Content words of a text: tokens that are neither punctuation nor
/// stopwords.
pub fn content_words(text: &str) -> Vec<Token> {
    tokenize_words(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect()
}

/// Very light stemming: strip a possessive `'s` remnant and a plural `s`
/// (but not `ss`) from words longer than three characters. Enough to make
/// "works" match "work" in overlap scoring without a full stemmer.
pub fn stem(word: &str) -> String {
    let w = word.strip_suffix("'s").unwrap_or(word);
    if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") {
        w[..w.len() - 1].to_string()
    } else {
        w.to_string()
    }
}

/// Stemmed content words of a text.
pub fn stemmed_content_words(text: &str) -> Vec<Token> {
    content_words(text).iter().map(|w| stem(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits_punct() {
        assert_eq!(
            tokenize("Alice knows Bob."),
            vec!["alice", "knows", "bob", "."]
        );
        assert_eq!(tokenize("x-y z"), vec!["x", "-", "y", "z"]);
    }

    #[test]
    fn tokenize_words_drops_punct() {
        assert_eq!(tokenize_words("Hi, there!"), vec!["hi", "there"]);
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t ").is_empty());
    }

    #[test]
    fn sentences_split_on_terminators() {
        let s = split_sentences("One. Two! Three?\nFour");
        assert_eq!(s, vec!["One", "Two", "Three", "Four"]);
    }

    #[test]
    fn content_words_drop_stopwords() {
        assert_eq!(
            content_words("The film was directed by Nolan"),
            vec!["film", "directed", "nolan"]
        );
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(tokenize_words("Łódź café"), vec!["łódź", "café"]);
    }
}
