//! Chat message types and session state.

/// Who authored a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// System instruction.
    System,
    /// The human user.
    User,
    /// The model.
    Assistant,
}

impl Role {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Role::System => "system",
            Role::User => "user",
            Role::Assistant => "assistant",
        }
    }
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Author role.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl Message {
    /// A system message.
    pub fn system(content: impl Into<String>) -> Self {
        Message {
            role: Role::System,
            content: content.into(),
        }
    }

    /// A user message.
    pub fn user(content: impl Into<String>) -> Self {
        Message {
            role: Role::User,
            content: content.into(),
        }
    }

    /// An assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        Message {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// A growing conversation transcript.
#[derive(Debug, Default, Clone)]
pub struct ChatSession {
    messages: Vec<Message>,
}

impl ChatSession {
    /// An empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// A session seeded with a system prompt.
    pub fn with_system(prompt: impl Into<String>) -> Self {
        ChatSession {
            messages: vec![Message::system(prompt)],
        }
    }

    /// Append a message.
    pub fn push(&mut self, message: Message) {
        self.messages.push(message);
    }

    /// The transcript so far.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// The latest user message, if any.
    pub fn last_user(&self) -> Option<&Message> {
        self.messages.iter().rev().find(|m| m.role == Role::User)
    }

    /// Render the transcript as a single prompt string
    /// (`role: content` lines, ending with `assistant:`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.messages {
            out.push_str(m.role.name());
            out.push_str(": ");
            out.push_str(&m.content);
            out.push('\n');
        }
        out.push_str("assistant:");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_tracks_messages() {
        let mut s = ChatSession::with_system("Be helpful.");
        s.push(Message::user("Hi"));
        s.push(Message::assistant("Hello"));
        s.push(Message::user("Who is Alice?"));
        assert_eq!(s.messages().len(), 4);
        assert_eq!(s.last_user().unwrap().content, "Who is Alice?");
    }

    #[test]
    fn render_has_role_prefixes() {
        let mut s = ChatSession::new();
        s.push(Message::user("Hi"));
        let r = s.render();
        assert!(r.contains("user: Hi"));
        assert!(r.ends_with("assistant:"));
    }
}
