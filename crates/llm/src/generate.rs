//! Generation parameters.

/// Sampling parameters for free-text generation, mirroring the knobs of a
/// real LLM API (max tokens, temperature, top-k) plus an explicit seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Maximum number of word tokens to generate.
    pub max_tokens: usize,
    /// Softmax temperature; lower = greedier.
    pub temperature: f64,
    /// Top-k truncation of the candidate distribution.
    pub top_k: usize,
    /// Seed for the sampler.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            max_tokens: 32,
            temperature: 0.7,
            top_k: 8,
            seed: 0,
        }
    }
}

impl GenParams {
    /// Greedy decoding (temperature ≈ 0, k = 1).
    pub fn greedy() -> Self {
        GenParams {
            max_tokens: 32,
            temperature: 0.01,
            top_k: 1,
            seed: 0,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the token budget.
    pub fn with_max_tokens(mut self, n: usize) -> Self {
        self.max_tokens = n;
        self
    }

    /// Override the temperature.
    pub fn with_temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_work() {
        let p = GenParams::default()
            .with_seed(9)
            .with_max_tokens(5)
            .with_temperature(0.2);
        assert_eq!(p.seed, 9);
        assert_eq!(p.max_tokens, 5);
        assert_eq!(p.temperature, 0.2);
    }

    #[test]
    fn greedy_is_cold_and_narrow() {
        let p = GenParams::greedy();
        assert!(p.temperature < 0.1);
        assert_eq!(p.top_k, 1);
    }
}
