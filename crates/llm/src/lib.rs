//! # slm — a deterministic **simulated language model**
//!
//! Every technique surveyed in the paper consumes an LLM through a handful
//! of narrow interfaces: *complete a prompt*, *score a text*, *embed a
//! text*, *chat*. This crate provides those interfaces backed by fully
//! deterministic, laptop-scale machinery:
//!
//! * a word-level tokenizer with subword fallback ([`tokenizer`]),
//! * an interpolated n-gram language model for fluency scoring and free
//!   generation ([`ngram`]),
//! * hashed-projection + co-occurrence text embeddings ([`embedding`]),
//! * an IDF-weighted sentence evidence index — the model's *enumerable
//!   knowledge* ([`evidence`]),
//! * a prompt / chat / in-context-learning layer that turns instruction
//!   prompts into structured behaviour ([`prompt`], [`chat`], [`task`]).
//!
//! ## Why a simulation is the right substitute
//!
//! The experiments in this workspace need to *measure* claims like "RAG
//! mitigates hallucination" or "few-shot ICL approaches supervised
//! performance". That requires an LM whose knowledge is enumerable: the
//! [`Slm`] verifiably knows exactly the sentences of its training corpus
//! (typically verbalized KG triples) and nothing else, so answering a
//! question about an out-of-corpus fact *must* either abstain or
//! hallucinate — both observable. Determinism (explicit seeds everywhere)
//! makes every downstream experiment reproducible bit-for-bit.

pub mod chat;
pub mod embedding;
pub mod evidence;
pub mod generate;
pub mod kernel;
pub mod model;
pub mod ngram;
pub mod prompt;
pub mod task;
pub mod tokenizer;

pub use chat::{ChatSession, Message, Role};
pub use embedding::Embedder;
pub use evidence::{EvidenceIndex, Retrieved};
pub use generate::GenParams;
pub use kernel::{dispatch_path, DispatchPath};
pub use model::{Slm, SlmBuilder};
pub use prompt::PromptTemplate;
pub use task::{Answer, Verdict, VerdictLabel};
