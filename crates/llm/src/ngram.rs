//! Interpolated n-gram language model.
//!
//! Orders 1–3 with Jelinek–Mercer interpolation and add-k smoothing at the
//! unigram level. Provides pseudo-log-likelihood scoring (the simulated
//! analogue of an LLM's sequence score) and seeded sampling for free-text
//! generation.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tokenizer::{tokenize, Token};

/// Sentence-boundary marker token.
pub const BOS: &str = "<s>";
/// End-of-sentence marker token.
pub const EOS: &str = "</s>";

/// Interpolation weights for orders (1, 2, 3); must sum to 1.
const LAMBDAS: [f64; 3] = [0.1, 0.3, 0.6];
/// Add-k mass for unseen unigrams.
const ADD_K: f64 = 0.5;

/// An interpolated trigram language model.
#[derive(Debug, Default, Clone)]
pub struct NgramLm {
    unigrams: HashMap<Token, u64>,
    bigrams: HashMap<(Token, Token), u64>,
    trigrams: HashMap<(Token, Token, Token), u64>,
    /// successor table for generation: context → (next, count)
    successors: HashMap<(Token, Token), Vec<(Token, u64)>>,
    total_unigrams: u64,
    vocab_size: usize,
}

impl NgramLm {
    /// An empty (untrained) model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Train on one sentence (appends counts).
    pub fn observe(&mut self, sentence: &str) {
        let mut toks = vec![BOS.to_string(), BOS.to_string()];
        toks.extend(tokenize(sentence));
        toks.push(EOS.to_string());
        for w in &toks {
            *self.unigrams.entry(w.clone()).or_insert(0) += 1;
            self.total_unigrams += 1;
        }
        for w in toks.windows(2) {
            *self
                .bigrams
                .entry((w[0].clone(), w[1].clone()))
                .or_insert(0) += 1;
        }
        for w in toks.windows(3) {
            *self
                .trigrams
                .entry((w[0].clone(), w[1].clone(), w[2].clone()))
                .or_insert(0) += 1;
            let entry = self
                .successors
                .entry((w[0].clone(), w[1].clone()))
                .or_default();
            match entry.iter_mut().find(|(t, _)| t == &w[2]) {
                Some((_, c)) => *c += 1,
                None => entry.push((w[2].clone(), 1)),
            }
        }
        self.vocab_size = self.unigrams.len();
    }

    /// Train on many sentences.
    pub fn observe_all<'a>(&mut self, sentences: impl IntoIterator<Item = &'a str>) {
        for s in sentences {
            self.observe(s);
        }
    }

    /// Number of distinct word types seen.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Total tokens observed (including boundary markers).
    pub fn token_count(&self) -> u64 {
        self.total_unigrams
    }

    fn p_unigram(&self, w: &str) -> f64 {
        let c = self.unigrams.get(w).copied().unwrap_or(0) as f64;
        let v = self.vocab_size.max(1) as f64;
        (c + ADD_K) / (self.total_unigrams as f64 + ADD_K * (v + 1.0))
    }

    fn p_bigram(&self, w1: &str, w2: &str) -> f64 {
        let ctx = self.unigrams.get(w1).copied().unwrap_or(0);
        if ctx == 0 {
            return 0.0;
        }
        let c = self
            .bigrams
            .get(&(w1.to_string(), w2.to_string()))
            .copied()
            .unwrap_or(0);
        c as f64 / ctx as f64
    }

    fn p_trigram(&self, w1: &str, w2: &str, w3: &str) -> f64 {
        let ctx = self
            .bigrams
            .get(&(w1.to_string(), w2.to_string()))
            .copied()
            .unwrap_or(0);
        if ctx == 0 {
            return 0.0;
        }
        let c = self
            .trigrams
            .get(&(w1.to_string(), w2.to_string(), w3.to_string()))
            .copied()
            .unwrap_or(0);
        c as f64 / ctx as f64
    }

    /// Interpolated probability of `w3` after context `(w1, w2)`.
    pub fn prob(&self, w1: &str, w2: &str, w3: &str) -> f64 {
        LAMBDAS[0] * self.p_unigram(w3)
            + LAMBDAS[1] * self.p_bigram(w2, w3)
            + LAMBDAS[2] * self.p_trigram(w1, w2, w3)
    }

    /// Average per-token log2 probability of a text (higher = more fluent
    /// under the model). Empty text scores `f64::NEG_INFINITY`.
    pub fn log_likelihood(&self, text: &str) -> f64 {
        let mut toks = vec![BOS.to_string(), BOS.to_string()];
        toks.extend(tokenize(text));
        toks.push(EOS.to_string());
        if toks.len() <= 3 {
            return f64::NEG_INFINITY;
        }
        let mut total = 0.0;
        let mut n = 0usize;
        for w in toks.windows(3) {
            total += self.prob(&w[0], &w[1], &w[2]).max(1e-12).log2();
            n += 1;
        }
        total / n as f64
    }

    /// Perplexity of a text under the model.
    pub fn perplexity(&self, text: &str) -> f64 {
        2f64.powf(-self.log_likelihood(text))
    }

    /// Sample a continuation of up to `max_tokens` word tokens after the
    /// given prompt, with softmax temperature and top-k truncation over the
    /// successor table. Deterministic under `seed`. Stops at [`EOS`].
    pub fn generate(
        &self,
        prompt: &str,
        max_tokens: usize,
        temperature: f64,
        top_k: usize,
        seed: u64,
    ) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut context: Vec<Token> = vec![BOS.to_string(), BOS.to_string()];
        context.extend(tokenize(prompt));
        let mut out: Vec<Token> = Vec::new();
        for _ in 0..max_tokens {
            let n = context.len();
            let key = (context[n - 2].clone(), context[n - 1].clone());
            let mut cands: Vec<(Token, f64)> = match self.successors.get(&key) {
                Some(succ) => succ.iter().map(|(t, c)| (t.clone(), *c as f64)).collect(),
                None => {
                    // back off to bigram successors of the last token
                    let mut v: Vec<(Token, f64)> = self
                        .bigrams
                        .iter()
                        .filter(|((a, _), _)| a == &key.1)
                        .map(|((_, b), c)| (b.clone(), *c as f64))
                        .collect();
                    v.sort_by(|a, b| a.0.cmp(&b.0));
                    v
                }
            };
            if cands.is_empty() {
                break;
            }
            // top-k by count, ties broken lexicographically for determinism
            cands.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            cands.truncate(top_k.max(1));
            let t = temperature.max(0.01);
            let weights: Vec<f64> = cands.iter().map(|(_, c)| (c.ln() / t).exp()).collect();
            let total: f64 = weights.iter().sum();
            let mut x: f64 = rng.gen::<f64>() * total;
            let mut chosen = cands.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    chosen = i;
                    break;
                }
                x -= w;
            }
            let next = cands[chosen].0.clone();
            if next == EOS {
                break;
            }
            context.push(next.clone());
            out.push(next);
        }
        detokenize(&out)
    }
}

/// Join tokens back into a readable string (no space before punctuation).
pub fn detokenize(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        let is_punct = t.chars().all(|c| !c.is_alphanumeric());
        if !out.is_empty() && !is_punct {
            out.push(' ');
        }
        out.push_str(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> NgramLm {
        let mut lm = NgramLm::new();
        lm.observe_all([
            "alice knows bob",
            "alice knows carol",
            "bob knows carol",
            "carol works at the lab",
            "bob works at the lab",
        ]);
        lm
    }

    #[test]
    fn seen_text_scores_higher_than_garbage() {
        let lm = trained();
        let good = lm.log_likelihood("alice knows bob");
        let bad = lm.log_likelihood("zebra quantum flux");
        assert!(good > bad, "{good} vs {bad}");
    }

    #[test]
    fn perplexity_is_finite_and_positive() {
        let lm = trained();
        let p = lm.perplexity("bob works at the lab");
        assert!(p.is_finite() && p > 1.0);
    }

    #[test]
    fn probabilities_are_normalized_enough() {
        let lm = trained();
        // probability of observed trigram continuation should dominate
        let p_seen = lm.prob("alice", "knows", "bob");
        let p_unseen = lm.prob("alice", "knows", "lab");
        assert!(p_seen > p_unseen);
        assert!(p_seen <= 1.0 && p_seen > 0.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let lm = trained();
        let a = lm.generate("alice", 8, 0.7, 5, 42);
        let b = lm.generate("alice", 8, 0.7, 5, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn generation_uses_training_vocabulary() {
        let lm = trained();
        let text = lm.generate("alice knows", 6, 0.5, 3, 7);
        assert!(!text.is_empty());
        for w in crate::tokenizer::tokenize_words(&text) {
            assert!(lm.unigrams.contains_key(&w), "generated OOV token {w}");
        }
    }

    #[test]
    fn empty_model_generates_nothing() {
        let lm = NgramLm::new();
        assert_eq!(lm.generate("hello", 5, 1.0, 5, 0), "");
    }

    #[test]
    fn detokenize_handles_punctuation() {
        let toks: Vec<Token> = vec!["alice".into(), ",".into(), "hi".into(), ".".into()];
        assert_eq!(detokenize(&toks), "alice, hi.");
    }

    #[test]
    fn vocab_and_token_counts_grow() {
        let lm = trained();
        assert!(lm.vocab_size() >= 8);
        assert!(lm.token_count() > 20);
    }
}
