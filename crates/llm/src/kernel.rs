//! Batched dot-product kernels with runtime SIMD dispatch.
//!
//! This module is the arithmetic floor of the retrieval stack: everything
//! that scores vectors — single-query scans, batched query-matrix scans,
//! IVF probes — bottoms out in the three entry points here ([`dot`],
//! [`dot_batch`], [`matmul_tile`]). All of them share one contract:
//!
//! **Every dispatch path produces bit-identical results.** The scalar
//! kernel accumulates into [`DOT_LANES`] (8) independent lanes over
//! 8-wide chunks, reduces them in a fixed pairwise tree, and folds the
//! sub-chunk remainder sequentially. The AVX2 path keeps the same eight
//! lanes in one 256-bit register, the NEON path keeps them as two
//! 128-bit halves, and both use separate multiply and add instructions
//! (never fused multiply-add, which would round once instead of twice)
//! with the same per-lane operation order and the same reduction tree.
//! IEEE-754 arithmetic is deterministic per operation, so identical
//! operation order means identical bits — which is what lets the
//! deterministic top-k layer above treat the kernel choice as invisible.
//!
//! Dispatch is decided once per process ([`dispatch_path`]): AVX2 via
//! `is_x86_feature_detected!` on x86_64, NEON unconditionally on aarch64
//! (it is a baseline feature there), scalar everywhere else. Tests can
//! pin a path explicitly through [`dot_with_path`] /
//! [`matmul_tile_with_path`] and enumerate what the host supports with
//! [`DispatchPath::available`].
//!
//! The batched kernels are register-blocked: [`matmul_tile`] walks the
//! row arena in panels small enough to stay cache-resident and streams
//! groups of [`Q_TILE`] query rows over each panel, so each arena cache
//! line is touched once per query *group* instead of once per query.
//! That turns Q independent memory-bound scans into one pass at
//! ~Q/[`Q_TILE`] of the DRAM traffic — the whole point of batching.

use std::sync::atomic::{AtomicU8, Ordering};

/// Number of independent accumulator lanes in the kernels. Eight `f32`
/// lanes fill one 256-bit AVX register (or two NEON quads), and the lane
/// independence is what keeps the loop a pure SIMD multiply-add stream
/// instead of a serial dependency chain.
pub const DOT_LANES: usize = 8;

/// Query rows processed together against each arena row in the blocked
/// kernels. Four query accumulators plus one row register fit
/// comfortably in the 16 available vector registers with room for loads.
pub const Q_TILE: usize = 4;

/// Arena rows per cache panel in [`matmul_tile`]. At the workspace's
/// 64-dim `f32` rows this is 32 KiB — sized for L1/L2 residency while a
/// query group streams over it.
const ROW_BLOCK: usize = 128;

/// Which SIMD implementation services the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPath {
    /// Portable 8-lane kernel (auto-vectorized by the compiler).
    Scalar,
    /// 256-bit AVX2 path (x86_64, runtime-detected).
    Avx2,
    /// 128-bit×2 NEON path (aarch64 baseline).
    Neon,
}

impl DispatchPath {
    /// Stable lowercase label for reports and observability attributes.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPath::Scalar => "scalar",
            DispatchPath::Avx2 => "avx2",
            DispatchPath::Neon => "neon",
        }
    }

    /// Every path the current host can execute (always includes
    /// [`DispatchPath::Scalar`]). Differential tests iterate this to
    /// prove all runnable paths agree bit-for-bit.
    pub fn available() -> Vec<DispatchPath> {
        let mut paths = vec![DispatchPath::Scalar];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            paths.push(DispatchPath::Avx2);
        }
        #[cfg(target_arch = "aarch64")]
        paths.push(DispatchPath::Neon);
        paths
    }

    /// Whether this host can execute the path. Cheap (no allocation):
    /// safe to assert on hot entry points.
    pub fn is_available(self) -> bool {
        match self {
            DispatchPath::Scalar => true,
            DispatchPath::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            DispatchPath::Neon => cfg!(target_arch = "aarch64"),
        }
    }
}

/// Cached dispatch decision: 0 = undecided, else `DispatchPath` + 1.
static DISPATCH: AtomicU8 = AtomicU8::new(0);

/// The SIMD path servicing all kernel calls in this process. Detected
/// once (AVX2 where available, NEON on aarch64, scalar otherwise) and
/// cached; every subsequent call is a relaxed atomic load.
pub fn dispatch_path() -> DispatchPath {
    match DISPATCH.load(Ordering::Relaxed) {
        1 => DispatchPath::Scalar,
        2 => DispatchPath::Avx2,
        3 => DispatchPath::Neon,
        _ => {
            let path = detect();
            let code = match path {
                DispatchPath::Scalar => 1,
                DispatchPath::Avx2 => 2,
                DispatchPath::Neon => 3,
            };
            DISPATCH.store(code, Ordering::Relaxed);
            path
        }
    }
}

fn detect() -> DispatchPath {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return DispatchPath::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return DispatchPath::Neon;
    }
    #[allow(unreachable_code)]
    DispatchPath::Scalar
}

/// Fixed pairwise reduction tree over the eight lane accumulators —
/// shared verbatim by every path so the final rounding sequence is
/// identical everywhere.
#[inline(always)]
fn reduce_lanes(acc: &[f32; DOT_LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Dot product over equal-length slices (callers truncate to the shorter
/// length), dispatched to the detected SIMD path. Bit-identical across
/// all paths by construction.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with_path(dispatch_path(), a, b)
}

/// [`dot`] pinned to an explicit path. Panics if the host cannot execute
/// it; intended for differential tests and bench forensics.
pub fn dot_with_path(path: DispatchPath, a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    match path {
        DispatchPath::Scalar => dot_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => {
            assert!(path.is_available(), "avx2 unavailable on this host");
            // SAFETY: AVX2 presence just asserted; slices are equal length.
            unsafe { avx2::dot(a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        DispatchPath::Neon => {
            // SAFETY: NEON is an aarch64 baseline feature.
            unsafe { neon::dot(a, b) }
        }
        #[allow(unreachable_patterns)]
        other => panic!("dispatch path {} unavailable on this target", other.label()),
    }
}

/// Score many queries against one row: `out[q] = dot(queries[q], row)`.
/// `queries` is a flat row-major `n_q × dim` matrix; `row` has length
/// `dim`. Used by IVF member scoring, where the candidate rows arrive
/// cluster-by-cluster rather than as one contiguous panel.
pub fn dot_batch(queries: &[f32], dim: usize, row: &[f32], out: &mut [f32]) {
    let n_q = out.len();
    debug_assert!(queries.len() >= n_q * dim);
    debug_assert_eq!(row.len(), dim);
    matmul_tile(queries, n_q, row, 1, dim, out);
}

/// Blocked query-matrix × row-panel product:
/// `out[q * n_rows + r] = dot(queries[q], rows[r])` for every query row
/// against every arena row. Both inputs are flat row-major matrices with
/// stride `dim`; `out` must hold `n_q * n_rows` elements.
///
/// The kernel walks `rows` in `ROW_BLOCK` (128)-row panels and streams
/// [`Q_TILE`]-query groups over each panel, so a panel is loaded from
/// DRAM once per group rather than once per query. Each individual
/// `(q, r)` score follows the exact lane structure and reduction order
/// of [`dot`], so the output is bit-identical to `n_q × n_rows`
/// independent [`dot`] calls on every dispatch path.
pub fn matmul_tile(
    queries: &[f32],
    n_q: usize,
    rows: &[f32],
    n_rows: usize,
    dim: usize,
    out: &mut [f32],
) {
    matmul_tile_with_path(dispatch_path(), queries, n_q, rows, n_rows, dim, out)
}

/// [`matmul_tile`] pinned to an explicit path. Panics if the host cannot
/// execute it; intended for differential tests and bench forensics.
pub fn matmul_tile_with_path(
    path: DispatchPath,
    queries: &[f32],
    n_q: usize,
    rows: &[f32],
    n_rows: usize,
    dim: usize,
    out: &mut [f32],
) {
    assert!(queries.len() >= n_q * dim, "query matrix too short");
    assert!(rows.len() >= n_rows * dim, "row panel too short");
    assert!(out.len() >= n_q * n_rows, "output buffer too short");
    match path {
        DispatchPath::Scalar => matmul_scalar(queries, n_q, rows, n_rows, dim, out),
        #[cfg(target_arch = "x86_64")]
        DispatchPath::Avx2 => {
            assert!(path.is_available(), "avx2 unavailable on this host");
            // SAFETY: AVX2 presence just asserted; bounds asserted above.
            unsafe { avx2::matmul(queries, n_q, rows, n_rows, dim, out) }
        }
        #[cfg(target_arch = "aarch64")]
        DispatchPath::Neon => {
            // SAFETY: NEON is an aarch64 baseline feature; bounds asserted.
            unsafe { neon::matmul(queries, n_q, rows, n_rows, dim, out) }
        }
        #[allow(unreachable_patterns)]
        other => panic!("dispatch path {} unavailable on this target", other.label()),
    }
}

/// The portable reference kernel: 8 independent accumulator lanes over
/// 8-wide chunks (auto-vectorizable), fixed pairwise reduction,
/// sequential remainder. This is the seed retrieval kernel preserved
/// verbatim — the SIMD paths are defined as bit-identical to *this*.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; DOT_LANES];
    let mut ca = a.chunks_exact(DOT_LANES);
    let mut cb = b.chunks_exact(DOT_LANES);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for lane in 0..DOT_LANES {
            acc[lane] += xs[lane] * ys[lane];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce_lanes(&acc) + tail
}

/// Scalar blocked matmul: same panel/group walk as the SIMD paths (the
/// cache blocking is path-independent), every score via [`dot_scalar`].
fn matmul_scalar(
    queries: &[f32],
    n_q: usize,
    rows: &[f32],
    n_rows: usize,
    dim: usize,
    out: &mut [f32],
) {
    let mut r0 = 0;
    while r0 < n_rows {
        let r1 = (r0 + ROW_BLOCK).min(n_rows);
        let mut q0 = 0;
        while q0 < n_q {
            let q1 = (q0 + Q_TILE).min(n_q);
            for r in r0..r1 {
                let row = &rows[r * dim..r * dim + dim];
                for q in q0..q1 {
                    out[q * n_rows + r] = dot_scalar(&queries[q * dim..q * dim + dim], row);
                }
            }
            q0 = q1;
        }
        r0 = r1;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 path: the eight scalar lanes live in one 256-bit register.
    //! Multiplies and adds stay separate instructions (`vmulps` +
    //! `vaddps`) — a fused multiply-add would round once where the
    //! scalar kernel rounds twice and break bit-identity.

    use core::arch::x86_64::*;

    use super::{Q_TILE, ROW_BLOCK};

    /// 8-lane AVX2 dot with the scalar kernel's reduction order.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let va = _mm256_loadu_ps(pa.add(c * 8));
            let vb = _mm256_loadu_ps(pb.add(c * 8));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += *pa.add(i) * *pb.add(i);
        }
        reduce(acc) + tail
    }

    /// Spill the register lanes and reduce in the shared tree order.
    #[target_feature(enable = "avx2")]
    unsafe fn reduce(acc: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        super::reduce_lanes(&lanes)
    }

    /// Blocked matmul: row panels stream through a group of up to
    /// [`Q_TILE`] query accumulators, so each panel cache line is read
    /// once per group.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and that `queries`, `rows`,
    /// and `out` cover `n_q × dim`, `n_rows × dim`, and `n_q × n_rows`
    /// elements respectively.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul(
        queries: &[f32],
        n_q: usize,
        rows: &[f32],
        n_rows: usize,
        dim: usize,
        out: &mut [f32],
    ) {
        let chunks = dim / 8;
        let mut r0 = 0;
        while r0 < n_rows {
            let r1 = (r0 + ROW_BLOCK).min(n_rows);
            let mut q0 = 0;
            while q0 < n_q {
                let qn = (n_q - q0).min(Q_TILE);
                for r in r0..r1 {
                    let row = rows.as_ptr().add(r * dim);
                    if qn == Q_TILE {
                        quad(queries, q0, row, dim, chunks, &mut out[..], n_rows, r);
                    } else {
                        for q in q0..q0 + qn {
                            let qs =
                                core::slice::from_raw_parts(queries.as_ptr().add(q * dim), dim);
                            let rs = core::slice::from_raw_parts(row, dim);
                            out[q * n_rows + r] = dot(qs, rs);
                        }
                    }
                }
                q0 += qn;
            }
            r0 = r1;
        }
    }

    /// Four query rows against one arena row: the row chunk is loaded
    /// once and multiplied into four independent accumulators.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn quad(
        queries: &[f32],
        q0: usize,
        row: *const f32,
        dim: usize,
        chunks: usize,
        out: &mut [f32],
        n_rows: usize,
        r: usize,
    ) {
        let p0 = queries.as_ptr().add(q0 * dim);
        let p1 = queries.as_ptr().add((q0 + 1) * dim);
        let p2 = queries.as_ptr().add((q0 + 2) * dim);
        let p3 = queries.as_ptr().add((q0 + 3) * dim);
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        for c in 0..chunks {
            let rv = _mm256_loadu_ps(row.add(c * 8));
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_loadu_ps(p0.add(c * 8)), rv));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_loadu_ps(p1.add(c * 8)), rv));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_loadu_ps(p2.add(c * 8)), rv));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_loadu_ps(p3.add(c * 8)), rv));
        }
        let mut tails = [0.0f32; Q_TILE];
        for i in chunks * 8..dim {
            let rx = *row.add(i);
            tails[0] += *p0.add(i) * rx;
            tails[1] += *p1.add(i) * rx;
            tails[2] += *p2.add(i) * rx;
            tails[3] += *p3.add(i) * rx;
        }
        out[q0 * n_rows + r] = reduce(a0) + tails[0];
        out[(q0 + 1) * n_rows + r] = reduce(a1) + tails[1];
        out[(q0 + 2) * n_rows + r] = reduce(a2) + tails[2];
        out[(q0 + 3) * n_rows + r] = reduce(a3) + tails[3];
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON path: the eight scalar lanes live in two 128-bit quads
    //! (lanes 0–3 and 4–7). Separate `fmul`/`fadd` — never `fmla` —
    //! for the same double-rounding as the scalar kernel.

    use core::arch::aarch64::*;

    use super::{Q_TILE, ROW_BLOCK};

    /// 8-lane NEON dot with the scalar kernel's reduction order.
    ///
    /// # Safety
    /// `a.len() == b.len()`. NEON is an aarch64 baseline feature.
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut lo = vdupq_n_f32(0.0);
        let mut hi = vdupq_n_f32(0.0);
        for c in 0..chunks {
            lo = vaddq_f32(
                lo,
                vmulq_f32(vld1q_f32(pa.add(c * 8)), vld1q_f32(pb.add(c * 8))),
            );
            hi = vaddq_f32(
                hi,
                vmulq_f32(vld1q_f32(pa.add(c * 8 + 4)), vld1q_f32(pb.add(c * 8 + 4))),
            );
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += *pa.add(i) * *pb.add(i);
        }
        reduce(lo, hi) + tail
    }

    /// Spill both quads and reduce in the shared tree order.
    unsafe fn reduce(lo: float32x4_t, hi: float32x4_t) -> f32 {
        let mut lanes = [0.0f32; 8];
        vst1q_f32(lanes.as_mut_ptr(), lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), hi);
        super::reduce_lanes(&lanes)
    }

    /// Blocked matmul; same structure as the AVX2 path with two-quad
    /// accumulators per query.
    ///
    /// # Safety
    /// `queries`, `rows`, and `out` must cover `n_q × dim`,
    /// `n_rows × dim`, and `n_q × n_rows` elements respectively.
    pub unsafe fn matmul(
        queries: &[f32],
        n_q: usize,
        rows: &[f32],
        n_rows: usize,
        dim: usize,
        out: &mut [f32],
    ) {
        let chunks = dim / 8;
        let mut r0 = 0;
        while r0 < n_rows {
            let r1 = (r0 + ROW_BLOCK).min(n_rows);
            let mut q0 = 0;
            while q0 < n_q {
                let qn = (n_q - q0).min(Q_TILE);
                for r in r0..r1 {
                    let row = rows.as_ptr().add(r * dim);
                    for q in q0..q0 + qn {
                        let pq = queries.as_ptr().add(q * dim);
                        let mut lo = vdupq_n_f32(0.0);
                        let mut hi = vdupq_n_f32(0.0);
                        for c in 0..chunks {
                            lo = vaddq_f32(
                                lo,
                                vmulq_f32(vld1q_f32(pq.add(c * 8)), vld1q_f32(row.add(c * 8))),
                            );
                            hi = vaddq_f32(
                                hi,
                                vmulq_f32(
                                    vld1q_f32(pq.add(c * 8 + 4)),
                                    vld1q_f32(row.add(c * 8 + 4)),
                                ),
                            );
                        }
                        let mut tail = 0.0f32;
                        for i in chunks * 8..dim {
                            tail += *pq.add(i) * *row.add(i);
                        }
                        out[q * n_rows + r] = reduce(lo, hi) + tail;
                    }
                }
                q0 += qn;
            }
            r0 = r1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(seed: u64, n: usize, dim: usize) -> Vec<f32> {
        // deterministic pseudo-random values including exact zeros
        let mut state = seed;
        (0..n * dim)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if i % 97 == 0 {
                    0.0
                } else {
                    ((state >> 40) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0
                }
            })
            .collect()
    }

    #[test]
    fn dispatch_path_is_cached_and_available() {
        let p = dispatch_path();
        assert_eq!(p, dispatch_path());
        assert!(p.is_available());
        assert!(DispatchPath::available().contains(&DispatchPath::Scalar));
    }

    #[test]
    fn all_paths_agree_bitwise_on_dot() {
        for dim in [1, 7, 8, 9, 16, 63, 64, 65, 640] {
            let a = vecs(1, 1, dim);
            let b = vecs(2, 1, dim);
            let want = dot_scalar(&a, &b);
            for path in DispatchPath::available() {
                let got = dot_with_path(path, &a, &b);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "path {} dim {dim}: {got} vs {want}",
                    path.label()
                );
            }
        }
    }

    #[test]
    fn all_paths_agree_bitwise_on_matmul() {
        for (n_q, n_rows, dim) in [
            (1, 1, 64),
            (3, 5, 64),
            (4, 300, 64),
            (17, 131, 24),
            (5, 2, 7),
        ] {
            let q = vecs(3, n_q, dim);
            let rows = vecs(4, n_rows, dim);
            let mut want = vec![0.0f32; n_q * n_rows];
            for qi in 0..n_q {
                for r in 0..n_rows {
                    want[qi * n_rows + r] =
                        dot_scalar(&q[qi * dim..(qi + 1) * dim], &rows[r * dim..(r + 1) * dim]);
                }
            }
            for path in DispatchPath::available() {
                let mut out = vec![0.0f32; n_q * n_rows];
                matmul_tile_with_path(path, &q, n_q, &rows, n_rows, dim, &mut out);
                for (i, (g, w)) in out.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "path {} cell {i}: {g} vs {w}",
                        path.label()
                    );
                }
            }
        }
    }

    #[test]
    fn nan_and_inf_propagate_identically() {
        let dim = 64;
        let mut a = vecs(5, 2, dim);
        a[3] = f32::NAN;
        a[70] = f32::INFINITY;
        let rows = vecs(6, 3, dim);
        let mut want = vec![0.0f32; 2 * 3];
        for qi in 0..2 {
            for r in 0..3 {
                want[qi * 3 + r] =
                    dot_scalar(&a[qi * dim..(qi + 1) * dim], &rows[r * dim..(r + 1) * dim]);
            }
        }
        for path in DispatchPath::available() {
            let mut out = vec![0.0f32; 2 * 3];
            matmul_tile_with_path(path, &a, 2, &rows, 3, dim, &mut out);
            let got: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            let exp: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, exp, "path {}", path.label());
        }
    }

    #[test]
    fn dot_batch_matches_per_row_dot() {
        let dim = 64;
        let q = vecs(7, 6, dim);
        let row = vecs(8, 1, dim);
        let mut out = vec![0.0f32; 6];
        dot_batch(&q, dim, &row, &mut out);
        for (qi, got) in out.iter().enumerate() {
            let want = dot_scalar(&q[qi * dim..(qi + 1) * dim], &row);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
