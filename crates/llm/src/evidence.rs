//! The evidence index — the simulated LM's enumerable knowledge.
//!
//! Sentences (typically verbalized KG triples) are indexed with an inverted
//! word index and scored against queries by IDF-weighted word overlap. The
//! index answers two questions the task layer needs:
//!
//! * *retrieval*: which known sentences are most relevant to this query?
//! * *support*: how strongly does the known corpus support this claim?

use std::collections::HashMap;

use crate::tokenizer::{stem, stemmed_content_words, tokenize_words};

/// A retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved {
    /// Index of the sentence in the store.
    pub id: usize,
    /// The sentence text.
    pub text: String,
    /// IDF-weighted overlap score in `[0, 1]`.
    pub score: f64,
}

/// An inverted-index over sentences with IDF-weighted overlap scoring.
#[derive(Debug, Default, Clone)]
pub struct EvidenceIndex {
    sentences: Vec<String>,
    tokenized: Vec<Vec<String>>,
    inverted: HashMap<String, Vec<usize>>,
    doc_freq: HashMap<String, u32>,
}

impl EvidenceIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of sentences.
    pub fn from_sentences<'a>(sentences: impl IntoIterator<Item = &'a str>) -> Self {
        let mut idx = Self::new();
        for s in sentences {
            idx.add(s);
        }
        idx
    }

    /// Add one sentence.
    pub fn add(&mut self, sentence: &str) -> usize {
        let id = self.sentences.len();
        let words: Vec<String> = tokenize_words(sentence).iter().map(|w| stem(w)).collect();
        let mut seen: Vec<&str> = Vec::new();
        for w in &words {
            self.inverted.entry(w.clone()).or_default().push(id);
            if !seen.contains(&w.as_str()) {
                seen.push(w);
                *self.doc_freq.entry(w.clone()).or_insert(0) += 1;
            }
        }
        self.sentences.push(sentence.to_string());
        self.tokenized.push(words);
        id
    }

    /// Number of indexed sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// The sentence with a given id.
    pub fn sentence(&self, id: usize) -> Option<&str> {
        self.sentences.get(id).map(String::as_str)
    }

    /// All sentences.
    pub fn sentences(&self) -> &[String] {
        &self.sentences
    }

    fn idf(&self, word: &str) -> f64 {
        let n = self.sentences.len() as f64;
        match self.doc_freq.get(word) {
            Some(&df) => ((1.0 + n) / (1.0 + f64::from(df))).ln() + 1.0,
            None => ((1.0 + n) / 1.0).ln() + 1.0,
        }
    }

    /// Score a candidate sentence against query content words:
    /// IDF-weighted recall of the query words in the sentence, in `[0,1]`.
    fn overlap_score(&self, query_words: &[String], sentence_id: usize) -> f64 {
        if query_words.is_empty() {
            return 0.0;
        }
        let sent = &self.tokenized[sentence_id];
        let mut hit = 0.0;
        let mut total = 0.0;
        for qw in query_words {
            let w = self.idf(qw);
            total += w;
            if sent.contains(qw) {
                hit += w;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            hit / total
        }
    }

    /// Retrieve the top-`k` sentences for a query, sorted by descending
    /// score then ascending id (deterministic).
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<Retrieved> {
        let qwords = {
            let cw = stemmed_content_words(query);
            if cw.is_empty() {
                tokenize_words(query).iter().map(|w| stem(w)).collect()
            } else {
                cw
            }
        };
        // candidate set: sentences sharing at least one query word
        let mut candidates: Vec<usize> = Vec::new();
        for w in &qwords {
            if let Some(ids) = self.inverted.get(w) {
                candidates.extend_from_slice(ids);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut scored: Vec<Retrieved> = candidates
            .into_iter()
            .map(|id| Retrieved {
                id,
                text: self.sentences[id].clone(),
                score: self.overlap_score(&qwords, id),
            })
            .filter(|r| r.score > 0.0)
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        scored.truncate(k);
        scored
    }

    /// How strongly the corpus supports a claim: the best single-sentence
    /// overlap score for the claim's content words, in `[0,1]`.
    ///
    /// This is *recall-only*: it asks whether the claim's words appear in
    /// some sentence, not whether that sentence says the same thing. Use
    /// [`verified_support`](Self::verified_support) when a near-1.0 score
    /// must mean "the corpus states this exact fact".
    pub fn support(&self, claim: &str) -> f64 {
        self.retrieve(claim, 1).first().map_or(0.0, |r| r.score)
    }

    /// Bidirectional support: IDF-weighted harmonic mean of how much of
    /// the claim the best evidence sentence covers (recall) and how much
    /// of that sentence the claim explains (precision), in `[0,1]`.
    ///
    /// Recall alone saturates on claims whose words are a subset of some
    /// sentence — e.g. evidence "H directed T" fully "supports" the false
    /// claim "H directed H". The precision term discounts evidence that
    /// asserts content the claim does not mention, so only claims that
    /// restate a known sentence score near 1.0.
    pub fn verified_support(&self, claim: &str) -> f64 {
        let Some(best) = self.best_evidence(claim) else {
            return 0.0;
        };
        let claim_words: Vec<String> = tokenize_words(claim).iter().map(|w| stem(w)).collect();
        let sent = &self.tokenized[best.id];
        let mut hit = 0.0;
        let mut total = 0.0;
        for sw in sent {
            let w = self.idf(sw);
            total += w;
            if claim_words.contains(sw) {
                hit += w;
            }
        }
        let precision = if total == 0.0 { 0.0 } else { hit / total };
        let recall = best.score;
        if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        }
    }

    /// The best supporting sentence for a claim, if any scores above zero.
    pub fn best_evidence(&self, claim: &str) -> Option<Retrieved> {
        self.retrieve(claim, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> EvidenceIndex {
        EvidenceIndex::from_sentences([
            "Alice knows Bob",
            "Alice works at Acme",
            "Bob works at Initech",
            "Carol directed The Big Film",
            "The Big Film stars Bob",
        ])
    }

    #[test]
    fn retrieve_finds_most_relevant() {
        let idx = index();
        let hits = idx.retrieve("where does Alice work", 2);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].text, "Alice works at Acme");
    }

    #[test]
    fn exact_claim_has_full_support() {
        let idx = index();
        assert!((idx.support("Alice knows Bob") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn false_claim_has_partial_support() {
        let idx = index();
        let s = idx.support("Alice knows Carol");
        assert!(s < 1.0 && s > 0.0, "{s}");
    }

    #[test]
    fn unknown_topic_has_zero_support() {
        let idx = index();
        assert_eq!(idx.support("quantum flux reactors overheat"), 0.0);
        assert!(idx
            .best_evidence("quantum flux reactors overheat")
            .is_none());
    }

    #[test]
    fn retrieval_is_deterministic_and_ranked() {
        let idx = index();
        let a = idx.retrieve("Bob", 5);
        let b = idx.retrieve("Bob", 5);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn rare_words_weigh_more_than_common() {
        let mut idx = EvidenceIndex::new();
        idx.add("the cat sat on the mat");
        idx.add("the dog sat on the rug");
        idx.add("the cat chased the dog");
        // "mat" is rarer than "sat": a query with "mat" should prefer s0
        let hits = idx.retrieve("mat sat", 3);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn empty_index_supports_nothing() {
        let idx = EvidenceIndex::new();
        assert_eq!(idx.support("anything"), 0.0);
        assert!(idx.retrieve("anything", 3).is_empty());
    }
}
