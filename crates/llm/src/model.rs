//! The [`Slm`] — the simulated LLM facade.
//!
//! Built from a training corpus (typically verbalized KG triples plus
//! free text), it exposes the four interfaces real LLM applications use:
//! [`Slm::complete`], [`Slm::score`], [`Slm::embed`], [`Slm::chat`] — plus
//! structured equivalents ([`Slm::answer`], [`Slm::verify`]) that the task
//! crates call directly when they don't need to round-trip through prompt
//! text.
//!
//! ### Knowledge and hallucination model
//!
//! The model "knows" exactly its training sentences. [`Slm::answer`]
//! prefers prompt-supplied context (simulating that in-context evidence
//! dominates parametric memory), then falls back to parametric evidence.
//! When neither clears the confidence threshold, behaviour depends on
//! [`SlmBuilder::hallucinate`]: either abstain, or produce a fluent but
//! unsupported answer flagged `hallucinated = true` — making hallucination
//! a measurable event for the RAG / fact-checking experiments.

use crate::chat::{ChatSession, Message, Role};
use crate::embedding::Embedder;
use crate::evidence::EvidenceIndex;
use crate::generate::GenParams;
use crate::ngram::NgramLm;
use crate::prompt::{parse_prompt, ParsedPrompt};
use crate::task::{icl_extract_spans, Answer, Verdict, VerdictLabel};
use crate::tokenizer::{content_words, is_stopword, stem, stemmed_content_words, tokenize_words};

/// Confidence threshold above which evidence counts as support.
pub const SUPPORT_THRESHOLD: f64 = 0.72;
/// Overlap threshold above which near-miss evidence counts as refutation.
pub const REFUTE_THRESHOLD: f64 = 0.4;

/// Builder for [`Slm`].
#[derive(Debug, Default)]
pub struct SlmBuilder {
    corpus: Vec<String>,
    entity_names: Vec<String>,
    hallucinate: bool,
    seed: u64,
}

impl SlmBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add training sentences (the model's parametric knowledge).
    pub fn corpus<'a>(mut self, sentences: impl IntoIterator<Item = &'a str>) -> Self {
        self.corpus
            .extend(sentences.into_iter().map(str::to_string));
        self
    }

    /// Add one training sentence.
    pub fn sentence(mut self, s: impl Into<String>) -> Self {
        self.corpus.push(s.into());
        self
    }

    /// Register known entity surface forms (used as hallucination
    /// candidates and for span filtering).
    pub fn entity_names<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        self.entity_names
            .extend(names.into_iter().map(str::to_string));
        self
    }

    /// Whether the model fabricates answers when evidence is missing
    /// (default: `false`, i.e. it abstains).
    pub fn hallucinate(mut self, yes: bool) -> Self {
        self.hallucinate = yes;
        self
    }

    /// Base seed for generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Train and freeze the model.
    pub fn build(self) -> Slm {
        let mut lm = NgramLm::new();
        lm.observe_all(self.corpus.iter().map(String::as_str));
        let mut embedder = Embedder::new();
        embedder.train(self.corpus.iter().map(String::as_str));
        let evidence = EvidenceIndex::from_sentences(self.corpus.iter().map(String::as_str));
        let mut entity_names = self.entity_names;
        entity_names.sort();
        entity_names.dedup();
        Slm {
            lm,
            embedder,
            evidence,
            entity_names,
            hallucinate: self.hallucinate,
            seed: self.seed,
        }
    }
}

/// The simulated language model. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Slm {
    lm: NgramLm,
    embedder: Embedder,
    evidence: EvidenceIndex,
    entity_names: Vec<String>,
    hallucinate: bool,
    seed: u64,
}

impl Slm {
    /// Start building a model.
    pub fn builder() -> SlmBuilder {
        SlmBuilder::new()
    }

    /// The underlying n-gram LM (for perplexity experiments).
    pub fn lm(&self) -> &NgramLm {
        &self.lm
    }

    /// The trained embedder.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// The parametric evidence index (the model's enumerable knowledge).
    pub fn knowledge(&self) -> &EvidenceIndex {
        &self.evidence
    }

    /// Registered entity surface forms.
    pub fn entity_names(&self) -> &[String] {
        &self.entity_names
    }

    /// Average per-token log2 likelihood of a text (the LLM "score").
    pub fn score(&self, text: &str) -> f64 {
        self.lm.log_likelihood(text)
    }

    /// Embed a text into the shared vector space.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        self.embedder.embed(text)
    }

    /// Cosine similarity of two texts.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        self.embedder.similarity(a, b)
    }

    /// Does the model verifiably know this sentence (≈ exact support)?
    /// Uses bidirectional support so a sentence whose words merely appear
    /// inside some known sentence does not count as known.
    pub fn knows(&self, sentence: &str) -> bool {
        self.evidence.verified_support(sentence) >= 0.999
    }

    /// Complete a prompt. Structured prompts (see [`crate::prompt`]) are
    /// routed to the structured behaviours; free prompts get an n-gram
    /// continuation.
    pub fn complete(&self, prompt: &str, params: &GenParams) -> String {
        match parse_prompt(prompt) {
            ParsedPrompt::Question { context, question } => {
                let a = self.answer(&question, &context);
                if a.is_answered() {
                    a.text
                } else {
                    "unknown".to_string()
                }
            }
            ParsedPrompt::Claim { context, claim } => {
                self.verify(&claim, &context).label.name().to_string()
            }
            ParsedPrompt::FewShot {
                examples, input, ..
            } => icl_extract_spans(&examples, &input).join(", "),
            ParsedPrompt::Free(text) => self.lm.generate(
                &text,
                params.max_tokens,
                params.temperature,
                params.top_k,
                params.seed ^ self.seed,
            ),
        }
    }

    /// Chat: answers the last user message, using prior assistant/user
    /// turns as additional context sentences.
    pub fn chat(&self, session: &ChatSession, params: &GenParams) -> Message {
        let question = session
            .last_user()
            .map(|m| m.content.clone())
            .unwrap_or_default();
        let context: Vec<String> = session
            .messages()
            .iter()
            .filter(|m| m.role != Role::User || m.content != question)
            .map(|m| m.content.clone())
            .collect();
        let text = if question.trim_end().ends_with('?') {
            let a = self.answer(&question, &context);
            if a.is_answered() {
                a.text
            } else {
                "I don't know.".to_string()
            }
        } else {
            self.complete(&question, params)
        };
        Message::assistant(text)
    }

    /// Answer a question given optional in-context evidence sentences.
    ///
    /// Context evidence is preferred over parametric evidence at equal
    /// scores (a deliberate simulation of in-context dominance). The answer
    /// phrase is read off the best evidence sentence: its content words not
    /// present in the question, with original casing.
    pub fn answer(&self, question: &str, context: &[String]) -> Answer {
        let ctx_index = if context.is_empty() {
            None
        } else {
            Some(EvidenceIndex::from_sentences(
                context.iter().map(String::as_str),
            ))
        };
        let ctx_best = ctx_index.as_ref().and_then(|i| i.best_evidence(question));
        let par_best = self.evidence.best_evidence(question);

        let best = match (&ctx_best, &par_best) {
            (Some(c), Some(p)) => {
                if c.score >= p.score {
                    Some((c.text.clone(), c.score))
                } else {
                    Some((p.text.clone(), p.score))
                }
            }
            (Some(c), None) => Some((c.text.clone(), c.score)),
            (None, Some(p)) => Some((p.text.clone(), p.score)),
            (None, None) => None,
        };

        match best {
            Some((evidence, score)) if score >= REFUTE_THRESHOLD => {
                let text = extract_answer_phrase(question, &evidence);
                if text.is_empty() {
                    // evidence restates the question; treat as yes-answer
                    Answer {
                        text: "yes".to_string(),
                        confidence: score,
                        evidence: Some(evidence),
                        hallucinated: false,
                    }
                } else {
                    Answer {
                        text,
                        confidence: score,
                        evidence: Some(evidence),
                        hallucinated: false,
                    }
                }
            }
            _ if self.hallucinate => {
                // fabricate: the lexically closest entity name, else free text
                let fabricated = self
                    .closest_entity(question)
                    .unwrap_or_else(|| self.lm.generate(question, 6, 0.9, 8, self.seed));
                Answer {
                    text: fabricated,
                    confidence: 0.05,
                    evidence: None,
                    hallucinated: true,
                }
            }
            _ => Answer::unknown(),
        }
    }

    /// Verify a claim against context + parametric knowledge.
    ///
    /// * support ≥ [`SUPPORT_THRESHOLD`] → `Supported`;
    /// * otherwise, if near-miss evidence overlaps the claim's
    ///   non-answer words but disagrees on the rest → `Refuted`;
    /// * else `Unknown`.
    pub fn verify(&self, claim: &str, context: &[String]) -> Verdict {
        let ctx_index = if context.is_empty() {
            None
        } else {
            Some(EvidenceIndex::from_sentences(
                context.iter().map(String::as_str),
            ))
        };
        let mut best: Option<crate::evidence::Retrieved> = None;
        if let Some(i) = &ctx_index {
            best = i.best_evidence(claim);
        }
        if let Some(p) = self.evidence.best_evidence(claim) {
            if best.as_ref().is_none_or(|b| p.score > b.score) {
                best = Some(p);
            }
        }
        match best {
            Some(r) if r.score >= SUPPORT_THRESHOLD => Verdict {
                label: VerdictLabel::Supported,
                score: r.score,
                evidence: Some(r.text),
            },
            Some(r) if r.score >= REFUTE_THRESHOLD && contradicts(claim, &r.text) => Verdict {
                label: VerdictLabel::Refuted,
                score: r.score,
                evidence: Some(r.text),
            },
            Some(r) => Verdict {
                label: VerdictLabel::Unknown,
                score: r.score,
                evidence: Some(r.text),
            },
            None => Verdict {
                label: VerdictLabel::Unknown,
                score: 0.0,
                evidence: None,
            },
        }
    }

    /// In-context span extraction (the PromptNER-style interface).
    pub fn extract_spans(&self, examples: &[(String, String)], input: &str) -> Vec<String> {
        icl_extract_spans(examples, input)
    }

    fn closest_entity(&self, question: &str) -> Option<String> {
        let qwords = content_words(question);
        self.entity_names
            .iter()
            .map(|n| {
                let nwords = tokenize_words(n);
                let overlap = nwords.iter().filter(|w| qwords.contains(w)).count();
                (n, overlap)
            })
            .max_by_key(|&(n, overlap)| (overlap, std::cmp::Reverse(n.len())))
            .map(|(n, _)| n.clone())
    }
}

/// The content words of `evidence` that do not occur in `question`,
/// rendered with their original casing and order. Comparison is on light
/// stems so "works" in evidence matches "work" in the question.
fn extract_answer_phrase(question: &str, evidence: &str) -> String {
    let qstems: Vec<String> = tokenize_words(question).iter().map(|w| stem(w)).collect();
    let mut out: Vec<&str> = Vec::new();
    for raw in evidence.split_whitespace() {
        let clean = raw.trim_matches(|c: char| !c.is_alphanumeric());
        if clean.is_empty() {
            continue;
        }
        let lower = clean.to_lowercase();
        if !qstems.contains(&stem(&lower)) && !is_stopword(&lower) {
            out.push(clean);
        }
    }
    out.join(" ")
}

/// Does near-miss evidence *contradict* a claim? True when the two share a
/// solid anchor (≥2 stemmed content words) yet each asserts content the
/// other lacks — the shape of a verbalized triple whose object was swapped.
fn contradicts(claim: &str, evidence: &str) -> bool {
    let cw = stemmed_content_words(claim);
    let ew = stemmed_content_words(evidence);
    let shared = cw.iter().filter(|w| ew.contains(w)).count();
    let claim_only = cw.iter().filter(|w| !ew.contains(w)).count();
    let evidence_only = ew.iter().filter(|w| !cw.contains(w)).count();
    shared >= 2 && claim_only >= 1 && evidence_only >= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(hallucinate: bool) -> Slm {
        Slm::builder()
            .corpus([
                "Alice works at Acme",
                "Bob works at Initech",
                "Carol directed The Big Film",
                "The Big Film stars Bob",
                "Alice was born in Paris",
            ])
            .entity_names(["Alice", "Bob", "Carol", "Acme", "Initech", "Paris"])
            .hallucinate(hallucinate)
            .seed(7)
            .build()
    }

    #[test]
    fn answers_known_facts() {
        let m = model(false);
        let a = m.answer("Where does Alice work?", &[]);
        assert!(a.is_answered());
        assert!(a.text.contains("Acme"), "{a:?}");
        assert!(!a.hallucinated);
        assert!(a.confidence > 0.4);
    }

    #[test]
    fn abstains_on_unknown_without_hallucination() {
        let m = model(false);
        let a = m.answer("What powers the quantum reactor?", &[]);
        assert!(!a.is_answered());
        assert!(!a.hallucinated);
    }

    #[test]
    fn hallucinates_when_enabled() {
        let m = model(true);
        let a = m.answer("What is the melting point of zorblax?", &[]);
        assert!(a.is_answered());
        assert!(a.hallucinated);
        assert!(a.confidence < 0.2);
    }

    #[test]
    fn context_beats_parametric_memory() {
        let m = model(false);
        // context says Alice works at Globex (overriding parametric Acme)
        let ctx = vec!["Alice works at Globex".to_string()];
        let a = m.answer("Where does Alice work?", &ctx);
        assert!(a.text.contains("Globex"), "{a:?}");
    }

    #[test]
    fn verify_supported_refuted_unknown() {
        let m = model(false);
        assert_eq!(
            m.verify("Alice works at Acme", &[]).label,
            VerdictLabel::Supported
        );
        assert_eq!(
            m.verify("Alice works at Initech", &[]).label,
            VerdictLabel::Refuted
        );
        assert_eq!(
            m.verify("the zorblax reactor melted", &[]).label,
            VerdictLabel::Unknown
        );
    }

    #[test]
    fn knows_is_exact() {
        let m = model(false);
        assert!(m.knows("Alice works at Acme"));
        assert!(!m.knows("Alice works at Initech"));
    }

    #[test]
    fn complete_routes_structured_prompts() {
        let m = model(false);
        let qa = crate::prompt::qa_prompt(&[], "Where does Bob work?");
        let out = m.complete(&qa, &GenParams::default());
        assert!(out.contains("Initech"), "{out}");
        let v = crate::prompt::verify_prompt(&[], "Alice works at Acme");
        assert_eq!(m.complete(&v, &GenParams::default()), "supported");
    }

    #[test]
    fn complete_free_text_is_deterministic() {
        let m = model(false);
        let p = GenParams::default().with_seed(3);
        assert_eq!(m.complete("alice", &p), m.complete("alice", &p));
    }

    #[test]
    fn chat_answers_questions_with_dialogue_context() {
        let m = model(false);
        let mut s = ChatSession::with_system("You answer from knowledge.");
        s.push(Message::user("Where does Alice work?"));
        let r = m.chat(&s, &GenParams::default());
        assert_eq!(r.role, Role::Assistant);
        assert!(r.content.contains("Acme"), "{}", r.content);
    }

    #[test]
    fn yes_answer_when_evidence_restates_question() {
        let m = model(false);
        let a = m.answer("Does Alice work at Acme?", &[]);
        assert_eq!(a.text, "yes");
    }

    #[test]
    fn builder_dedups_entity_names() {
        let m = Slm::builder().entity_names(["A", "A", "B"]).build();
        assert_eq!(m.entity_names().len(), 2);
    }
}
