//! Text embeddings: hashed random projection enriched with corpus
//! co-occurrence.
//!
//! Each word gets a deterministic pseudo-random base vector (feature
//! hashing). A word's *contextual* vector is its base vector blended with
//! the average base vector of words it co-occurs with in the training
//! corpus — a cheap stand-in for distributional semantics: words appearing
//! in similar sentences end up with similar vectors, which is exactly the
//! property the retrieval / alignment / clustering experiments need. Text
//! embeddings are IDF-weighted averages of word vectors.

use std::collections::HashMap;

use crate::tokenizer::{content_words, is_stopword, tokenize_words};

/// Embedding dimensionality used across the workspace.
pub const DIM: usize = 64;

/// Blend factor between a word's hash vector and its context vector.
const CONTEXT_BLEND: f32 = 0.5;

/// Deterministic word/text embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    /// learned co-occurrence context vectors (word → summed neighbor hash)
    context: HashMap<String, Vec<f32>>,
    /// document frequency per word, for IDF weighting
    doc_freq: HashMap<String, u32>,
    /// number of training sentences
    docs: u32,
}

/// SplitMix64, used to derive per-word hash vectors deterministically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn word_seed(word: &str) -> u64 {
    // FNV-1a
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in word.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic base (hash) vector of a word: unit-norm, `DIM` dims.
pub fn hash_vector(word: &str) -> Vec<f32> {
    let mut state = word_seed(word);
    let mut v = Vec::with_capacity(DIM);
    for _ in 0..DIM {
        state = splitmix64(state);
        // map to [-1, 1)
        let x = (state >> 11) as f32 / (1u64 << 53) as f32;
        v.push(x * 2.0 - 1.0);
    }
    normalize(&mut v);
    v
}

/// Scale `v` to unit L2 norm in place. Zero vectors are left untouched
/// (there is no direction to normalize them toward), which is what lets
/// downstream dot products treat them as "similar to nothing" — exactly
/// the `0.0` the guarded [`cosine`] returns.
pub fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Dot product over equal-length slices: the portable 8-lane kernel
/// ([`crate::kernel::dot_scalar`]), which auto-vectorizes and stays the
/// fastest option for a *single* 64-dim pair — the explicit SIMD paths
/// in [`crate::kernel`] only win once their call overhead amortizes
/// over a batch, which is why the batched entry points
/// ([`crate::kernel::matmul_tile`] / [`crate::kernel::dot_batch`])
/// dispatch and this one does not.
///
/// This is the retrieval kernel: over unit-normalized vectors the dot
/// product *is* the cosine, at a third of [`cosine`]'s arithmetic and
/// with no per-pair norm recomputation. The accumulators are reduced
/// pairwise at the end, so the result is deterministic for a given
/// input (independent of call site), and bit-identical to every SIMD
/// dispatch path — though not to a strictly sequential summation.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    crate::kernel::dot_scalar(&a[..n], &b[..n])
}

/// Cosine similarity between two equal-length vectors.
///
/// Recomputes both norms on every call (O(3d)); when one side is scanned
/// repeatedly — a retrieval loop — normalize the stored vectors once and
/// use [`dot`] directly instead.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let d = dot(a, b);
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na * nb)
    }
}

impl Default for Embedder {
    fn default() -> Self {
        Self::new()
    }
}

impl Embedder {
    /// An untrained embedder (hash vectors only).
    pub fn new() -> Self {
        Embedder {
            context: HashMap::new(),
            doc_freq: HashMap::new(),
            docs: 0,
        }
    }

    /// Train on a corpus of sentences: accumulates co-occurrence context
    /// vectors and document frequencies.
    pub fn train<'a>(&mut self, sentences: impl IntoIterator<Item = &'a str>) {
        for sent in sentences {
            let words = tokenize_words(sent);
            self.docs += 1;
            let mut seen: Vec<&str> = Vec::new();
            for w in &words {
                if !seen.contains(&w.as_str()) {
                    seen.push(w);
                    *self.doc_freq.entry(w.clone()).or_insert(0) += 1;
                }
            }
            // each content word absorbs the hash vectors of its neighbors;
            // precompute one hash vector per word instead of per pair
            let content: Vec<&String> = words.iter().filter(|w| !is_stopword(w)).collect();
            let hashed: Vec<Vec<f32>> = content.iter().map(|w| hash_vector(w)).collect();
            for (i, w) in content.iter().enumerate() {
                let entry = self
                    .context
                    .entry((*w).clone())
                    .or_insert_with(|| vec![0.0; DIM]);
                for (j, hv) in hashed.iter().enumerate() {
                    if i != j {
                        for (e, h) in entry.iter_mut().zip(hv) {
                            *e += h;
                        }
                    }
                }
            }
        }
    }

    /// IDF weight of a word (1.0 for unseen words).
    pub fn idf(&self, word: &str) -> f32 {
        match self.doc_freq.get(word) {
            Some(&df) if self.docs > 0 => ((1.0 + self.docs as f32) / (1.0 + df as f32)).ln() + 1.0,
            _ => 1.0,
        }
    }

    /// The contextual vector of a word: hash vector blended with learned
    /// context (unit-norm).
    pub fn word_vector(&self, word: &str) -> Vec<f32> {
        let mut v = hash_vector(word);
        if let Some(ctx) = self.context.get(word) {
            let mut c = ctx.clone();
            normalize(&mut c);
            for (x, y) in v.iter_mut().zip(&c) {
                *x = (1.0 - CONTEXT_BLEND) * *x + CONTEXT_BLEND * y;
            }
            normalize(&mut v);
        }
        v
    }

    /// Embed a text: IDF-weighted mean of content-word vectors (unit-norm).
    /// Falls back to all words when the text has no content words, and to
    /// the zero vector for empty text.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut words = content_words(text);
        if words.is_empty() {
            words = tokenize_words(text);
        }
        let mut v = vec![0.0f32; DIM];
        if words.is_empty() {
            return v;
        }
        for w in &words {
            let wv = self.word_vector(w);
            let idf = self.idf(w);
            for (x, y) in v.iter_mut().zip(&wv) {
                *x += idf * y;
            }
        }
        normalize(&mut v);
        v
    }

    /// Cosine similarity of two texts under this embedder.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_vectors_are_deterministic_and_distinct() {
        assert_eq!(hash_vector("alice"), hash_vector("alice"));
        assert!(cosine(&hash_vector("alice"), &hash_vector("bob")) < 0.9);
    }

    #[test]
    fn identical_text_has_similarity_one() {
        let e = Embedder::new();
        let s = e.similarity("alice knows bob", "alice knows bob");
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn overlapping_text_beats_disjoint_text() {
        let e = Embedder::new();
        let near = e.similarity("alice knows bob", "alice knows carol");
        let far = e.similarity("alice knows bob", "quantum flux reactor");
        assert!(near > far, "{near} vs {far}");
    }

    #[test]
    fn cooccurrence_pulls_related_words_together() {
        let mut e = Embedder::new();
        // "paris" and "france" co-occur; "paris" and "reactor" never do
        let corpus = [
            "paris is the capital of france",
            "paris lies in france",
            "france contains paris",
            "the reactor powers the station",
            "the station hosts the reactor",
        ];
        e.train(corpus.iter().copied());
        let related = cosine(&e.word_vector("paris"), &e.word_vector("france"));
        let unrelated = cosine(&e.word_vector("paris"), &e.word_vector("reactor"));
        assert!(related > unrelated, "{related} vs {unrelated}");
    }

    #[test]
    fn idf_downweights_common_words() {
        let mut e = Embedder::new();
        e.train(["the cat sat", "the dog ran", "the bird flew"]);
        assert!(e.idf("the") < e.idf("cat"));
        assert_eq!(e.idf("unseen-word"), 1.0);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = Embedder::new();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn dot_matches_sequential_sum_within_epsilon() {
        // odd length exercises the remainder loop past the 8-wide chunks
        let a: Vec<f32> = (0..67).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..67).map(|i| (i as f32 * 0.51).cos()).collect();
        let seq: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - seq).abs() < 1e-4, "{} vs {seq}", dot(&a, &b));
    }

    #[test]
    fn dot_on_normalized_vectors_equals_cosine() {
        let mut a = hash_vector("alpha");
        let mut b = hash_vector("beta");
        let c = cosine(&a, &b);
        normalize(&mut a);
        normalize(&mut b);
        assert!((dot(&a, &b) - c).abs() < 1e-5);
    }

    #[test]
    fn normalize_leaves_zero_vectors_alone() {
        let mut v = vec![0.0f32; 16];
        normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
        let mut u = vec![3.0f32, 4.0];
        normalize(&mut u);
        assert!((dot(&u, &u).sqrt() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = Embedder::new();
        let v = e.embed("alice knows bob");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }
}
