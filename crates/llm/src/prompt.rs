//! Prompt templates and the structured prompt convention.
//!
//! [`PromptTemplate`] is a `{slot}`-substitution template. The workspace's
//! prompt convention — which [`crate::Slm::complete`] recognizes — uses
//! line-oriented directives:
//!
//! ```text
//! Context:
//! <zero or more evidence sentences, one per line>
//! Question: <question>
//! Answer:
//! ```
//!
//! ```text
//! Claim: <claim sentence>
//! Verdict:
//! ```
//!
//! Few-shot examples are `Input:` / `Output:` line pairs preceding the
//! final `Input:` line. This mirrors how real LLM applications structure
//! prompts while staying deterministic to parse.

use std::collections::BTreeMap;

/// A `{slot}` substitution template.
#[derive(Debug, Clone)]
pub struct PromptTemplate {
    template: String,
}

impl PromptTemplate {
    /// Wrap a template string containing `{slot}` placeholders.
    pub fn new(template: impl Into<String>) -> Self {
        PromptTemplate {
            template: template.into(),
        }
    }

    /// The raw template text.
    pub fn raw(&self) -> &str {
        &self.template
    }

    /// Names of all `{slots}` in order of first appearance.
    pub fn slots(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut rest = self.template.as_str();
        while let Some(start) = rest.find('{') {
            if let Some(end) = rest[start..].find('}') {
                let name = &rest[start + 1..start + end];
                if !name.is_empty()
                    && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && !out.contains(&name.to_string())
                {
                    out.push(name.to_string());
                }
                rest = &rest[start + end + 1..];
            } else {
                break;
            }
        }
        out
    }

    /// Substitute slots. Missing slots are left verbatim so callers can
    /// chain fills.
    pub fn fill(&self, values: &BTreeMap<&str, String>) -> String {
        let mut out = self.template.clone();
        for (k, v) in values {
            out = out.replace(&format!("{{{k}}}"), v);
        }
        out
    }

    /// Substitute a single slot.
    pub fn fill_one(&self, slot: &str, value: &str) -> String {
        self.template.replace(&format!("{{{slot}}}"), value)
    }
}

/// Build a question-answering prompt following the workspace convention.
pub fn qa_prompt(context: &[String], question: &str) -> String {
    let mut out = String::new();
    if !context.is_empty() {
        out.push_str("Context:\n");
        for c in context {
            out.push_str(c);
            out.push('\n');
        }
    }
    out.push_str("Question: ");
    out.push_str(question);
    out.push_str("\nAnswer:");
    out
}

/// Build a claim-verification prompt following the workspace convention.
pub fn verify_prompt(context: &[String], claim: &str) -> String {
    let mut out = String::new();
    if !context.is_empty() {
        out.push_str("Context:\n");
        for c in context {
            out.push_str(c);
            out.push('\n');
        }
    }
    out.push_str("Claim: ");
    out.push_str(claim);
    out.push_str("\nVerdict:");
    out
}

/// Build a few-shot instruction prompt: instruction, `Input:`/`Output:`
/// example pairs, then the final input awaiting an output.
pub fn fewshot_prompt(instruction: &str, examples: &[(String, String)], input: &str) -> String {
    let mut out = String::new();
    out.push_str(instruction);
    out.push('\n');
    for (i, o) in examples {
        out.push_str("Input: ");
        out.push_str(i);
        out.push_str("\nOutput: ");
        out.push_str(o);
        out.push('\n');
    }
    out.push_str("Input: ");
    out.push_str(input);
    out.push_str("\nOutput:");
    out
}

/// The parsed form of a structured prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedPrompt {
    /// QA convention: context sentences + question.
    Question {
        /// Evidence lines from the `Context:` block.
        context: Vec<String>,
        /// The question text.
        question: String,
    },
    /// Verification convention: context sentences + claim.
    Claim {
        /// Evidence lines from the `Context:` block.
        context: Vec<String>,
        /// The claim text.
        claim: String,
    },
    /// Few-shot convention: instruction + examples + final input.
    FewShot {
        /// The instruction header (everything before the first example).
        instruction: String,
        /// `(input, output)` demonstration pairs.
        examples: Vec<(String, String)>,
        /// The final input awaiting an output.
        input: String,
    },
    /// Anything else: treated as a plain continuation prompt.
    Free(String),
}

/// Parse a prompt according to the workspace convention.
pub fn parse_prompt(prompt: &str) -> ParsedPrompt {
    let lines: Vec<&str> = prompt.lines().collect();
    let mut context = Vec::new();
    let mut in_context = false;
    let mut question = None;
    let mut claim = None;
    let mut examples: Vec<(String, String)> = Vec::new();
    let mut pending_input: Option<String> = None;
    let mut instruction = String::new();
    let mut saw_io = false;

    for line in &lines {
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("context:") {
            in_context = true;
        } else if let Some(q) = strip_directive(trimmed, "Question:") {
            in_context = false;
            question = Some(q.to_string());
        } else if let Some(c) = strip_directive(trimmed, "Claim:") {
            in_context = false;
            claim = Some(c.to_string());
        } else if let Some(i) = strip_directive(trimmed, "Input:") {
            in_context = false;
            saw_io = true;
            pending_input = Some(i.to_string());
        } else if let Some(o) = strip_directive(trimmed, "Output:") {
            if let Some(i) = pending_input.take() {
                if !o.is_empty() {
                    examples.push((i, o.to_string()));
                } else {
                    // trailing "Output:" — i is the final input
                    pending_input = Some(i);
                }
            }
        } else if trimmed.eq_ignore_ascii_case("answer:")
            || trimmed.eq_ignore_ascii_case("verdict:")
        {
            // terminal cue lines
        } else if in_context {
            if !trimmed.is_empty() {
                context.push(trimmed.to_string());
            }
        } else if !saw_io && question.is_none() && claim.is_none() && !trimmed.is_empty() {
            if !instruction.is_empty() {
                instruction.push(' ');
            }
            instruction.push_str(trimmed);
        }
    }

    if let Some(q) = question {
        ParsedPrompt::Question {
            context,
            question: q,
        }
    } else if let Some(c) = claim {
        ParsedPrompt::Claim { context, claim: c }
    } else if saw_io {
        ParsedPrompt::FewShot {
            instruction,
            examples,
            input: pending_input.unwrap_or_default(),
        }
    } else {
        ParsedPrompt::Free(prompt.to_string())
    }
}

fn strip_directive<'a>(line: &'a str, directive: &str) -> Option<&'a str> {
    let n = directive.len();
    // the boundary check matters: multi-byte input must not panic here
    if line.len() >= n && line.is_char_boundary(n) && line[..n].eq_ignore_ascii_case(directive) {
        Some(line[n..].trim())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_slots_and_fill() {
        let t = PromptTemplate::new("Describe {entity} in {style} style about {entity}.");
        assert_eq!(t.slots(), vec!["entity", "style"]);
        let mut vals = BTreeMap::new();
        vals.insert("entity", "Alice".to_string());
        vals.insert("style", "formal".to_string());
        assert_eq!(t.fill(&vals), "Describe Alice in formal style about Alice.");
        assert_eq!(
            t.fill_one("entity", "Bob"),
            "Describe Bob in {style} style about Bob."
        );
    }

    #[test]
    fn qa_prompt_parses_back() {
        let p = qa_prompt(&["Alice works at Acme".into()], "Where does Alice work?");
        match parse_prompt(&p) {
            ParsedPrompt::Question { context, question } => {
                assert_eq!(context, vec!["Alice works at Acme"]);
                assert_eq!(question, "Where does Alice work?");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qa_prompt_without_context() {
        let p = qa_prompt(&[], "Who is Alice?");
        match parse_prompt(&p) {
            ParsedPrompt::Question { context, question } => {
                assert!(context.is_empty());
                assert_eq!(question, "Who is Alice?");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verify_prompt_parses_back() {
        let p = verify_prompt(&[], "Alice knows Bob");
        match parse_prompt(&p) {
            ParsedPrompt::Claim { claim, .. } => assert_eq!(claim, "Alice knows Bob"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fewshot_prompt_parses_back() {
        let p = fewshot_prompt(
            "Extract person names.",
            &[("Bob met Carol".into(), "Bob, Carol".into())],
            "Dana saw Erin",
        );
        match parse_prompt(&p) {
            ParsedPrompt::FewShot {
                instruction,
                examples,
                input,
            } => {
                assert_eq!(instruction, "Extract person names.");
                assert_eq!(examples.len(), 1);
                assert_eq!(examples[0].1, "Bob, Carol");
                assert_eq!(input, "Dana saw Erin");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn free_text_is_free() {
        assert_eq!(
            parse_prompt("Once upon a time"),
            ParsedPrompt::Free("Once upon a time".into())
        );
    }
}
