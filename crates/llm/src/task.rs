//! Structured task outputs and the in-context-learning span extractor.

use crate::tokenizer::{is_stopword, tokenize_words};

/// A question-answering result.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The answer phrase.
    pub text: String,
    /// Confidence in `[0, 1]` — the evidence score that produced it.
    pub confidence: f64,
    /// The evidence sentence the answer was read off, if any.
    pub evidence: Option<String>,
    /// `true` when the model answered *without* sufficient evidence
    /// (i.e. this is a measurable hallucination).
    pub hallucinated: bool,
}

impl Answer {
    /// An explicit abstention.
    pub fn unknown() -> Self {
        Answer {
            text: String::new(),
            confidence: 0.0,
            evidence: None,
            hallucinated: false,
        }
    }

    /// Did the model produce any answer text?
    pub fn is_answered(&self) -> bool {
        !self.text.is_empty()
    }
}

/// Verdict labels for claim verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictLabel {
    /// The claim matches known evidence.
    Supported,
    /// Known evidence contradicts the claim.
    Refuted,
    /// No sufficient evidence either way.
    Unknown,
}

impl VerdictLabel {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            VerdictLabel::Supported => "supported",
            VerdictLabel::Refuted => "refuted",
            VerdictLabel::Unknown => "unknown",
        }
    }
}

/// A claim-verification result.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The label.
    pub label: VerdictLabel,
    /// Evidence score backing the decision, in `[0, 1]`.
    pub score: f64,
    /// The decisive evidence sentence, if any.
    pub evidence: Option<String>,
}

/// Pronouns that should never open an entity span at sentence start.
const PRONOUNS: &[&str] = &[
    "she", "he", "they", "we", "i", "you", "it", "her", "his", "their",
];

/// Extract candidate entity spans from text: maximal runs of capitalized
/// words (with lowercase connectors like "of"/"the" allowed inside a run),
/// skipping capitalized sentence-initial stopwords and pronouns.
pub fn capitalized_spans(text: &str) -> Vec<String> {
    let mut spans: Vec<String> = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    let mut pending_connectors: Vec<&str> = Vec::new();
    let mut at_sentence_start = true;

    let flush = |current: &mut Vec<&str>, spans: &mut Vec<String>, pending: &mut Vec<&str>| {
        if !current.is_empty() {
            spans.push(current.join(" "));
            current.clear();
        }
        pending.clear();
    };

    for raw in text.split_whitespace() {
        let word = raw.trim_matches(|c: char| !c.is_alphanumeric());
        if word.is_empty() {
            flush(&mut current, &mut spans, &mut pending_connectors);
            at_sentence_start = true;
            continue;
        }
        let capitalized = word.chars().next().is_some_and(char::is_uppercase);
        let lower = word.to_lowercase();
        if capitalized
            && !(at_sentence_start && (is_stopword(&lower) || PRONOUNS.contains(&lower.as_str())))
        {
            if !current.is_empty() && !pending_connectors.is_empty() {
                current.append(&mut pending_connectors);
            }
            current.push(word);
        } else if !current.is_empty() && matches!(lower.as_str(), "of" | "the" | "de" | "van") {
            // potential internal connector ("University of Lübeck")
            pending_connectors.push(word);
        } else {
            flush(&mut current, &mut spans, &mut pending_connectors);
        }
        let ends_sentence = raw.ends_with(['.', '!', '?']);
        if ends_sentence {
            flush(&mut current, &mut spans, &mut pending_connectors);
        }
        at_sentence_start = ends_sentence;
    }
    flush(&mut current, &mut spans, &mut pending_connectors);
    spans
}

/// Induce a span-extraction rule from few-shot `Input:`/`Output:` examples
/// and apply it to `input`.
///
/// The induced rule is which *fraction of candidate spans* the examples
/// keep and whether outputs ever contain spans that are not capitalized
/// candidates (then fall back to returning all candidates). This mirrors
/// how PromptNER-style prompting constrains an LLM's output space.
pub fn icl_extract_spans(examples: &[(String, String)], input: &str) -> Vec<String> {
    let candidates = capitalized_spans(input);
    if examples.is_empty() {
        return candidates;
    }
    // learn which candidate spans the examples keep: build a keep-filter on
    // span length (in words) observed in example outputs
    let mut kept_lengths: Vec<usize> = Vec::new();
    for (ex_in, ex_out) in examples {
        let ex_cands = capitalized_spans(ex_in);
        let outputs: Vec<String> = ex_out
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        for o in &outputs {
            if ex_cands.iter().any(|c| c == o) {
                kept_lengths.push(tokenize_words(o).len());
            }
        }
    }
    if kept_lengths.is_empty() {
        return candidates;
    }
    let min_len = *kept_lengths.iter().min().expect("non-empty");
    let max_len = *kept_lengths.iter().max().expect("non-empty");
    candidates
        .into_iter()
        .filter(|c| {
            let l = tokenize_words(c).len();
            l >= min_len && l <= max_len
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capitalized_spans_merge_runs() {
        assert_eq!(
            capitalized_spans("Alice Smith met Bob near Lake Como."),
            vec!["Alice Smith", "Bob", "Lake Como"]
        );
    }

    #[test]
    fn sentence_initial_stopword_is_skipped() {
        assert_eq!(capitalized_spans("The film stars Bob."), vec!["Bob"]);
    }

    #[test]
    fn connectors_join_spans() {
        assert_eq!(
            capitalized_spans("She joined University of Lübeck yesterday"),
            vec!["University of Lübeck"]
        );
    }

    #[test]
    fn connector_without_following_capital_is_dropped() {
        assert_eq!(capitalized_spans("Bank of the river"), vec!["Bank"]);
    }

    #[test]
    fn icl_no_examples_returns_candidates() {
        let spans = icl_extract_spans(&[], "Dana saw Erin Blake");
        assert_eq!(spans, vec!["Dana", "Erin Blake"]);
    }

    #[test]
    fn icl_learns_span_length_filter() {
        // examples keep only two-word names
        let examples = vec![
            ("Anna Lee met Bob".to_string(), "Anna Lee".to_string()),
            ("Carl Diaz left Rome".to_string(), "Carl Diaz".to_string()),
        ];
        let spans = icl_extract_spans(&examples, "Dana Fox greeted Gus");
        assert_eq!(spans, vec!["Dana Fox"]);
    }

    #[test]
    fn answer_and_verdict_basics() {
        let a = Answer::unknown();
        assert!(!a.is_answered());
        assert_eq!(VerdictLabel::Supported.name(), "supported");
        assert_eq!(VerdictLabel::Refuted.name(), "refuted");
        assert_eq!(VerdictLabel::Unknown.name(), "unknown");
    }
}
