//! The [`Workbench`]: one object wiring a KG, a simulated LLM trained on
//! its verbalization, and every interplay engine of the paper.

use crate::profile::{
    AnswerProfile, ExecutorProfile, GenerationProfile, ResilienceProfile, RetrievalProfile,
};
use kg::synth::{academic, biomed, geo, movies, Scale, SynthKg};
use kg::Graph;
use kgqa::chatbot::{ChatBot, RouterDecision};
use kgqa::hybrid::HybridExecutor;
use kgqa::text2sparql::TextToSparql;
use kgquery::{execute_sparql, QueryError, ResultSet};
use kgrag::{GraphRag, RagMode, RagPipeline};
use slm::Slm;

/// Which synthetic domain to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Films / actors / directors (the classic KGQA domain).
    Movies,
    /// Universities / researchers / papers.
    Academic,
    /// Countries / cities / rivers.
    Geo,
    /// Diseases / drugs / genes.
    Biomed,
}

impl Domain {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Movies => "movies",
            Domain::Academic => "academic",
            Domain::Geo => "geo",
            Domain::Biomed => "biomed",
        }
    }
}

/// Workbench configuration.
#[derive(Debug, Clone)]
pub struct WorkbenchConfig {
    /// The synthetic domain.
    pub domain: Domain,
    /// Seed for KG generation and all downstream stochastic components.
    pub seed: u64,
    /// KG scale (entities per class).
    pub entities_per_class: usize,
    /// Whether the LM fabricates answers without evidence.
    pub hallucinate: bool,
}

impl Default for WorkbenchConfig {
    fn default() -> Self {
        WorkbenchConfig {
            domain: Domain::Movies,
            seed: 42,
            entities_per_class: 40,
            hallucinate: false,
        }
    }
}

/// The assembled interplay workbench.
pub struct Workbench {
    /// The knowledge graph + its ontology.
    pub kg: SynthKg,
    /// The simulated LLM, trained on the KG's verbalized triples.
    pub slm: Slm,
    /// The verbalized corpus the LM was trained on.
    pub corpus: Vec<String>,
    /// Shared prepared-query plan cache: every chatbot session this
    /// workbench spawns prepares its templated queries through it, so
    /// repeated question shapes are planned once across sessions.
    pub plan_cache: std::sync::Arc<kgquery::PlanCache>,
}

impl Workbench {
    /// Build: generate the KG, verbalize it, train the LM on the
    /// verbalization, register all entity names.
    pub fn build(config: &WorkbenchConfig) -> Self {
        let scale = Scale {
            entities_per_class: config.entities_per_class,
        };
        let kg = match config.domain {
            Domain::Movies => movies(config.seed, scale),
            Domain::Academic => academic(config.seed, scale),
            Domain::Geo => geo(config.seed, scale),
            Domain::Biomed => biomed(config.seed, scale),
        };
        let corpus = kgextract::testgen::corpus_sentences(&kg.graph, &kg.ontology);
        let names = kgextract::testgen::entity_surface_forms(&kg.graph);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .entity_names(names.iter().map(String::as_str))
            .hallucinate(config.hallucinate)
            .seed(config.seed)
            .build();
        Workbench {
            kg,
            slm,
            corpus,
            plan_cache: std::sync::Arc::new(kgquery::PlanCache::default()),
        }
    }

    /// The instance graph.
    pub fn graph(&self) -> &Graph {
        &self.kg.graph
    }

    /// Run a SPARQL query.
    pub fn sparql(&self, query: &str) -> Result<ResultSet, QueryError> {
        execute_sparql(&self.kg.graph, query)
    }

    /// Run a Cypher-lite query.
    pub fn cypher(&self, query: &str) -> Result<ResultSet, QueryError> {
        kgquery::execute_cypher(&self.kg.graph, query)
    }

    /// Run a SPARQL query and return only the executor's work counters
    /// (patterns scanned, index probes, intermediate bindings, path-cache
    /// hits, parallel shards) — the workbench's lightweight profiling
    /// surface.
    ///
    /// ```
    /// use llmkg::{Workbench, WorkbenchConfig};
    ///
    /// let wb = Workbench::build(&WorkbenchConfig::default());
    /// let stats = wb
    ///     .profile_sparql(
    ///         "PREFIX v: <http://llmkg.dev/vocab/>
    ///          SELECT ?film ?who WHERE { ?film v:directedBy ?who }",
    ///     )
    ///     .unwrap();
    /// assert!(stats.index_probes > 0);
    /// assert!(stats.intermediate_bindings > 0);
    /// ```
    pub fn profile_sparql(&self, query: &str) -> Result<kgquery::ExecStats, QueryError> {
        Ok(self.sparql(query)?.stats)
    }

    /// Answer a natural-language question via text-to-SPARQL + execution
    /// (the cooperation pipeline); falls back to LM answering.
    pub fn ask(&self, question: &str) -> String {
        let t2s = TextToSparql::new(&self.kg.graph, &self.slm);
        if let Some(q) = t2s.generate(kgqa::Text2SparqlMethod::SgptSim, question) {
            if let Ok(rs) = self.sparql(&q) {
                let names: Vec<String> = rs
                    .values("answer")
                    .iter()
                    .map(|t| match t {
                        kg::Term::Iri(iri) => self
                            .kg
                            .graph
                            .pool()
                            .get_iri(iri)
                            .map(|s| self.kg.graph.display_name(s))
                            .unwrap_or_else(|| {
                                kg::namespace::humanize(kg::namespace::local_name(iri))
                            }),
                        kg::Term::Literal(l) => l.lexical.clone(),
                        kg::Term::Blank(b) => b.clone(),
                    })
                    .collect();
                if !names.is_empty() {
                    return names.join(", ");
                }
            }
        }
        let a = self.slm.answer(question, &[]);
        if a.is_answered() {
            a.text
        } else {
            "unknown".to_string()
        }
    }

    /// Verify a claim against the LM's knowledge (fact-checking surface).
    pub fn verify(&self, claim: &str) -> slm::VerdictLabel {
        self.slm.verify(claim, &[]).label
    }

    /// Describe an entity by name (KG-to-text surface).
    pub fn describe(&self, entity_name: &str) -> Option<String> {
        let g = &self.kg.graph;
        let entity = g
            .entities()
            .into_iter()
            .find(|&e| g.display_name(e).eq_ignore_ascii_case(entity_name))?;
        Some(kgtext::generate::describe_entity(
            g,
            &self.kg.ontology,
            &self.slm,
            kgtext::GenMethod::Template,
            entity,
            &[],
        ))
    }

    /// Start a chatbot session over this workbench. Sessions share the
    /// workbench's [`kgquery::PlanCache`], so the second session asking a
    /// question shape the first already asked skips planning entirely.
    pub fn chatbot(&self) -> ChatBot<'_> {
        ChatBot::new(&self.kg.graph, &self.slm)
            .with_plan_cache(std::sync::Arc::clone(&self.plan_cache))
    }

    /// Build a RAG pipeline over this workbench's verbalized corpus,
    /// with the KG attached for structured lookup.
    pub fn rag(&self) -> RagPipeline<'_> {
        // The verbalizer emits sentences without terminal punctuation;
        // join with ". " so the chunker sees sentence boundaries instead
        // of one corpus-sized chunk (which made retrieval degenerate).
        let chunks = kgrag::chunk_sentences(&self.corpus.join(". "), 3, 1);
        RagPipeline::new(&self.slm, chunks, Some(&self.kg.graph))
    }

    /// Answer a question through the chatbot path under a fresh tracer
    /// and return the end-to-end [`AnswerProfile`]: route, rows, merged
    /// executor counters, generation outcome, plus the raw span tree and
    /// counter snapshot.
    ///
    /// ```
    /// use llmkg::{Workbench, WorkbenchConfig};
    ///
    /// let wb = Workbench::build(&WorkbenchConfig::default());
    /// let film = wb.graph().display_name(wb.graph().entities()[0]);
    /// let profile = wb.profile_answer(&format!("Who directed {film}?"));
    /// assert_eq!(profile.path, "chatbot");
    /// assert!(profile.wall_ns > 0);
    /// assert_eq!(profile.counters.counter("chatbot.turns"), 1);
    /// ```
    pub fn profile_answer(&self, question: &str) -> AnswerProfile {
        let (tracer, recorder) = obs::Tracer::in_memory();
        let reply = {
            let root = tracer.span("answer.chatbot");
            let mut bot = self.chatbot();
            bot.handle_observed(question, &root)
        };
        let spans = recorder.take();
        let counters = tracer.registry().snapshot();
        let route = reply.decision.label();
        let grounded = matches!(
            reply.decision,
            RouterDecision::KgQuery | RouterDecision::EntityLookup
        );
        AnswerProfile {
            question: question.to_string(),
            path: "chatbot".to_string(),
            route: route.to_string(),
            wall_ns: spans.first().map(|s| s.elapsed_ns).unwrap_or(0),
            retrieval: RetrievalProfile {
                // On the KG route the graph is the retriever: the rows the
                // query returned are both candidates and injected context.
                module: route.to_string(),
                candidates: reply.rows,
                retrieved: reply.rows,
                context_chars: if grounded { reply.text.len() } else { 0 },
                vectors_scanned: counters.counter("retrieval.vectors_scanned"),
                heap_pushes: counters.counter("retrieval.heap_pushes"),
                parallel_shards: counters.counter("retrieval.parallel_shards"),
            },
            executor: ExecutorProfile {
                queries_issued: counters.counter("exec.queries") as usize,
                rows: reply.rows,
                stats: reply.exec,
            },
            generation: GenerationProfile {
                answered: !reply.text.is_empty(),
                hallucinated: false,
                confidence: if grounded && reply.rows > 0 { 1.0 } else { 0.0 },
                answer_chars: reply.text.len(),
            },
            resilience: ResilienceProfile {
                degraded: reply.degradation.degraded(),
                degradation: if reply.degradation.degraded() {
                    reply.degradation.render()
                } else {
                    String::new()
                },
                fallbacks: reply.degradation.falls(),
                faults_injected: counters.counter("resilience.faults_injected"),
            },
            answer: reply.text,
            counters,
            spans,
        }
    }

    /// Answer a question through the RAG path (over the verbalized
    /// corpus, KG attached) under a fresh tracer and return the
    /// end-to-end [`AnswerProfile`]. The executor section is all-zero
    /// here — RAG retrieval probes the vector index or the KG's fact
    /// store directly, never the SPARQL executor.
    pub fn profile_rag_answer(&self, mode: RagMode, question: &str) -> AnswerProfile {
        let pipeline = self.rag();
        let (tracer, recorder) = obs::Tracer::in_memory();
        let answer = {
            let root = tracer.span("answer.rag");
            pipeline.answer_observed(mode, question, &root)
        };
        let spans = recorder.take();
        let counters = tracer.registry().snapshot();
        AnswerProfile {
            question: question.to_string(),
            path: "rag".to_string(),
            route: answer.module.to_string(),
            wall_ns: spans.first().map(|s| s.elapsed_ns).unwrap_or(0),
            retrieval: RetrievalProfile {
                module: answer.module.to_string(),
                candidates: answer.candidates,
                retrieved: answer.retrieved.len(),
                context_chars: answer.context_chars,
                vectors_scanned: counters.counter("retrieval.vectors_scanned"),
                heap_pushes: counters.counter("retrieval.heap_pushes"),
                parallel_shards: counters.counter("retrieval.parallel_shards"),
            },
            executor: ExecutorProfile::default(),
            generation: GenerationProfile {
                answered: !answer.text.is_empty(),
                hallucinated: answer.hallucinated,
                confidence: answer.confidence,
                answer_chars: answer.text.len(),
            },
            resilience: ResilienceProfile {
                degraded: answer.degradation.degraded(),
                degradation: if answer.degradation.degraded() {
                    answer.degradation.render()
                } else {
                    String::new()
                },
                fallbacks: answer.degradation.falls(),
                faults_injected: counters.counter("resilience.faults_injected"),
            },
            answer: answer.text,
            counters,
            spans,
        }
    }

    /// Run a SPARQL query through the hybrid executor (virtual predicates
    /// answered by the LM, the rest by the store — see
    /// [`kgqa::HybridExecutor`]) under a fresh tracer and return the
    /// end-to-end [`AnswerProfile`]. The retrieval section accounts the
    /// LM side (`candidates` = LLM calls, `retrieved` = surviving rows);
    /// the executor section carries the store side's `exec.*` counters.
    pub fn profile_hybrid_answer(
        &self,
        sparql: &str,
        virtual_preds: impl IntoIterator<Item = String>,
    ) -> Result<AnswerProfile, QueryError> {
        let exec = HybridExecutor::new(
            &self.kg.graph,
            &self.slm,
            virtual_preds.into_iter().collect(),
        );
        let (tracer, recorder) = obs::Tracer::in_memory();
        let result = {
            let root = tracer.span("answer.hybrid");
            exec.execute_observed(sparql, &root)
        };
        let (rs, stats) = result?;
        let spans = recorder.take();
        let counters = tracer.registry().snapshot();
        let answer = rs
            .rows
            .iter()
            .flatten()
            .flatten()
            .map(|t| match t {
                kg::Term::Literal(l) => l.lexical.clone(),
                kg::Term::Iri(iri) => self
                    .kg
                    .graph
                    .pool()
                    .get_iri(iri)
                    .map(|s| self.kg.graph.display_name(s))
                    .unwrap_or_else(|| kg::namespace::humanize(kg::namespace::local_name(iri))),
                kg::Term::Blank(b) => b.clone(),
            })
            .collect::<Vec<_>>()
            .join(", ");
        Ok(AnswerProfile {
            question: sparql.to_string(),
            path: "hybrid".to_string(),
            route: if stats.llm_calls > 0 {
                "store+llm".to_string()
            } else {
                "store".to_string()
            },
            wall_ns: spans.first().map(|s| s.elapsed_ns).unwrap_or(0),
            retrieval: RetrievalProfile {
                module: "hybrid".to_string(),
                candidates: stats.llm_calls,
                retrieved: rs.len(),
                context_chars: answer.len(),
                vectors_scanned: counters.counter("retrieval.vectors_scanned"),
                heap_pushes: counters.counter("retrieval.heap_pushes"),
                parallel_shards: counters.counter("retrieval.parallel_shards"),
            },
            executor: ExecutorProfile {
                queries_issued: counters.counter("exec.queries") as usize,
                rows: rs.len(),
                stats: kgquery::ExecStats {
                    patterns_scanned: counters.counter("exec.patterns_scanned") as usize,
                    index_probes: counters.counter("exec.index_probes") as usize,
                    intermediate_bindings: counters.counter("exec.intermediate_bindings") as usize,
                    path_cache_hits: counters.counter("exec.path_cache_hits") as usize,
                    parallel_shards: counters.counter("exec.parallel_shards") as usize,
                    merge_joins: counters.counter("exec.merge_joins") as usize,
                },
            },
            generation: GenerationProfile {
                answered: !rs.is_empty(),
                hallucinated: false,
                confidence: if stats.llm_misses == 0 { 1.0 } else { 0.0 },
                answer_chars: answer.len(),
            },
            resilience: ResilienceProfile {
                degraded: stats.llm_misses > 0,
                degradation: if stats.llm_misses > 0 {
                    format!("{} virtual bindings unanswered by the LM", stats.llm_misses)
                } else {
                    String::new()
                },
                fallbacks: stats.llm_misses,
                faults_injected: counters.counter("resilience.faults_injected"),
            },
            answer,
            counters,
            spans,
        })
    }

    /// Build the Graph RAG engine over this KG.
    pub fn graph_rag(&self) -> GraphRag<'_> {
        GraphRag::build(&self.kg.graph, &self.slm)
    }

    /// Validate the KG against its own ontology (inconsistency surface).
    pub fn validate(&self) -> Vec<kgvalidate::Violation> {
        kgvalidate::detect_violations(&self.kg.graph, &self.kg.ontology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb() -> Workbench {
        Workbench::build(&WorkbenchConfig {
            entities_per_class: 10,
            ..Default::default()
        })
    }

    #[test]
    fn workbench_builds_all_parts() {
        let w = wb();
        assert!(w.graph().len() > 50);
        assert!(!w.corpus.is_empty());
        assert!(w.slm.knowledge().len() == w.corpus.len());
    }

    #[test]
    fn sparql_and_cypher_work() {
        let w = wb();
        let rs = w
            .sparql("PREFIX v: <http://llmkg.dev/vocab/> SELECT ?f WHERE { ?f a v:Film }")
            .unwrap();
        assert!(!rs.is_empty());
        let rc = w.cypher("MATCH (f:Film) RETURN f").unwrap();
        assert_eq!(rs.len(), rc.len());
    }

    #[test]
    fn profile_reports_executor_work() {
        let w = wb();
        let stats = w
            .profile_sparql(
                "PREFIX v: <http://llmkg.dev/vocab/> \
                 SELECT ?f ?d WHERE { ?f a v:Film . ?f v:directedBy ?d }",
            )
            .unwrap();
        assert_eq!(stats.patterns_scanned, 2);
        assert!(stats.index_probes >= 2, "{stats:?}");
        assert!(stats.intermediate_bindings > 0, "{stats:?}");
    }

    #[test]
    fn ask_answers_entity_questions() {
        let w = wb();
        let g = w.graph();
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let directed = g
            .pool()
            .get_iri(&format!("{}directedBy", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let director = g.objects(film, directed)[0];
        let answer = w.ask(&format!("What is {} directed by?", g.display_name(film)));
        assert!(answer.contains(&g.display_name(director)), "{answer}");
    }

    #[test]
    fn verify_and_describe_and_validate() {
        let w = wb();
        assert_eq!(w.verify(&w.corpus[0]), slm::VerdictLabel::Supported);
        let g = w.graph();
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let desc = w.describe(&g.display_name(film)).expect("describable");
        assert!(desc.contains("directed by"));
        assert!(w.validate().is_empty(), "clean KG validates clean");
        assert!(w.describe("no such entity zzz").is_none());
    }

    #[test]
    fn chatbot_sessions_share_the_workbench_plan_cache() {
        let w = wb();
        let g = w.graph();
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let films = g.instances_of(film_class);
        for film in films.iter().take(3) {
            let mut bot = w.chatbot();
            bot.handle(&format!("What is {} directed by?", g.display_name(*film)));
        }
        let stats = w.plan_cache.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert!(stats.hits >= 2, "{stats:?}");
    }

    #[test]
    fn all_domains_build() {
        for domain in [
            Domain::Movies,
            Domain::Academic,
            Domain::Geo,
            Domain::Biomed,
        ] {
            let w = Workbench::build(&WorkbenchConfig {
                domain,
                entities_per_class: 8,
                ..Default::default()
            });
            assert!(w.graph().len() > 30, "{}", domain.name());
        }
    }
}
