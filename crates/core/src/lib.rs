//! # llmkg — the LLM ⟷ KG interplay framework
//!
//! Umbrella crate for the VLDB'24 *"Research Trends for the Interplay
//! between Large Language Models and Knowledge Graphs"* reproduction. It
//! re-exports every subsystem and provides [`Workbench`], a one-stop
//! facade that wires a knowledge graph, a simulated LLM trained on its
//! verbalization, and all three interplay families of the paper's
//! Figure 1 taxonomy:
//!
//! * **LLM for KG** (§2): construction ([`kgextract`], [`kgonto`]),
//!   KG-to-text ([`kgtext`]), reasoning ([`kgreason`]), completion
//!   ([`kgcomplete`], [`kgembed`]), validation ([`kgvalidate`]);
//! * **KG-enhanced LLM** (§3): knowledge injection and the RAG ladder up
//!   to Graph RAG ([`kgrag`]);
//! * **LLM-KG Cooperation** (§4): multi-hop QA, question generation,
//!   text-to-SPARQL/Cypher, hybrid LLM-SPARQL execution, and chatbots
//!   ([`kgqa`], [`kgquery`]).
//!
//! The paper's own artifacts (Figure 1, Table 1, Figure 2) live in
//! [`corpus`].
//!
//! ```
//! use llmkg::{Workbench, WorkbenchConfig};
//!
//! let wb = Workbench::build(&WorkbenchConfig::default());
//! let films = wb.sparql(
//!     "PREFIX v: <http://llmkg.dev/vocab/> SELECT ?f WHERE { ?f a v:Film }",
//! ).unwrap();
//! assert!(!films.is_empty());
//! ```

pub use corpus;
pub use kg;
pub use kgcomplete;
pub use kgembed;
pub use kgextract;
pub use kgonto;
pub use kgqa;
pub use kgquery;
pub use kgrag;
pub use kgreason;
pub use kgtext;
pub use kgvalidate;
pub use obs;
pub use resilience;
pub use serde_json;
pub use slm;

pub mod profile;
pub mod workbench;

pub use profile::{
    AnswerProfile, ExecutorProfile, GenerationProfile, ResilienceProfile, RetrievalProfile,
};
pub use workbench::{Domain, Workbench, WorkbenchConfig};
