//! Per-answer, end-to-end profiles: one [`AnswerProfile`] per question,
//! covering retrieval, executor, and generation work plus the full span
//! tree and counter snapshot captured while the answer was produced.
//!
//! The workbench builds these by running an answering path (chatbot or
//! RAG) under a fresh in-memory [`obs::Tracer`], then distilling the
//! recorded spans and counters into a small typed summary. The typed
//! fields answer the common questions directly (`how many rows?`, `how
//! much context?`, `did it hallucinate?`); the raw `spans`/`counters`
//! keep the full evidence for drill-down or JSON export.

use kgquery::ExecStats;
use obs::{AttrValue, MetricsSnapshot, SpanRecord};
use serde_json::{json, Map, Value};

/// Retrieval-stage counters of one answered question.
///
/// On the chatbot's KG route the "retriever" is the graph itself:
/// `candidates`/`retrieved` are the rows the SPARQL query returned and
/// `context_chars` is the size of the KG-derived text handed to the
/// user. On RAG paths these mirror [`kgrag::RagAnswer`].
#[derive(Debug, Clone, Default)]
pub struct RetrievalProfile {
    /// Which module produced the context (`"kg-query"`, `"llm-chat"`,
    /// `"vector"`, `"kg-lookup"`, `"parametric"`).
    pub module: String,
    /// Candidates considered before selection.
    pub candidates: usize,
    /// Items actually injected into generation.
    pub retrieved: usize,
    /// Characters of injected context.
    pub context_chars: usize,
    /// Vectors scored by the arena index while answering
    /// (`retrieval.vectors_scanned`; zero on non-vector routes).
    pub vectors_scanned: u64,
    /// Top-k heap insertions across those scans
    /// (`retrieval.heap_pushes`).
    pub heap_pushes: u64,
    /// Worker shards spawned by parallel scans
    /// (`retrieval.parallel_shards`; zero on sequential scans).
    pub parallel_shards: u64,
}

/// Executor-stage counters of one answered question — the
/// [`kgquery::ExecStats`]-derived slice of the profile.
#[derive(Debug, Clone, Default)]
pub struct ExecutorProfile {
    /// SPARQL queries issued while answering (zero on pure-LM routes).
    pub queries_issued: usize,
    /// Total rows those queries returned.
    pub rows: usize,
    /// Merged executor work counters across all issued queries.
    pub stats: ExecStats,
}

/// Generation-stage counters of one answered question.
#[derive(Debug, Clone, Default)]
pub struct GenerationProfile {
    /// Whether an answer was produced (vs. abstained / empty).
    pub answered: bool,
    /// Whether the LM answered without evidence (measurable
    /// hallucination; always `false` on grounded KG routes).
    pub hallucinated: bool,
    /// Evidence confidence (1.0 for KG-grounded answers).
    pub confidence: f64,
    /// Characters of answer text.
    pub answer_chars: usize,
}

/// Resilience-stage summary of one answered question: whether the
/// answer degraded off its primary route, and why (see
/// `docs/resilience.md`).
#[derive(Debug, Clone, Default)]
pub struct ResilienceProfile {
    /// Whether any fallback rung was taken.
    pub degraded: bool,
    /// Rendered degradation trace (`"rung(reason) -> … => served_by"`),
    /// empty when the primary route answered.
    pub degradation: String,
    /// Number of fallback steps taken.
    pub fallbacks: usize,
    /// Faults injected by a chaos schedule (always 0 in production).
    pub faults_injected: u64,
}

/// An end-to-end profile of one answered question.
#[derive(Debug, Clone)]
pub struct AnswerProfile {
    /// The question asked.
    pub question: String,
    /// The answer produced.
    pub answer: String,
    /// Answering path (`"chatbot"` or `"rag"`).
    pub path: String,
    /// Route taken inside the path (e.g. `"kg-query"`, `"vector"`).
    pub route: String,
    /// Wall time of the whole answer, in nanoseconds.
    pub wall_ns: u64,
    /// Retrieval-stage summary.
    pub retrieval: RetrievalProfile,
    /// Executor-stage summary.
    pub executor: ExecutorProfile,
    /// Generation-stage summary.
    pub generation: GenerationProfile,
    /// Resilience-stage summary: degradation ladder steps and injected
    /// faults.
    pub resilience: ResilienceProfile,
    /// Every counter incremented while answering.
    pub counters: MetricsSnapshot,
    /// The recorded span trees (one root per answer).
    pub spans: Vec<SpanRecord>,
}

impl AnswerProfile {
    /// The profile as a JSON value, spans and counters included.
    pub fn to_json(&self) -> Value {
        let mut counters = Map::new();
        for (name, v) in &self.counters.counters {
            counters.insert(name.clone(), Value::from(*v));
        }
        json!({
            "question": self.question,
            "answer": self.answer,
            "path": self.path,
            "route": self.route,
            "wall_ns": self.wall_ns,
            "retrieval": {
                "module": self.retrieval.module,
                "candidates": self.retrieval.candidates,
                "retrieved": self.retrieval.retrieved,
                "context_chars": self.retrieval.context_chars,
                "vectors_scanned": self.retrieval.vectors_scanned,
                "heap_pushes": self.retrieval.heap_pushes,
                "parallel_shards": self.retrieval.parallel_shards,
            },
            "executor": {
                "queries_issued": self.executor.queries_issued,
                "rows": self.executor.rows,
                "patterns_scanned": self.executor.stats.patterns_scanned,
                "index_probes": self.executor.stats.index_probes,
                "intermediate_bindings": self.executor.stats.intermediate_bindings,
                "path_cache_hits": self.executor.stats.path_cache_hits,
                "parallel_shards": self.executor.stats.parallel_shards,
                "merge_joins": self.executor.stats.merge_joins,
            },
            "generation": {
                "answered": self.generation.answered,
                "hallucinated": self.generation.hallucinated,
                "confidence": self.generation.confidence,
                "answer_chars": self.generation.answer_chars,
            },
            "resilience": {
                "degraded": self.resilience.degraded,
                "degradation": self.resilience.degradation,
                "fallbacks": self.resilience.fallbacks,
                "faults_injected": self.resilience.faults_injected,
            },
            "counters": Value::Object(counters),
            "spans": Value::Array(self.spans.iter().map(span_to_value).collect()),
        })
    }
}

fn attr_to_value(v: &AttrValue) -> Value {
    match v {
        AttrValue::U64(n) => Value::from(*n),
        AttrValue::I64(n) => Value::from(*n),
        AttrValue::F64(n) => Value::from(*n),
        AttrValue::Bool(b) => Value::from(*b),
        AttrValue::Str(s) => Value::from(s.as_str()),
    }
}

fn span_to_value(s: &SpanRecord) -> Value {
    let mut attrs = Map::new();
    for (k, v) in &s.attrs {
        attrs.insert(k.clone(), attr_to_value(v));
    }
    json!({
        "name": s.name,
        "start_ns": s.start_ns,
        "elapsed_ns": s.elapsed_ns,
        "attrs": Value::Object(attrs),
        "children": Value::Array(s.children.iter().map(span_to_value).collect()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_serializes_spans_and_counters() {
        let (tracer, recorder) = obs::Tracer::in_memory();
        {
            let root = tracer.span("answer");
            root.set("route", "kg-query");
            root.count("exec.queries", 1);
            let child = root.child("sparql.execute");
            child.set("rows", 3u64);
        }
        let profile = AnswerProfile {
            question: "who directed \"it\"?".into(),
            answer: "someone".into(),
            path: "chatbot".into(),
            route: "kg-query".into(),
            wall_ns: 1234,
            retrieval: RetrievalProfile {
                module: "kg-query".into(),
                candidates: 3,
                retrieved: 3,
                context_chars: 7,
                ..Default::default()
            },
            executor: ExecutorProfile {
                queries_issued: 1,
                rows: 3,
                stats: ExecStats {
                    patterns_scanned: 2,
                    index_probes: 4,
                    intermediate_bindings: 5,
                    path_cache_hits: 0,
                    parallel_shards: 0,
                    merge_joins: 0,
                },
            },
            generation: GenerationProfile {
                answered: true,
                hallucinated: false,
                confidence: 1.0,
                answer_chars: 7,
            },
            resilience: ResilienceProfile::default(),
            counters: tracer.registry().snapshot(),
            spans: recorder.take(),
        };
        let text = serde_json::to_string(&profile.to_json()).unwrap();
        assert!(text.contains("\"index_probes\":4"), "{text}");
        assert!(text.contains("\"exec.queries\":1"), "{text}");
        assert!(text.contains("\"sparql.execute\""), "{text}");
        assert!(text.contains("who directed \\\"it\\\"?"), "{text}");
    }
}
