//! # obs — the `llmkg` observability substrate
//!
//! A zero-dependency tracing/metrics layer for the workspace: hierarchical
//! [`Span`]s with monotonic timings, named counters and histograms in a
//! thread-safe [`Registry`], and a [`Recorder`] trait that receives every
//! finished root span (in-memory for tests and profiles, JSON lines for
//! files and pipes).
//!
//! The design optimizes for *instrumentation that costs nothing when
//! nobody is watching*: a [`Span::disabled`] handle is a `None` and every
//! operation on it is a no-op, so library code takes `&Span` parameters
//! unconditionally and callers opt in by passing a real span from a
//! [`Tracer`].
//!
//! ```
//! use obs::Tracer;
//!
//! let (tracer, recorder) = Tracer::in_memory();
//! {
//!     let turn = tracer.span("chatbot.turn");
//!     turn.set("route", "kg-query");
//!     {
//!         let exec = turn.child("sparql.execute");
//!         exec.set("rows", 3u64);
//!         exec.count("exec.queries", 1);
//!     } // children finish (and fold into the parent) on drop
//! } // the root finishes and reaches the recorder
//! let spans = recorder.take();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].children[0].name, "sparql.execute");
//! assert_eq!(tracer.registry().counter("exec.queries"), 1);
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod record;
pub mod span;

pub use metrics::{HistogramSnapshot, MetricsSnapshot, Registry};
pub use record::{JsonLinesSink, MemoryRecorder, NullRecorder, Recorder};
pub use span::{AttrValue, Span, SpanRecord, Tracer};
