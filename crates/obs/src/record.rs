//! Where finished spans go: the [`Recorder`] trait and its sinks.

use std::io::Write;
use std::sync::Mutex;

use crate::span::SpanRecord;

/// Receives every finished *root* span (children arrive inside it).
pub trait Recorder: Send + Sync {
    /// Deliver one finished span tree.
    fn record(&self, span: &SpanRecord);
}

/// Keeps finished spans in memory — the sink behind tests and
/// per-answer profiles.
///
/// ```
/// let (tracer, recorder) = obs::Tracer::in_memory();
/// tracer.span("unit").finish();
/// assert_eq!(recorder.take()[0].name, "unit");
/// assert!(recorder.take().is_empty()); // take drains
/// ```
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    spans: Mutex<Vec<SpanRecord>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Drain and return every span recorded so far.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.lock().expect("recorder poisoned"))
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("recorder poisoned").len()
    }

    /// Whether no spans have been recorded (or all were taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, span: &SpanRecord) {
        self.spans
            .lock()
            .expect("recorder poisoned")
            .push(span.clone());
    }
}

/// Writes each finished root span as one JSON object per line — the
/// streaming-friendly format for files and pipes.
///
/// ```
/// use obs::{JsonLinesSink, Recorder, Tracer};
/// use std::sync::Arc;
///
/// let sink = Arc::new(JsonLinesSink::new(Vec::new()));
/// let tracer = Tracer::new(sink.clone());
/// tracer.span("a").finish();
/// tracer.span("b").finish();
/// let bytes = sink.with_writer(|w| w.clone());
/// let text = String::from_utf8(bytes).unwrap();
/// assert_eq!(text.lines().count(), 2);
/// assert!(text.starts_with("{\"name\":\"a\""));
/// ```
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Run `f` with exclusive access to the underlying writer (to flush,
    /// inspect a buffer in tests, …).
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        f(&mut self.writer.lock().expect("sink poisoned"))
    }
}

impl<W: Write + Send> Recorder for JsonLinesSink<W> {
    fn record(&self, span: &SpanRecord) {
        let mut line = span.to_json();
        line.push('\n');
        let mut w = self.writer.lock().expect("sink poisoned");
        // a full disk must not take the query path down with it
        let _ = w.write_all(line.as_bytes());
    }
}

/// Discards everything — for tracers whose only purpose is counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _span: &SpanRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use std::sync::Arc;

    #[test]
    fn memory_recorder_accumulates_then_drains() {
        let (tracer, recorder) = Tracer::in_memory();
        tracer.span("one").finish();
        tracer.span("two").finish();
        assert_eq!(recorder.len(), 2);
        let spans = recorder.take();
        assert_eq!(spans[0].name, "one");
        assert_eq!(spans[1].name, "two");
        assert!(recorder.is_empty());
    }

    #[test]
    fn json_lines_sink_emits_one_valid_line_per_root() {
        let sink = Arc::new(JsonLinesSink::new(Vec::new()));
        let tracer = Tracer::new(sink.clone());
        let root = tracer.span("root");
        root.child("inner").finish();
        root.finish();
        tracer.span("next").finish();
        let text = String::from_utf8(sink.with_writer(|w| w.clone())).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"inner\""));
        assert!(lines[1].starts_with("{\"name\":\"next\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn null_recorder_still_counts() {
        let tracer = Tracer::new(Arc::new(NullRecorder));
        let span = tracer.span("s");
        span.count("n", 2);
        span.finish();
        assert_eq!(tracer.registry().counter("n"), 2);
    }
}
