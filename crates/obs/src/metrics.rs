//! Named counters and histograms behind a thread-safe [`Registry`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json;

/// Number of power-of-two histogram buckets (the last one is unbounded).
const BUCKETS: usize = 32;

/// A thread-safe home for named monotonic counters and value histograms.
///
/// Names are free-form dotted strings (`"exec.index_probes"`); the
/// instrumented subsystems' catalogue lives in `docs/observability.md`.
///
/// ```
/// let reg = obs::Registry::new();
/// reg.incr("exec.queries", 2);
/// reg.observe("rag.context_chars", 120.0);
/// assert_eq!(reg.counter("exec.queries"), 2);
/// assert_eq!(reg.snapshot().histograms["rag.context_chars"].count, 1);
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Debug, Clone, Default)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// `buckets[i]` counts values `v` with `v < 2^i` (first matching
    /// bucket); the final bucket absorbs everything larger.
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = (0..BUCKETS - 1)
            .find(|&i| v < f64::from(2u32).powi(i as i32))
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx] += 1;
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (i, n) in other.buckets.iter().enumerate().take(BUCKETS) {
            self.buckets[i] += n;
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `by` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// A consistent copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::from(h)))
                .collect(),
        }
    }

    /// Fold another registry's snapshot into this one: counters add,
    /// histograms merge bucket-wise. Used to combine the metrics of
    /// independently-traced answers into one report.
    pub fn merge(&self, other: &MetricsSnapshot) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (k, v) in &other.counters {
            *inner.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            inner.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Power-of-two bucket counts: `buckets[i]` counts observations
    /// `< 2^i`, except the last, which is unbounded.
    pub buckets: Vec<u64>,
}

impl From<&Histogram> for HistogramSnapshot {
    fn from(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0.0 } else { h.min },
            max: if h.count == 0 { 0.0 } else { h.max },
            buckets: h.buckets.to_vec(),
        }
    }
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the power-of-two
    /// buckets, interpolating linearly inside the bucket that contains
    /// the target rank and clamping to the observed `[min, max]` range.
    ///
    /// The estimate is bounded by construction — bucket `i` spans
    /// `[2^(i-1), 2^i)` — so it is accurate to within one octave, which
    /// is what a serving `/stats` endpoint needs (a load generator that
    /// wants exact percentiles keeps its own sample vector).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank in [1, count]
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // target falls inside bucket i: span [2^(i-1), 2^i)
                let hi = f64::from(2u32).powi(i as i32);
                let lo = if i == 0 { 0.0 } else { hi / 2.0 };
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo + frac * (hi - lo);
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }
}

/// Point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter in this snapshot (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as a JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max, mean}}}`
    /// (buckets are elided from the JSON form — they exist for in-process
    /// percentile math, not for reports).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, k);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            json::push_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            json::push_f64(&mut out, h.min);
            out.push_str(",\"max\":");
            json::push_f64(&mut out, h.max);
            out.push_str(",\"mean\":");
            json::push_f64(&mut out, h.mean());
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let reg = Registry::new();
        reg.incr("a", 1);
        reg.incr("a", 4);
        reg.incr("b", 2);
        assert_eq!(reg.counter("a"), 5);
        assert_eq!(reg.counter("b"), 2);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max_buckets() {
        let reg = Registry::new();
        for v in [1.0, 3.0, 100.0] {
            reg.observe("h", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 104.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 104.0 / 3.0).abs() < 1e-9);
        // 1.0 < 2^1 → bucket 1; 3.0 < 2^2 → bucket 2; 100.0 < 2^7 → bucket 7
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[7], 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merge_sums_counters_and_folds_histograms() {
        let a = Registry::new();
        a.incr("shared", 1);
        a.incr("only_a", 10);
        a.observe("h", 2.0);
        let b = Registry::new();
        b.incr("shared", 2);
        b.incr("only_b", 20);
        b.observe("h", 8.0);
        b.observe("g", 1.0);

        a.merge(&b.snapshot());
        let merged = a.snapshot();
        assert_eq!(merged.counter("shared"), 3);
        assert_eq!(merged.counter("only_a"), 10);
        assert_eq!(merged.counter("only_b"), 20);
        let h = &merged.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 10.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 8.0);
        assert_eq!(merged.histograms["g"].count, 1);
    }

    #[test]
    fn merge_is_associative_on_counters() {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) — the property the per-answer
        // report aggregation relies on
        let mk = |v: u64| {
            let r = Registry::new();
            r.incr("x", v);
            r.snapshot()
        };
        let (a, b, c) = (mk(1), mk(2), mk(4));
        let left = Registry::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        let bc = Registry::new();
        bc.merge(&b);
        bc.merge(&c);
        let right = Registry::new();
        right.merge(&a);
        right.merge(&bc.snapshot());
        assert_eq!(left.snapshot(), right.snapshot());
    }

    #[test]
    fn quantile_estimates_are_octave_accurate_and_clamped() {
        let reg = Registry::new();
        for v in 1..=100 {
            reg.observe("h", f64::from(v));
        }
        let h = &reg.snapshot().histograms["h"];
        // within one power-of-two bucket of the true value
        let p50 = h.quantile(0.5);
        assert!((32.0..=64.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((64.0..=100.0).contains(&p99), "p99 {p99}");
        // clamped to observed extremes
        assert!(h.quantile(0.0) >= 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        // empty histogram
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; 32],
        };
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn snapshot_json_is_stable_and_escaped() {
        let reg = Registry::new();
        reg.incr("a\"b", 1);
        reg.observe("h", 1.5);
        let s = reg.snapshot().to_json();
        assert!(s.starts_with("{\"counters\":{"));
        assert!(s.contains("\"a\\\"b\":1"));
        assert!(s.contains("\"mean\":1.5"));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..100 {
                        reg.incr("n", 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("n"), 400);
    }
}
