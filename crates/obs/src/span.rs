//! Hierarchical spans with monotonic timings.
//!
//! A [`Tracer`] owns a [`Recorder`] and a
//! [`Registry`]; [`Tracer::span`] opens a root [`Span`], [`Span::child`]
//! nests, and finishing a root (explicitly via [`Span::finish`] or
//! implicitly on drop) delivers the whole [`SpanRecord`] tree to the
//! recorder. All timestamps come from [`std::time::Instant`], so they are
//! monotonic: a child's window always sits inside its parent's.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;
use crate::metrics::Registry;
use crate::record::{MemoryRecorder, Recorder};

/// A span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (scores, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string (routes, modes, names).
    Str(String),
}

impl AttrValue {
    /// The value as a `u64`, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `&str`, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn push_json(&self, out: &mut String) {
        match self {
            AttrValue::U64(v) => out.push_str(&v.to_string()),
            AttrValue::I64(v) => out.push_str(&v.to_string()),
            AttrValue::F64(v) => json::push_f64(out, *v),
            AttrValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            AttrValue::Str(s) => json::push_str(out, s),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Creates root spans and owns the metrics [`Registry`] that every span
/// (and its children) report counters into.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

struct TracerShared {
    epoch: Instant,
    recorder: Arc<dyn Recorder>,
    registry: Registry,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer delivering finished root spans to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Tracer {
        Tracer {
            shared: Arc::new(TracerShared {
                epoch: Instant::now(),
                recorder,
                registry: Registry::new(),
            }),
        }
    }

    /// A tracer plus a handle to its in-memory recorder — the usual
    /// setup for tests and per-answer profiles.
    pub fn in_memory() -> (Tracer, Arc<MemoryRecorder>) {
        let recorder = Arc::new(MemoryRecorder::new());
        (
            Tracer::new(Arc::clone(&recorder) as Arc<dyn Recorder>),
            recorder,
        )
    }

    /// Open a root span.
    pub fn span(&self, name: &str) -> Span {
        Span {
            inner: Some(Arc::new(SpanInner {
                name: name.to_string(),
                tracer: Arc::clone(&self.shared),
                parent: None,
                start: Instant::now(),
                start_ns: self.shared.epoch.elapsed().as_nanos() as u64,
                state: Mutex::new(SpanState::default()),
            })),
        }
    }

    /// The tracer's metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }
}

#[derive(Debug, Default)]
struct SpanState {
    attrs: Vec<(String, AttrValue)>,
    children: Vec<SpanRecord>,
    finished: bool,
}

struct SpanInner {
    name: String,
    tracer: Arc<TracerShared>,
    parent: Option<Arc<SpanInner>>,
    start: Instant,
    /// Nanoseconds since the tracer's epoch — a monotonic clock shared by
    /// every span of one tracer, so sibling ordering is meaningful.
    start_ns: u64,
    state: Mutex<SpanState>,
}

impl SpanInner {
    fn finish(self: &Arc<Self>) {
        let record = {
            let mut state = self.state.lock().expect("span poisoned");
            if state.finished {
                return;
            }
            state.finished = true;
            SpanRecord {
                name: self.name.clone(),
                start_ns: self.start_ns,
                elapsed_ns: self.start.elapsed().as_nanos() as u64,
                attrs: std::mem::take(&mut state.attrs),
                children: std::mem::take(&mut state.children),
            }
        };
        match &self.parent {
            Some(parent) => parent
                .state
                .lock()
                .expect("span poisoned")
                .children
                .push(record),
            None => self.tracer.recorder.record(&record),
        }
    }
}

/// A live span handle.
///
/// Dropping the handle finishes the span: children fold their records
/// into the parent, roots deliver the full tree to the tracer's recorder.
/// Finish children before their parent (natural with lexical scoping) —
/// a child finished after its parent is silently dropped.
///
/// The [`Span::disabled`] handle makes every operation a no-op, so
/// instrumented code needs no `if observing { … }` branches.
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<SpanInner>>,
}

impl std::fmt::Debug for SpanInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanInner")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl Span {
    /// The no-op span: every method does nothing, cheaply.
    ///
    /// ```
    /// let span = obs::Span::disabled();
    /// span.set("ignored", 1u64); // no-op
    /// assert!(!span.enabled());
    /// ```
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this handle actually records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a child span (disabled parent ⇒ disabled child).
    pub fn child(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span::disabled();
        };
        Span {
            inner: Some(Arc::new(SpanInner {
                name: name.to_string(),
                tracer: Arc::clone(&inner.tracer),
                parent: Some(Arc::clone(inner)),
                start: Instant::now(),
                start_ns: inner.tracer.epoch.elapsed().as_nanos() as u64,
                state: Mutex::new(SpanState::default()),
            })),
        }
    }

    /// Set an attribute, replacing any previous value under the key.
    pub fn set(&self, key: &str, value: impl Into<AttrValue>) {
        let Some(inner) = &self.inner else { return };
        let value = value.into();
        let mut state = inner.state.lock().expect("span poisoned");
        match state.attrs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => state.attrs.push((key.to_string(), value)),
        }
    }

    /// Add `n` to a numeric attribute (creating it at zero) — for
    /// accumulating work across repeated operations under one span.
    pub fn add(&self, key: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state.lock().expect("span poisoned");
        match state.attrs.iter_mut().find(|(k, _)| k == key) {
            Some((_, AttrValue::U64(v))) => *v += n,
            Some((_, v)) => *v = AttrValue::U64(n),
            None => state.attrs.push((key.to_string(), AttrValue::U64(n))),
        }
    }

    /// Bump a named counter in the tracer's [`Registry`].
    pub fn count(&self, counter: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.tracer.registry.incr(counter, n);
        }
    }

    /// Record one observation into a named histogram in the tracer's
    /// [`Registry`].
    pub fn observe(&self, histogram: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.tracer.registry.observe(histogram, value);
        }
    }

    /// Finish explicitly (equivalent to dropping the handle).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.finish();
        }
    }
}

/// The immutable record of one finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (dotted, e.g. `"sparql.execute"`).
    pub name: String,
    /// Start time in nanoseconds since the tracer's epoch (monotonic).
    pub start_ns: u64,
    /// Wall time from open to finish, in nanoseconds.
    pub elapsed_ns: u64,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
    /// Finished children, in finish order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An attribute as `u64`, when present and numeric.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(AttrValue::as_u64)
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Render the span tree as one JSON object:
    /// `{"name", "start_ns", "elapsed_ns", "attrs": {...}, "children": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.push_json(&mut out);
        out
    }

    fn push_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        json::push_str(out, &self.name);
        out.push_str(",\"start_ns\":");
        out.push_str(&self.start_ns.to_string());
        out.push_str(",\"elapsed_ns\":");
        out.push_str(&self.elapsed_ns.to_string());
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(out, k);
            out.push(':');
            v.push_json(out);
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.push_json(out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_produces_a_tree_in_finish_order() {
        let (tracer, recorder) = Tracer::in_memory();
        let root = tracer.span("root");
        {
            let a = root.child("a");
            let aa = a.child("aa");
            aa.finish();
            a.finish();
        }
        root.child("b").finish();
        root.finish();
        let spans = recorder.take();
        assert_eq!(spans.len(), 1);
        let root = &spans[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "a");
        assert_eq!(root.children[0].children[0].name, "aa");
        assert_eq!(root.children[1].name, "b");
        assert!(root.find("aa").is_some());
        assert!(root.find("zz").is_none());
    }

    #[test]
    fn timings_are_monotonic_and_nested() {
        let (tracer, recorder) = Tracer::in_memory();
        let root = tracer.span("root");
        let first = root.child("first");
        std::thread::sleep(std::time::Duration::from_millis(2));
        first.finish();
        let second = root.child("second");
        second.finish();
        root.finish();
        let root = recorder.take().pop().expect("one root");
        let (first, second) = (&root.children[0], &root.children[1]);
        // children start no earlier than the parent
        assert!(first.start_ns >= root.start_ns);
        // sequential siblings start in order: second after first ended
        assert!(second.start_ns >= first.start_ns + first.elapsed_ns);
        // a child's window fits inside the parent's
        assert!(first.elapsed_ns <= root.elapsed_ns);
        assert!(
            first.start_ns + first.elapsed_ns <= root.start_ns + root.elapsed_ns,
            "child must end before its parent"
        );
        // the sleep really showed up
        assert!(first.elapsed_ns >= 1_000_000);
    }

    #[test]
    fn attrs_set_add_and_counters() {
        let (tracer, recorder) = Tracer::in_memory();
        let span = tracer.span("s");
        span.set("route", "kg");
        span.set("route", "llm"); // replaces
        span.add("rows", 2);
        span.add("rows", 3); // accumulates
        span.count("turns", 1);
        span.observe("latency_ms", 1.25);
        span.finish();
        let rec = recorder.take().pop().unwrap();
        assert_eq!(rec.attr("route").and_then(AttrValue::as_str), Some("llm"));
        assert_eq!(rec.attr_u64("rows"), Some(5));
        assert_eq!(tracer.registry().counter("turns"), 1);
        assert_eq!(
            tracer.registry().snapshot().histograms["latency_ms"].count,
            1
        );
    }

    #[test]
    fn drop_finishes_and_double_finish_is_harmless() {
        let (tracer, recorder) = Tracer::in_memory();
        {
            let root = tracer.span("implicit");
            let _child = root.child("c");
            // both dropped here, child first (reverse declaration order)
        }
        let spans = recorder.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].children.len(), 1);
    }

    #[test]
    fn disabled_spans_do_nothing() {
        let span = Span::disabled();
        assert!(!span.enabled());
        let child = span.child("x");
        assert!(!child.enabled());
        child.set("a", 1u64);
        child.add("b", 1);
        child.count("c", 1);
        child.observe("d", 1.0);
        child.finish();
        span.finish();
    }

    #[test]
    fn span_record_json_round_trips_structure() {
        let (tracer, recorder) = Tracer::in_memory();
        let root = tracer.span("r\"t");
        root.set("mode", "naive");
        root.set("n", 3u64);
        root.set("frac", 0.5);
        root.set("flag", true);
        root.child("c").finish();
        root.finish();
        let json = recorder.take().pop().unwrap().to_json();
        assert!(json.starts_with("{\"name\":\"r\\\"t\""));
        assert!(json.contains("\"mode\":\"naive\""));
        assert!(json.contains("\"n\":3"));
        assert!(json.contains("\"frac\":0.5"));
        assert!(json.contains("\"flag\":true"));
        assert!(json.contains("\"children\":[{\"name\":\"c\""));
    }
}
