//! A minimal JSON emitter, so the crate stays dependency-free.
//!
//! Only what the recorders need: string escaping and number formatting
//! that always produces valid JSON (non-finite floats become `null`).

use std::fmt::Write;

/// Append `s` as a JSON string (with surrounding quotes) to `out`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float as a JSON number (`null` when non-finite, which JSON
/// cannot represent).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
