//! # kgreason — KG reasoning (paper §2.3)
//!
//! Four reasoning engines over the shared substrates:
//!
//! * [`rules`] — a datalog-lite forward-chaining rule engine plus the
//!   RDFS/OWL-lite entailment rule set derived from a [`kg::Ontology`]
//!   (subclass/subproperty propagation, domain/range typing, symmetric /
//!   transitive / inverse closure). This is the symbolic baseline the
//!   survey's LLM-reasoning systems are compared against.
//! * [`fol`] — first-order-logic query answering over KGs in the LARK
//!   \[21\] style: the query shapes (1p/2p/3p chains, intersections,
//!   unions), an exact symbolic evaluator for ground truth, and an
//!   LLM-driven chain evaluator that decomposes the query and answers each
//!   hop from a verbalized subgraph context.
//! * [`rog`] — Reasoning-on-Graphs \[62\]: planning (relation paths from
//!   the question), retrieval (faithful path execution on the KG), and
//!   reasoning (LLM answer selection), returning the reasoning path for
//!   faithfulness checks.
//! * [`kggpt`] — KG-GPT \[48\]: sentence segmentation → graph retrieval →
//!   inference, for claim verification over KGs.

pub mod fol;
pub mod kggpt;
pub mod rog;
pub mod rules;

pub use fol::{FolQuery, LarkReasoner};
pub use kggpt::KgGpt;
pub use rog::{RogAnswer, RogReasoner};
pub use rules::{entailment_rules, forward_chain, Atom, Rule, TermOrVar};
