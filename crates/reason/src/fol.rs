//! First-order-logic query answering (LARK-style, \[21\]).
//!
//! The standard FOL-over-KG query shapes — projection chains (1p/2p/3p),
//! intersections (2i/3i and the ip/pi hybrids), unions (2u/up) — with an
//! exact symbolic evaluator (ground truth) and [`LarkReasoner`], which
//! answers the same queries the way LARK does: retrieve the relevant
//! subgraph, verbalize it into the LLM's context, decompose the query into
//! chain prompts, and resolve each hop with the LLM.

use std::collections::BTreeSet;

use kg::analysis::khop_subgraph;
use kg::term::Sym;
use kg::Graph;
use slm::Slm;

/// A FOL query over a KG.
#[derive(Debug, Clone, PartialEq)]
pub enum FolQuery {
    /// A relation chain from an anchor entity: `r₁/r₂/…` (1p, 2p, 3p).
    Path {
        /// The anchor (grounded) entity.
        anchor: Sym,
        /// Relation ids to follow in order.
        relations: Vec<Sym>,
    },
    /// Intersection of sub-queries (2i, 3i, pi, ip).
    And(Vec<FolQuery>),
    /// Union of sub-queries (2u, up).
    Or(Vec<FolQuery>),
}

impl FolQuery {
    /// The query's shape name (1p/2p/3p/2i/3i/2u/…) for reports.
    pub fn shape(&self) -> String {
        match self {
            FolQuery::Path { relations, .. } => format!("{}p", relations.len()),
            FolQuery::And(subs) => format!("{}i", subs.len()),
            FolQuery::Or(subs) => format!("{}u", subs.len()),
        }
    }

    /// Exact symbolic answer set.
    pub fn answers(&self, graph: &Graph) -> BTreeSet<Sym> {
        match self {
            FolQuery::Path { anchor, relations } => {
                let mut frontier = BTreeSet::from([*anchor]);
                for &r in relations {
                    let mut next = BTreeSet::new();
                    for &n in &frontier {
                        for o in graph.objects(n, r) {
                            next.insert(o);
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                frontier
            }
            FolQuery::And(subs) => {
                let mut sets = subs.iter().map(|q| q.answers(graph));
                match sets.next() {
                    Some(first) => {
                        sets.fold(first, |acc, s| acc.intersection(&s).copied().collect())
                    }
                    None => BTreeSet::new(),
                }
            }
            FolQuery::Or(subs) => {
                let mut out = BTreeSet::new();
                for q in subs {
                    out.extend(q.answers(graph));
                }
                out
            }
        }
    }

    /// All anchors mentioned by the query.
    pub fn anchors(&self) -> Vec<Sym> {
        match self {
            FolQuery::Path { anchor, .. } => vec![*anchor],
            FolQuery::And(subs) | FolQuery::Or(subs) => {
                subs.iter().flat_map(|q| q.anchors()).collect()
            }
        }
    }
}

/// LARK-style LLM reasoner: subgraph retrieval + chain decomposition.
pub struct LarkReasoner<'a> {
    graph: &'a Graph,
    slm: &'a Slm,
    /// Hops of context to retrieve around each anchor.
    pub context_hops: usize,
}

impl<'a> LarkReasoner<'a> {
    /// Build over a graph and an LM.
    pub fn new(graph: &'a Graph, slm: &'a Slm) -> Self {
        LarkReasoner {
            graph,
            slm,
            context_hops: 2,
        }
    }

    /// Answer a query via the LLM, returning the predicted answer set
    /// (entity ids resolved by label matching).
    pub fn answer(&self, query: &FolQuery) -> BTreeSet<Sym> {
        let context = self.context_for(query);
        // the retrieval index is constant per query: build it once
        let index = slm::EvidenceIndex::from_sentences(context.iter().map(String::as_str));
        self.eval(query, &index)
    }

    fn context_for(&self, query: &FolQuery) -> Vec<String> {
        // verbalize the k-hop subgraph around every anchor
        let mut sentences = BTreeSet::new();
        for anchor in query.anchors() {
            for t in khop_subgraph(self.graph, anchor, self.context_hops) {
                if !self.graph.resolve(t.o).is_iri() {
                    continue;
                }
                let p_iri = match self.graph.resolve(t.p).as_iri() {
                    Some(i) => i,
                    None => continue,
                };
                if !p_iri.starts_with(kg::namespace::SYNTH_VOCAB) {
                    continue;
                }
                sentences.insert(format!(
                    "{} {} {}",
                    self.graph.display_name(t.s),
                    kg::namespace::humanize(kg::namespace::local_name(p_iri)),
                    self.graph.display_name(t.o)
                ));
            }
        }
        sentences.into_iter().collect()
    }

    fn eval(&self, query: &FolQuery, index: &slm::EvidenceIndex) -> BTreeSet<Sym> {
        match query {
            FolQuery::Path { anchor, relations } => {
                let mut frontier = BTreeSet::from([*anchor]);
                for &r in relations {
                    let phrase =
                        kg::namespace::humanize(kg::namespace::local_name(self.graph.label(r)));
                    let mut next = BTreeSet::new();
                    for &n in &frontier {
                        let question = format!(
                            "Which entities are {} of {}?",
                            phrase,
                            self.graph.display_name(n)
                        );
                        // chain prompt: ask the LM against the retrieved
                        // context, then link every answered name back
                        for hit in self.candidates(&question, index) {
                            next.insert(hit);
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                frontier
            }
            FolQuery::And(subs) => {
                let mut sets = subs.iter().map(|q| self.eval(q, index));
                match sets.next() {
                    Some(first) => {
                        sets.fold(first, |acc, s| acc.intersection(&s).copied().collect())
                    }
                    None => BTreeSet::new(),
                }
            }
            FolQuery::Or(subs) => {
                let mut out = BTreeSet::new();
                for q in subs {
                    out.extend(self.eval(q, index));
                }
                out
            }
        }
    }

    /// All entities whose context sentences answer the question: retrieve
    /// matching context sentences, read entity names off them, link back.
    fn candidates(&self, question: &str, index: &slm::EvidenceIndex) -> Vec<Sym> {
        let hits = index.retrieve(question, 8);
        let mut out = Vec::new();
        for hit in hits {
            if hit.score < 0.5 {
                continue;
            }
            let a = self.slm.answer(question, std::slice::from_ref(&hit.text));
            if !a.is_answered() || a.hallucinated {
                continue;
            }
            if let Some(e) = self.link(&a.text) {
                out.push(e);
            }
        }
        out
    }

    fn link(&self, name: &str) -> Option<Sym> {
        self.graph
            .entities()
            .into_iter()
            .find(|&e| self.graph.display_name(e).eq_ignore_ascii_case(name.trim()))
    }
}

/// Generate a benchmark of FOL queries with non-empty symbolic answers.
pub fn generate_queries(
    graph: &Graph,
    relations: &[Sym],
    seed: u64,
    per_shape: usize,
) -> Vec<FolQuery> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entities = graph.entities();
    entities.shuffle(&mut rng);
    let mut out = Vec::new();
    // chains of length 1..=3
    for hops in 1..=3usize {
        let mut found = 0;
        for &anchor in &entities {
            if found >= per_shape {
                break;
            }
            // greedy: find a relation sequence with non-empty answers
            let mut chain = Vec::new();
            let mut frontier = BTreeSet::from([anchor]);
            for _ in 0..hops {
                let mut rels: Vec<Sym> = relations.to_vec();
                rels.shuffle(&mut rng);
                let mut advanced = false;
                for r in rels {
                    let next: BTreeSet<Sym> = frontier
                        .iter()
                        .flat_map(|&n| graph.objects(n, r))
                        .filter(|&o| graph.resolve(o).is_iri())
                        .collect();
                    if !next.is_empty() {
                        chain.push(r);
                        frontier = next;
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
            if chain.len() == hops {
                out.push(FolQuery::Path {
                    anchor,
                    relations: chain,
                });
                found += 1;
            }
        }
    }
    // intersections: two 1p queries sharing an answer
    let paths: Vec<FolQuery> = out
        .iter()
        .filter(|q| matches!(q, FolQuery::Path { relations, .. } if relations.len() == 1))
        .cloned()
        .collect();
    let mut inters = Vec::new();
    'outer: for (i, a) in paths.iter().enumerate() {
        for b in paths.iter().skip(i + 1) {
            if inters.len() >= per_shape {
                break 'outer;
            }
            let q = FolQuery::And(vec![a.clone(), b.clone()]);
            if !q.answers(graph).is_empty() {
                inters.push(q);
            }
        }
    }
    out.extend(inters);
    // unions of two 1p queries
    let mut unions = Vec::new();
    for pair in paths.chunks(2).take(per_shape) {
        if let [a, b] = pair {
            unions.push(FolQuery::Or(vec![a.clone(), b.clone()]));
        }
    }
    out.extend(unions);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};
    use kgextract::testgen::{corpus_sentences, entity_surface_forms};

    fn fixture() -> (kg::synth::SynthKg, Slm) {
        let kg = movies(51, Scale::tiny());
        let corpus = corpus_sentences(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        (kg, slm)
    }

    fn rel(g: &Graph, name: &str) -> Sym {
        g.pool()
            .get_iri(&format!("{}{}", kg::namespace::SYNTH_VOCAB, name))
            .expect("relation exists")
    }

    #[test]
    fn symbolic_path_answers() {
        let (kg, _) = fixture();
        let g = &kg.graph;
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let q = FolQuery::Path {
            anchor: film,
            relations: vec![rel(g, "directedBy")],
        };
        let ans = q.answers(g);
        assert_eq!(ans.len(), 1, "directedBy is functional");
        assert_eq!(q.shape(), "1p");
    }

    #[test]
    fn intersection_and_union_semantics() {
        let (kg, _) = fixture();
        let g = &kg.graph;
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let p1 = FolQuery::Path {
            anchor: film,
            relations: vec![rel(g, "starring")],
        };
        let p2 = FolQuery::Path {
            anchor: film,
            relations: vec![rel(g, "directedBy")],
        };
        let and = FolQuery::And(vec![p1.clone(), p2.clone()]).answers(g);
        let or = FolQuery::Or(vec![p1.clone(), p2.clone()]).answers(g);
        let a1 = p1.answers(g);
        let a2 = p2.answers(g);
        assert_eq!(or.len(), a1.union(&a2).count());
        assert_eq!(and.len(), a1.intersection(&a2).count());
    }

    #[test]
    fn generated_queries_have_answers() {
        let (kg, _) = fixture();
        let g = &kg.graph;
        let rels: Vec<Sym> = g
            .predicates()
            .into_iter()
            .map(|(p, _)| p)
            .filter(|&p| {
                g.resolve(p)
                    .as_iri()
                    .is_some_and(|i| i.starts_with(kg::namespace::SYNTH_VOCAB))
            })
            .collect();
        let queries = generate_queries(g, &rels, 3, 3);
        assert!(queries.len() >= 8, "{}", queries.len());
        for q in &queries {
            assert!(!q.answers(g).is_empty(), "{q:?} must be satisfiable");
        }
        // deterministic
        let again = generate_queries(g, &rels, 3, 3);
        assert_eq!(queries, again);
    }

    #[test]
    fn lark_answers_one_hop_queries() {
        let (kg, slm) = fixture();
        let g = &kg.graph;
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let q = FolQuery::Path {
            anchor: film,
            relations: vec![rel(g, "directedBy")],
        };
        let truth = q.answers(g);
        let lark = LarkReasoner::new(g, &slm);
        let predicted = lark.answer(&q);
        // at minimum the true director should be among the predictions
        assert!(
            !predicted.is_disjoint(&truth),
            "LARK missed the answer: predicted {predicted:?}, truth {truth:?}"
        );
    }
}
