//! Reasoning on Graphs (RoG, \[62\]): planning – retrieval – reasoning.
//!
//! 1. **Planning** — propose relation paths whose labels are similar to
//!    the question (the "faithful plan" grounded in the KG's schema);
//! 2. **Retrieval** — execute the plans from the anchor entity, keeping
//!    only paths that exist in the KG;
//! 3. **Reasoning** — let the LM choose among the retrieved endpoints,
//!    with the path retained as the interpretable explanation.

use kg::term::Sym;
use kg::Graph;
use slm::Slm;

/// An answer with its faithful reasoning path.
#[derive(Debug, Clone, PartialEq)]
pub struct RogAnswer {
    /// The predicted answer entity.
    pub answer: Sym,
    /// The relation path that reached it.
    pub path: Vec<Sym>,
    /// Verbalized explanation.
    pub explanation: String,
    /// Ranking score.
    pub score: f64,
}

/// The RoG pipeline.
pub struct RogReasoner<'a> {
    graph: &'a Graph,
    slm: &'a Slm,
    /// Maximum plan length.
    pub max_hops: usize,
    /// Number of plans to keep.
    pub beam: usize,
}

impl<'a> RogReasoner<'a> {
    /// Build over a graph and an LM.
    pub fn new(graph: &'a Graph, slm: &'a Slm) -> Self {
        RogReasoner {
            graph,
            slm,
            max_hops: 2,
            beam: 4,
        }
    }

    /// Plan: score every relation (and 2-hop relation pair) against the
    /// question; return the top `beam` candidate relation paths.
    pub fn plan(&self, question: &str) -> Vec<Vec<Sym>> {
        let relations: Vec<Sym> = self
            .graph
            .predicates()
            .into_iter()
            .map(|(p, _)| p)
            .filter(|&p| {
                self.graph
                    .resolve(p)
                    .as_iri()
                    .is_some_and(|i| i.starts_with(kg::namespace::SYNTH_VOCAB))
            })
            .collect();
        let phrase =
            |r: Sym| kg::namespace::humanize(kg::namespace::local_name(self.graph.label(r)));
        let mut plans: Vec<(f32, Vec<Sym>)> = Vec::new();
        for &r in &relations {
            plans.push((self.slm.similarity(question, &phrase(r)), vec![r]));
        }
        if self.max_hops >= 2 {
            for &r1 in &relations {
                for &r2 in &relations {
                    let joint = format!("{} {}", phrase(r1), phrase(r2));
                    let sim = self.slm.similarity(question, &joint);
                    plans.push((sim * 0.9, vec![r1, r2])); // mild length penalty
                }
            }
        }
        plans.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        plans.truncate(self.beam);
        plans.into_iter().map(|(_, p)| p).collect()
    }

    /// Retrieve: execute a plan from the anchor, returning `(endpoint,
    /// grounded path)` pairs that actually exist in the KG.
    pub fn retrieve(&self, anchor: Sym, plan: &[Sym]) -> Vec<(Sym, Vec<Sym>)> {
        let mut frontier: Vec<(Sym, Vec<Sym>)> = vec![(anchor, Vec::new())];
        for &r in plan {
            let mut next = Vec::new();
            for (n, path) in &frontier {
                for o in self.graph.objects(*n, r) {
                    if self.graph.resolve(o).is_iri() {
                        let mut p = path.clone();
                        p.push(r);
                        next.push((o, p));
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier
    }

    /// Full pipeline: answer a question about an anchor entity.
    pub fn answer(&self, question: &str, anchor: Sym) -> Vec<RogAnswer> {
        let mut out: Vec<RogAnswer> = Vec::new();
        for plan in self.plan(question) {
            for (endpoint, path) in self.retrieve(anchor, &plan) {
                let explanation = self.explain(anchor, &path, endpoint);
                // reasoning: the LM scores the verbalized path as an answer
                // to the question
                let score = f64::from(self.slm.similarity(question, &explanation));
                if let Some(existing) = out.iter_mut().find(|a| a.answer == endpoint) {
                    if score > existing.score {
                        existing.score = score;
                        existing.path = path;
                        existing.explanation = explanation;
                    }
                } else {
                    out.push(RogAnswer {
                        answer: endpoint,
                        path,
                        explanation,
                        score,
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.answer.cmp(&b.answer))
        });
        out
    }

    fn explain(&self, anchor: Sym, path: &[Sym], endpoint: Sym) -> String {
        let mut s = self.graph.display_name(anchor);
        for &r in path {
            s.push(' ');
            s.push_str(&kg::namespace::humanize(kg::namespace::local_name(
                self.graph.label(r),
            )));
        }
        s.push(' ');
        s.push_str(&self.graph.display_name(endpoint));
        s
    }

    /// Check that an answer's path is *faithful*: every edge exists.
    pub fn is_faithful(&self, anchor: Sym, answer: &RogAnswer) -> bool {
        let mut frontier = vec![anchor];
        for &r in &answer.path {
            let mut next = Vec::new();
            for n in &frontier {
                next.extend(self.graph.objects(*n, r));
            }
            if next.is_empty() {
                return false;
            }
            frontier = next;
        }
        frontier.contains(&answer.answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};
    use kgextract::testgen::{corpus_sentences, entity_surface_forms};

    fn fixture() -> (kg::synth::SynthKg, Slm) {
        let kg = movies(61, Scale::tiny());
        let corpus = corpus_sentences(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        (kg, slm)
    }

    #[test]
    fn planning_surfaces_the_relevant_relation() {
        let (kg, slm) = fixture();
        let rog = RogReasoner::new(&kg.graph, &slm);
        let plans = rog.plan("who directed this film");
        assert!(!plans.is_empty());
        let has_directed = plans.iter().any(|p| {
            p.iter().any(|&r| {
                kg.graph
                    .resolve(r)
                    .as_iri()
                    .is_some_and(|i| i.ends_with("directedBy"))
            })
        });
        assert!(has_directed, "plans: {plans:?}");
    }

    #[test]
    fn retrieval_only_returns_existing_paths() {
        let (kg, slm) = fixture();
        let g = &kg.graph;
        let rog = RogReasoner::new(g, &slm);
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let directed = g
            .pool()
            .get_iri(&format!("{}directedBy", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let hits = rog.retrieve(film, &[directed]);
        assert_eq!(hits.len(), 1);
        assert!(g.contains(film, directed, hits[0].0));
    }

    #[test]
    fn answers_are_faithful_and_ranked() {
        let (kg, slm) = fixture();
        let g = &kg.graph;
        let rog = RogReasoner::new(g, &slm);
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        let answers = rog.answer("who directed this film", film);
        assert!(!answers.is_empty());
        for a in &answers {
            assert!(rog.is_faithful(film, a), "unfaithful path {a:?}");
        }
        for w in answers.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // the true director must be among the answers
        let directed = g
            .pool()
            .get_iri(&format!("{}directedBy", kg::namespace::SYNTH_VOCAB))
            .unwrap();
        let truth = g.objects(film, directed)[0];
        assert!(answers.iter().any(|a| a.answer == truth));
    }
}
