//! KG-GPT (\[48\]): sentence segmentation → graph retrieval → inference.
//!
//! A general framework for reasoning over a KG about a natural-language
//! claim: split the claim into clauses, ground each clause in KG triples,
//! then infer an overall verdict.

use kg::Graph;
use slm::task::VerdictLabel;
use slm::Slm;

/// The grounded evidence for one clause.
#[derive(Debug, Clone)]
pub struct ClauseEvidence {
    /// The clause text.
    pub clause: String,
    /// The best-matching verbalized triple, if any.
    pub triple_text: Option<String>,
    /// Match score.
    pub score: f64,
}

/// A KG-GPT verdict for a claim.
#[derive(Debug, Clone)]
pub struct KgGptVerdict {
    /// Overall label.
    pub label: VerdictLabel,
    /// Per-clause grounding.
    pub clauses: Vec<ClauseEvidence>,
}

/// The three-stage KG-GPT pipeline.
pub struct KgGpt<'a> {
    slm: &'a Slm,
    /// Verbalized triples of the graph (the retrieval corpus).
    corpus: Vec<String>,
}

impl<'a> KgGpt<'a> {
    /// Build from a graph (verbalizing its relation triples) and an LM.
    pub fn new(graph: &Graph, slm: &'a Slm) -> Self {
        let mut corpus = Vec::new();
        for t in graph.iter() {
            let Some(p_iri) = graph.resolve(t.p).as_iri() else {
                continue;
            };
            if !p_iri.starts_with(kg::namespace::SYNTH_VOCAB) || !graph.resolve(t.o).is_iri() {
                continue;
            }
            corpus.push(format!(
                "{} {} {}",
                graph.display_name(t.s),
                kg::namespace::humanize(kg::namespace::local_name(p_iri)),
                graph.display_name(t.o)
            ));
        }
        KgGpt { slm, corpus }
    }

    /// Stage 1: segment a claim into clauses (split on conjunctions and
    /// sentence boundaries).
    pub fn segment(&self, claim: &str) -> Vec<String> {
        claim
            .split([',', ';'])
            .flat_map(|part| part.split(" and "))
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// Stage 2: retrieve the best-matching triple for one clause.
    pub fn ground(&self, clause: &str) -> ClauseEvidence {
        let index = slm::EvidenceIndex::from_sentences(self.corpus.iter().map(String::as_str));
        match index.best_evidence(clause) {
            Some(hit) => ClauseEvidence {
                clause: clause.to_string(),
                score: hit.score,
                triple_text: Some(hit.text),
            },
            None => ClauseEvidence {
                clause: clause.to_string(),
                score: 0.0,
                triple_text: None,
            },
        }
    }

    /// Stage 3: infer a verdict for the whole claim: every clause must be
    /// supported (LM verification against its grounded triple); any
    /// refuted clause refutes the claim; otherwise unknown.
    pub fn verify(&self, claim: &str) -> KgGptVerdict {
        let clauses: Vec<ClauseEvidence> =
            self.segment(claim).iter().map(|c| self.ground(c)).collect();
        let mut all_supported = !clauses.is_empty();
        let mut any_refuted = false;
        for c in &clauses {
            let ctx: Vec<String> = c.triple_text.iter().cloned().collect();
            let v = self.slm.verify(&c.clause, &ctx);
            match v.label {
                VerdictLabel::Supported => {}
                VerdictLabel::Refuted => {
                    any_refuted = true;
                    all_supported = false;
                }
                VerdictLabel::Unknown => all_supported = false,
            }
        }
        let label = if all_supported {
            VerdictLabel::Supported
        } else if any_refuted {
            VerdictLabel::Refuted
        } else {
            VerdictLabel::Unknown
        };
        KgGptVerdict { label, clauses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};
    use kgextract::testgen::{annotate_graph, corpus_sentences, entity_surface_forms};

    fn fixture() -> (kg::synth::SynthKg, Slm) {
        let kg = movies(71, Scale::tiny());
        let corpus = corpus_sentences(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        (kg, slm)
    }

    #[test]
    fn segmentation_splits_conjunctions() {
        let (kg, slm) = fixture();
        let gpt = KgGpt::new(&kg.graph, &slm);
        let clauses = gpt.segment("A stars B, and C directed D");
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn true_claims_are_supported() {
        let (kg, slm) = fixture();
        let gpt = KgGpt::new(&kg.graph, &slm);
        let ann = annotate_graph(&kg.graph, &kg.ontology);
        // a single true clause (use the 'is X' verbalization itself)
        let verdict = gpt.verify(&ann[0].text);
        assert_eq!(verdict.label, VerdictLabel::Supported, "{verdict:?}");
    }

    #[test]
    fn compound_true_claims_are_supported() {
        let (kg, slm) = fixture();
        let gpt = KgGpt::new(&kg.graph, &slm);
        let ann = annotate_graph(&kg.graph, &kg.ontology);
        let compound = format!("{}, and {}", ann[0].text, ann[1].text);
        let verdict = gpt.verify(&compound);
        assert_eq!(verdict.label, VerdictLabel::Supported, "{verdict:?}");
        assert_eq!(verdict.clauses.len(), 2);
    }

    #[test]
    fn unknown_claims_are_not_supported() {
        let (kg, slm) = fixture();
        let gpt = KgGpt::new(&kg.graph, &slm);
        let verdict = gpt.verify("the quantum reactor powers the moon base");
        assert_ne!(verdict.label, VerdictLabel::Supported);
    }
}
