//! Datalog-lite forward chaining and ontology entailment rules.

use std::collections::BTreeMap;

use kg::namespace as ns;
use kg::ontology::Ontology;
use kg::store::TriplePattern;
use kg::term::Sym;
use kg::Graph;

/// A position in an atom: a variable (by index) or a constant term id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermOrVar {
    /// Variable, identified by a small index shared across the rule.
    Var(u8),
    /// A constant (interned against the target graph).
    Const(Sym),
}

/// An atom `(s, p, o)` in a rule body or head. The predicate is constant
/// (rules over predicate variables are out of scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atom {
    /// Subject.
    pub s: TermOrVar,
    /// Predicate (constant).
    pub p: Sym,
    /// Object.
    pub o: TermOrVar,
}

/// A Horn rule `head ← body₁ ∧ body₂ ∧ …`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name for reports (e.g. `"rdfs:subClassOf"`).
    pub name: String,
    /// Derived atom.
    pub head: Atom,
    /// Conditions.
    pub body: Vec<Atom>,
}

type Binding = BTreeMap<u8, Sym>;

fn resolve(t: TermOrVar, b: &Binding) -> Option<Sym> {
    match t {
        TermOrVar::Const(s) => Some(s),
        TermOrVar::Var(v) => b.get(&v).copied(),
    }
}

/// Run rules to fixpoint, inserting derived triples into the graph.
/// Returns the number of new triples derived. Naive evaluation with a
/// per-round derivation set — adequate for laptop-scale KGs and simple to
/// verify.
pub fn forward_chain(graph: &mut Graph, rules: &[Rule]) -> usize {
    let mut total = 0usize;
    loop {
        let mut derived: Vec<(Sym, Sym, Sym)> = Vec::new();
        for rule in rules {
            let mut bindings = vec![Binding::new()];
            for atom in &rule.body {
                let mut next = Vec::new();
                for b in &bindings {
                    let pat = TriplePattern {
                        s: resolve(atom.s, b),
                        p: Some(atom.p),
                        o: resolve(atom.o, b),
                    };
                    for m in graph.match_pattern(pat) {
                        let mut nb = b.clone();
                        let mut ok = true;
                        if let TermOrVar::Var(v) = atom.s {
                            match nb.get(&v) {
                                Some(&e) if e != m.s => ok = false,
                                _ => {
                                    nb.insert(v, m.s);
                                }
                            }
                        }
                        if ok {
                            if let TermOrVar::Var(v) = atom.o {
                                match nb.get(&v) {
                                    Some(&e) if e != m.o => ok = false,
                                    _ => {
                                        nb.insert(v, m.o);
                                    }
                                }
                            }
                        }
                        if ok {
                            next.push(nb);
                        }
                    }
                }
                bindings = next;
                if bindings.is_empty() {
                    break;
                }
            }
            for b in &bindings {
                let (Some(s), Some(o)) = (resolve(rule.head.s, b), resolve(rule.head.o, b)) else {
                    continue;
                };
                if !graph.contains(s, rule.head.p, o) {
                    derived.push((s, rule.head.p, o));
                }
            }
        }
        derived.sort_unstable();
        derived.dedup();
        if derived.is_empty() {
            return total;
        }
        for (s, p, o) in derived {
            if graph.insert(s, p, o) {
                total += 1;
            }
        }
    }
}

/// Build the RDFS/OWL-lite entailment rule set for an ontology:
/// * `rdf:type` propagation along `rdfs:subClassOf`,
/// * predicate propagation along `rdfs:subPropertyOf` (from the ontology's
///   declared pairs),
/// * domain / range typing,
/// * symmetric, transitive, and inverse property closure.
pub fn entailment_rules(graph: &mut Graph, onto: &Ontology) -> Vec<Rule> {
    let ty = graph.intern_iri(ns::RDF_TYPE);
    let mut rules = Vec::new();
    // subclass: (x type C) → (x type D) for each declared C ⊑ D
    for (class, _) in onto.classes() {
        for parent in onto.direct_superclasses(class) {
            let c = graph.intern_iri(class);
            let d = graph.intern_iri(parent);
            rules.push(Rule {
                name: format!(
                    "subClassOf({},{})",
                    ns::local_name(class),
                    ns::local_name(parent)
                ),
                head: Atom {
                    s: TermOrVar::Var(0),
                    p: ty,
                    o: TermOrVar::Const(d),
                },
                body: vec![Atom {
                    s: TermOrVar::Var(0),
                    p: ty,
                    o: TermOrVar::Const(c),
                }],
            });
        }
    }
    for (prop, decl) in onto.properties() {
        let p = graph.intern_iri(prop);
        // subproperty propagation
        for sup in onto.superproperties(prop) {
            let sp = graph.intern_iri(sup.as_str());
            rules.push(Rule {
                name: format!("subPropertyOf({})", ns::local_name(prop)),
                head: Atom {
                    s: TermOrVar::Var(0),
                    p: sp,
                    o: TermOrVar::Var(1),
                },
                body: vec![Atom {
                    s: TermOrVar::Var(0),
                    p,
                    o: TermOrVar::Var(1),
                }],
            });
        }
        // domain typing
        if let Some(domain) = &decl.domain {
            let d = graph.intern_iri(domain.as_str());
            rules.push(Rule {
                name: format!("domain({})", ns::local_name(prop)),
                head: Atom {
                    s: TermOrVar::Var(0),
                    p: ty,
                    o: TermOrVar::Const(d),
                },
                body: vec![Atom {
                    s: TermOrVar::Var(0),
                    p,
                    o: TermOrVar::Var(1),
                }],
            });
        }
        // range typing (object-valued only)
        if let (Some(range), false) = (&decl.range, decl.literal_valued) {
            let r = graph.intern_iri(range.as_str());
            rules.push(Rule {
                name: format!("range({})", ns::local_name(prop)),
                head: Atom {
                    s: TermOrVar::Var(1),
                    p: ty,
                    o: TermOrVar::Const(r),
                },
                body: vec![Atom {
                    s: TermOrVar::Var(0),
                    p,
                    o: TermOrVar::Var(1),
                }],
            });
        }
        if decl.traits.symmetric {
            rules.push(Rule {
                name: format!("symmetric({})", ns::local_name(prop)),
                head: Atom {
                    s: TermOrVar::Var(1),
                    p,
                    o: TermOrVar::Var(0),
                },
                body: vec![Atom {
                    s: TermOrVar::Var(0),
                    p,
                    o: TermOrVar::Var(1),
                }],
            });
        }
        if decl.traits.transitive {
            rules.push(Rule {
                name: format!("transitive({})", ns::local_name(prop)),
                head: Atom {
                    s: TermOrVar::Var(0),
                    p,
                    o: TermOrVar::Var(2),
                },
                body: vec![
                    Atom {
                        s: TermOrVar::Var(0),
                        p,
                        o: TermOrVar::Var(1),
                    },
                    Atom {
                        s: TermOrVar::Var(1),
                        p,
                        o: TermOrVar::Var(2),
                    },
                ],
            });
        }
        if let Some(inv) = &decl.inverse_of {
            let ip = graph.intern_iri(inv.as_str());
            rules.push(Rule {
                name: format!("inverseOf({})", ns::local_name(prop)),
                head: Atom {
                    s: TermOrVar::Var(1),
                    p: ip,
                    o: TermOrVar::Var(0),
                },
                body: vec![Atom {
                    s: TermOrVar::Var(0),
                    p,
                    o: TermOrVar::Var(1),
                }],
            });
        }
    }
    rules
}

/// Convenience: materialize all ontology entailments in place; returns the
/// number of derived triples.
pub fn materialize(graph: &mut Graph, onto: &Ontology) -> usize {
    let rules = entailment_rules(graph, onto);
    forward_chain(graph, &rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::ontology::{PropertyDecl, PropertyTraits};

    fn setup() -> (Graph, Ontology) {
        let mut g = Graph::new();
        g.insert_iri("http://e/rex", ns::RDF_TYPE, "http://v/Dog");
        g.insert_iri("http://e/a", "http://v/ancestorOf", "http://e/b");
        g.insert_iri("http://e/b", "http://v/ancestorOf", "http://e/c");
        g.insert_iri("http://e/x", "http://v/marriedTo", "http://e/y");
        g.insert_iri("http://e/p", "http://v/parentOf", "http://e/q");
        let mut o = Ontology::new();
        o.add_subclass("http://v/Dog", "http://v/Animal");
        o.add_subclass("http://v/Animal", "http://v/LivingThing");
        o.add_property(
            "http://v/ancestorOf",
            PropertyDecl {
                traits: PropertyTraits {
                    transitive: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        o.add_property(
            "http://v/marriedTo",
            PropertyDecl {
                traits: PropertyTraits {
                    symmetric: true,
                    ..Default::default()
                },
                domain: Some("http://v/Person".into()),
                range: Some("http://v/Person".into()),
                ..Default::default()
            },
        );
        o.add_property(
            "http://v/parentOf",
            PropertyDecl {
                inverse_of: Some("http://v/childOf".into()),
                ..Default::default()
            },
        );
        (g, o)
    }

    #[test]
    fn subclass_chain_propagates_types() {
        let (mut g, o) = setup();
        materialize(&mut g, &o);
        let rex = g.pool().get_iri("http://e/rex").unwrap();
        let ty = g.pool().get_iri(ns::RDF_TYPE).unwrap();
        let animal = g.pool().get_iri("http://v/Animal").unwrap();
        let living = g.pool().get_iri("http://v/LivingThing").unwrap();
        assert!(g.contains(rex, ty, animal));
        assert!(g.contains(rex, ty, living));
    }

    #[test]
    fn transitive_closure_derived() {
        let (mut g, o) = setup();
        materialize(&mut g, &o);
        let a = g.pool().get_iri("http://e/a").unwrap();
        let c = g.pool().get_iri("http://e/c").unwrap();
        let anc = g.pool().get_iri("http://v/ancestorOf").unwrap();
        assert!(g.contains(a, anc, c));
    }

    #[test]
    fn symmetric_and_inverse_derived() {
        let (mut g, o) = setup();
        materialize(&mut g, &o);
        let x = g.pool().get_iri("http://e/x").unwrap();
        let y = g.pool().get_iri("http://e/y").unwrap();
        let m = g.pool().get_iri("http://v/marriedTo").unwrap();
        assert!(g.contains(y, m, x));
        let q = g.pool().get_iri("http://e/q").unwrap();
        let p = g.pool().get_iri("http://e/p").unwrap();
        let child = g.pool().get_iri("http://v/childOf").unwrap();
        assert!(g.contains(q, child, p));
    }

    #[test]
    fn domain_range_typing_derived() {
        let (mut g, o) = setup();
        materialize(&mut g, &o);
        let x = g.pool().get_iri("http://e/x").unwrap();
        let ty = g.pool().get_iri(ns::RDF_TYPE).unwrap();
        let person = g.pool().get_iri("http://v/Person").unwrap();
        assert!(g.contains(x, ty, person));
    }

    #[test]
    fn fixpoint_terminates_and_is_idempotent() {
        let (mut g, o) = setup();
        let first = materialize(&mut g, &o);
        assert!(first > 0);
        let second = materialize(&mut g, &o);
        assert_eq!(second, 0, "second materialization must derive nothing");
    }

    #[test]
    fn custom_rule_with_join_body() {
        // grandparent(x,z) ← parentOf(x,y) ∧ parentOf(y,z)
        let mut g = Graph::new();
        g.insert_iri("http://e/a", "http://v/parentOf", "http://e/b");
        g.insert_iri("http://e/b", "http://v/parentOf", "http://e/c");
        let p = g.pool().get_iri("http://v/parentOf").unwrap();
        let gp = g.intern_iri("http://v/grandparentOf");
        let rule = Rule {
            name: "grandparent".into(),
            head: Atom {
                s: TermOrVar::Var(0),
                p: gp,
                o: TermOrVar::Var(2),
            },
            body: vec![
                Atom {
                    s: TermOrVar::Var(0),
                    p,
                    o: TermOrVar::Var(1),
                },
                Atom {
                    s: TermOrVar::Var(1),
                    p,
                    o: TermOrVar::Var(2),
                },
            ],
        };
        let n = forward_chain(&mut g, &[rule]);
        assert_eq!(n, 1);
        let a = g.pool().get_iri("http://e/a").unwrap();
        let c = g.pool().get_iri("http://e/c").unwrap();
        assert!(g.contains(a, gp, c));
    }
}
