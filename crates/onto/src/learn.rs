//! The LLMs4OL-style end-to-end ontology learning pipeline (§2.1.1, \[4\]):
//! corpus → concepts → taxonomy → properties → [`kg::Ontology`], with
//! evaluation against a gold schema.

use kg::namespace as ns;
use kg::ontology::{Ontology, PropertyDecl};
use slm::Slm;

use crate::concept::{extract_concepts, Concept};
use crate::property::identify_properties;
use crate::taxonomy::induce_taxonomy;

/// The result of ontology learning.
#[derive(Debug)]
pub struct LearnedOntology {
    /// The induced schema.
    pub ontology: Ontology,
    /// The concepts it was built from (with instance evidence).
    pub concepts: Vec<Concept>,
}

/// Learn an ontology from corpus sentences.
pub fn learn_ontology(slm: &Slm, corpus: &[String], min_support: usize) -> LearnedOntology {
    let concepts = extract_concepts(slm, corpus, min_support);
    let edges = induce_taxonomy(&concepts, corpus, 0.8);
    let properties = identify_properties(slm, corpus, min_support);

    let mut onto = Ontology::new();
    let iri_of = |label: &str| format!("{}{}", ns::SYNTH_VOCAB, ns::slug(label));
    for c in &concepts {
        onto.add_labeled_class(iri_of(&c.label), c.label.clone());
    }
    for e in &edges {
        onto.add_subclass(iri_of(&e.child), iri_of(&e.parent));
    }
    for p in &properties {
        let iri = format!("{}{}", ns::SYNTH_VOCAB, camel(&p.phrase));
        onto.add_property(
            iri,
            PropertyDecl {
                label: Some(p.phrase.clone()),
                ..Default::default()
            },
        );
    }
    LearnedOntology {
        ontology: onto,
        concepts,
    }
}

/// Scores comparing a learned ontology against a gold one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OntologyScores {
    /// F1 on class labels.
    pub class_f1: f64,
    /// F1 on subclass edges (by label pairs).
    pub subsumption_f1: f64,
    /// F1 on property labels.
    pub property_f1: f64,
}

/// Evaluate a learned ontology against gold (label-level comparison, so
/// IRI minting differences don't matter).
pub fn evaluate_ontology(learned: &Ontology, gold: &Ontology) -> OntologyScores {
    let classes = |o: &Ontology| -> Vec<String> {
        o.classes()
            .map(|(iri, d)| label_or_local(d.label.as_deref(), iri))
            .collect()
    };
    let subs = |o: &Ontology| -> Vec<(String, String)> {
        let mut v = Vec::new();
        for (iri, d) in o.classes() {
            let child = label_or_local(d.label.as_deref(), iri);
            for p in o.direct_superclasses(iri) {
                let plabel = label_or_local(o.class(p).and_then(|c| c.label.as_deref()), p);
                v.push((child.clone(), plabel));
            }
        }
        v
    };
    let props = |o: &Ontology| -> Vec<String> {
        o.properties()
            .map(|(iri, d)| label_or_local(d.label.as_deref(), iri))
            .collect()
    };
    // empty-vs-empty comparisons are perfect agreement, not failure
    let f1 = |pred: Vec<String>, gold: Vec<String>| {
        if pred.is_empty() && gold.is_empty() {
            1.0
        } else {
            kgextract::metrics::Prf::from_sets(&pred, &gold).f1
        }
    };
    let sub_f1 = {
        let (p, g) = (subs(learned), subs(gold));
        if p.is_empty() && g.is_empty() {
            1.0
        } else {
            kgextract::metrics::Prf::from_sets(&p, &g).f1
        }
    };
    OntologyScores {
        class_f1: f1(classes(learned), classes(gold)),
        subsumption_f1: sub_f1,
        property_f1: f1(props(learned), props(gold)),
    }
}

fn label_or_local(label: Option<&str>, iri: &str) -> String {
    label
        .map(str::to_string)
        .unwrap_or_else(|| ns::humanize(ns::local_name(iri)))
}

fn camel(phrase: &str) -> String {
    let mut out = String::new();
    for (i, w) in phrase.split_whitespace().enumerate() {
        if i == 0 {
            out.push_str(w);
        } else {
            let mut c = w.chars();
            if let Some(f) = c.next() {
                out.extend(f.to_uppercase());
                out.push_str(c.as_str());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpusgen::schema_corpus;
    use kg::synth::{movies, Scale};

    #[test]
    fn learned_ontology_recovers_most_of_gold() {
        let kg = movies(37, Scale::default());
        let corpus = schema_corpus(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        let learned = learn_ontology(&slm, &corpus, 2);
        let scores = evaluate_ontology(&learned.ontology, &kg.ontology);
        assert!(scores.class_f1 > 0.8, "class F1 {}", scores.class_f1);
        assert!(
            scores.subsumption_f1 > 0.6,
            "subsumption F1 {}",
            scores.subsumption_f1
        );
        assert!(
            scores.property_f1 > 0.5,
            "property F1 {}",
            scores.property_f1
        );
    }

    #[test]
    fn learning_is_deterministic() {
        let kg = movies(37, Scale::tiny());
        let corpus = schema_corpus(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        let a = learn_ontology(&slm, &corpus, 2);
        let b = learn_ontology(&slm, &corpus, 2);
        assert_eq!(a.ontology.class_count(), b.ontology.class_count());
        assert_eq!(a.concepts.len(), b.concepts.len());
    }

    #[test]
    fn camel_casing() {
        assert_eq!(camel("directed by"), "directedBy");
        assert_eq!(camel("has always been near"), "hasAlwaysBeenNear");
        assert_eq!(camel("single"), "single");
    }

    #[test]
    fn empty_corpus_learns_empty_ontology() {
        let slm = Slm::builder().build();
        let learned = learn_ontology(&slm, &[], 1);
        assert_eq!(learned.ontology.class_count(), 0);
    }
}
