//! Taxonomy induction: subsumption from quantified patterns + instance
//! containment (the contextual-subsumption recipe of \[16\]).

use crate::concept::Concept;

/// An induced subsumption edge `child ⊑ parent` with its evidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsumptionEdge {
    /// The more specific concept.
    pub child: String,
    /// The more general concept.
    pub parent: String,
    /// Evidence strength in `[0,1]`.
    pub score: f64,
}

/// Induce a taxonomy over extracted concepts.
///
/// Two evidence sources, mirroring how LM-based subsumption predictors are
/// trained:
/// 1. explicit quantified sentences (`"every X is a Y"`) — score 1.0;
/// 2. instance containment: if (nearly) all instances of X are also
///    instances of Y and Y has strictly more, X ⊑ Y with the containment
///    ratio as score.
pub fn induce_taxonomy(
    concepts: &[Concept],
    corpus: &[String],
    min_score: f64,
) -> Vec<SubsumptionEdge> {
    let mut edges: Vec<SubsumptionEdge> = Vec::new();
    // pattern evidence
    for sentence in corpus {
        let lower = sentence.to_lowercase();
        if let Some(rest) = lower.strip_prefix("every ") {
            if let Some(idx) = rest.find(" is a ") {
                let child = titled(&rest[..idx]);
                let parent = titled(rest[idx + 6..].trim_end_matches('.'));
                push_edge(&mut edges, child, parent, 1.0);
            }
        }
    }
    // instance-containment evidence
    for x in concepts {
        for y in concepts {
            if x.label == y.label || x.instances.is_empty() {
                continue;
            }
            let contained = x
                .instances
                .iter()
                .filter(|i| y.instances.contains(i))
                .count();
            let ratio = contained as f64 / x.instances.len() as f64;
            if ratio >= 0.8 && y.instances.len() > x.instances.len() {
                push_edge(&mut edges, x.label.clone(), y.label.clone(), ratio);
            }
        }
    }
    edges.retain(|e| e.score >= min_score);
    edges.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.child.cmp(&b.child))
            .then(a.parent.cmp(&b.parent))
    });
    edges
}

fn push_edge(edges: &mut Vec<SubsumptionEdge>, child: String, parent: String, score: f64) {
    if child == parent {
        return;
    }
    if let Some(e) = edges
        .iter_mut()
        .find(|e| e.child == child && e.parent == parent)
    {
        if score > e.score {
            e.score = score;
        }
    } else {
        edges.push(SubsumptionEdge {
            child,
            parent,
            score,
        });
    }
}

fn titled(s: &str) -> String {
    let s = s.trim();
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => s.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::extract_concepts;
    use crate::corpusgen::schema_corpus;
    use kg::synth::{movies, Scale};
    use slm::Slm;

    #[test]
    fn recovers_actor_person_subsumption() {
        let kg = movies(17, Scale::tiny());
        let corpus = schema_corpus(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        let concepts = extract_concepts(&slm, &corpus, 1);
        let edges = induce_taxonomy(&concepts, &corpus, 0.8);
        assert!(
            edges
                .iter()
                .any(|e| e.child == "Actor" && e.parent == "Person"),
            "{edges:?}"
        );
        assert!(
            edges
                .iter()
                .any(|e| e.child == "Director" && e.parent == "Person"),
            "{edges:?}"
        );
        // no inverted edges
        assert!(!edges
            .iter()
            .any(|e| e.child == "Person" && e.parent == "Actor"));
    }

    #[test]
    fn pattern_evidence_scores_full_confidence() {
        let corpus = vec!["every Cat is a Animal".to_string()];
        let edges = induce_taxonomy(&[], &corpus, 0.5);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].score, 1.0);
        assert_eq!(edges[0].child, "Cat");
    }

    #[test]
    fn self_edges_are_rejected() {
        let corpus = vec!["every Cat is a Cat".to_string()];
        assert!(induce_taxonomy(&[], &corpus, 0.5).is_empty());
    }

    #[test]
    fn containment_requires_strictly_larger_parent() {
        use crate::concept::Concept;
        let a = Concept {
            label: "A".into(),
            variants: vec![],
            instances: vec!["x".into(), "y".into()],
            support: 2,
        };
        let b = Concept {
            label: "B".into(),
            variants: vec![],
            instances: vec!["x".into(), "y".into()],
            support: 2,
        };
        // identical instance sets: no direction is justified
        assert!(induce_taxonomy(&[a, b], &[], 0.5).is_empty());
    }
}
