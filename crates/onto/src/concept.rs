//! Concept extraction from text (§2.1.1 "Concept and Relation Extraction").
//!
//! Mines `<instance> is a <Concept>` copula patterns from a corpus and
//! groups surface variants of the same concept by LM-embedding similarity
//! (the "semantic term variation accumulation" of OLAF \[73\]).

use std::collections::BTreeMap;

use slm::Slm;

/// An extracted concept with its instance evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Canonical (most frequent) surface form.
    pub label: String,
    /// Surface variants folded into this concept.
    pub variants: Vec<String>,
    /// Instances observed for the concept.
    pub instances: Vec<String>,
    /// Number of supporting sentences.
    pub support: usize,
}

/// Extract concepts from corpus sentences. `min_support` drops concepts
/// seen fewer times (noise control). Variants whose embedding similarity
/// exceeds 0.92 are merged.
pub fn extract_concepts(slm: &Slm, corpus: &[String], min_support: usize) -> Vec<Concept> {
    // harvest "<instance> is a <concept>" patterns
    let mut raw: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for sentence in corpus {
        if let Some((instance, concept)) = split_copula(sentence) {
            raw.entry(concept).or_default().push(instance);
        }
    }
    // fold near-duplicate surface forms (highest-support form wins)
    let mut entries: Vec<(String, Vec<String>)> = raw.into_iter().collect();
    entries.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    let mut concepts: Vec<Concept> = Vec::new();
    for (label, instances) in entries {
        let mut merged = false;
        for c in &mut concepts {
            if c.label.eq_ignore_ascii_case(&label) || slm.similarity(&c.label, &label) > 0.92 {
                c.variants.push(label.clone());
                c.support += instances.len();
                c.instances.extend(instances.iter().cloned());
                merged = true;
                break;
            }
        }
        if !merged {
            concepts.push(Concept {
                support: instances.len(),
                label,
                variants: Vec::new(),
                instances,
            });
        }
    }
    concepts.retain(|c| c.support >= min_support);
    for c in &mut concepts {
        c.instances.sort();
        c.instances.dedup();
    }
    concepts.sort_by(|a, b| b.support.cmp(&a.support).then(a.label.cmp(&b.label)));
    concepts
}

/// Split `"<instance> is a <concept>"`, rejecting quantified sentences
/// ("every X is a Y") which express subsumption, not typing.
pub fn split_copula(sentence: &str) -> Option<(String, String)> {
    let lower = sentence.to_lowercase();
    if lower.starts_with("every ") || lower.starts_with("no ") {
        return None;
    }
    let idx = lower.find(" is a ")?;
    let instance = sentence[..idx].trim();
    let concept = sentence[idx + 6..].trim().trim_end_matches('.');
    if instance.is_empty() || concept.is_empty() {
        return None;
    }
    Some((instance.to_string(), concept.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpusgen::schema_corpus;
    use kg::synth::{movies, Scale};

    fn fixture() -> (Vec<String>, Slm) {
        let kg = movies(17, Scale::tiny());
        let corpus = schema_corpus(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        (corpus, slm)
    }

    #[test]
    fn recovers_the_domain_concepts() {
        let (corpus, slm) = fixture();
        let concepts = extract_concepts(&slm, &corpus, 2);
        let labels: Vec<&str> = concepts.iter().map(|c| c.label.as_str()).collect();
        for expected in ["Film", "Actor", "Director", "Studio"] {
            assert!(labels.contains(&expected), "missing {expected}: {labels:?}");
        }
    }

    #[test]
    fn concepts_carry_instances() {
        let (corpus, slm) = fixture();
        let concepts = extract_concepts(&slm, &corpus, 2);
        let film = concepts.iter().find(|c| c.label == "Film").expect("Film");
        assert!(film.instances.len() >= 4);
        assert!(film.support >= film.instances.len());
    }

    #[test]
    fn min_support_filters_noise() {
        let (mut corpus, slm) = fixture();
        corpus.push("Oddity is a Hapax".to_string());
        let concepts = extract_concepts(&slm, &corpus, 2);
        assert!(!concepts.iter().any(|c| c.label == "Hapax"));
        let with_noise = extract_concepts(&slm, &corpus, 1);
        assert!(with_noise.iter().any(|c| c.label == "Hapax"));
    }

    #[test]
    fn quantified_sentences_are_not_typing_evidence() {
        assert_eq!(split_copula("every Actor is a Person"), None);
        assert_eq!(split_copula("no Person is a Film"), None);
        assert_eq!(
            split_copula("Lana Brook is a Actor"),
            Some(("Lana Brook".into(), "Actor".into()))
        );
    }
}
