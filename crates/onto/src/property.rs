//! Property identification with LM pre-annotation (§2.1.1, \[76\]).
//!
//! Mines candidate property phrases from relational sentences (the
//! connector between two entity mentions), then ranks candidates with the
//! LM the way fine-tuned-LLM pre-annotation would: annotators see the
//! highest-confidence suggestions first.

use std::collections::BTreeMap;

use slm::Slm;

/// A mined property candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyCandidate {
    /// Normalized property phrase (e.g. `"directed by"`).
    pub phrase: String,
    /// Occurrence count in the corpus.
    pub support: usize,
    /// LM pre-annotation confidence (corpus-fluency score, higher first).
    pub lm_score: f64,
}

/// Identify candidate properties from relational sentences of the shape
/// `"<Subject> is <phrase> <Object>"` / `"<Subject> was <phrase> <Object>"`.
/// Candidates are ranked by `(lm_score, support)` descending.
pub fn identify_properties(
    slm: &Slm,
    corpus: &[String],
    min_support: usize,
) -> Vec<PropertyCandidate> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for sentence in corpus {
        if let Some(phrase) = connector_phrase(sentence) {
            *counts.entry(phrase).or_insert(0) += 1;
        }
    }
    let mut out: Vec<PropertyCandidate> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_support)
        .map(|(phrase, support)| {
            let lm_score = slm.score(&phrase);
            PropertyCandidate {
                phrase,
                support,
                lm_score,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.lm_score
            .partial_cmp(&a.lm_score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.support.cmp(&a.support))
            .then(a.phrase.cmp(&b.phrase))
    });
    out
}

/// Extract the middle phrase from `"<X> is/was <phrase> <Y>"` sentences:
/// the words between the copula and the final capitalized mention.
fn connector_phrase(sentence: &str) -> Option<String> {
    let words: Vec<&str> = sentence.split_whitespace().collect();
    let cop = words.iter().position(|w| *w == "is" || *w == "was")?;
    // skip typing sentences ("is a Film")
    if words.get(cop + 1) == Some(&"a") {
        return None;
    }
    // the trailing entity mention: trailing run of capitalized words
    let mut end = words.len();
    while end > cop + 1
        && words[end - 1]
            .chars()
            .next()
            .is_some_and(char::is_uppercase)
    {
        end -= 1;
    }
    if end <= cop + 1 || end == words.len() {
        return None;
    }
    let phrase = words[cop + 1..end]
        .join(" ")
        .trim_end_matches('.')
        .to_string();
    if phrase.is_empty() {
        None
    } else {
        Some(phrase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};
    use kgextract::testgen::corpus_sentences;

    #[test]
    fn finds_the_domain_properties() {
        let kg = movies(23, Scale::tiny());
        let corpus = corpus_sentences(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        let props = identify_properties(&slm, &corpus, 2);
        let phrases: Vec<&str> = props.iter().map(|p| p.phrase.as_str()).collect();
        assert!(phrases.contains(&"directed by"), "{phrases:?}");
        assert!(phrases.contains(&"starring"), "{phrases:?}");
    }

    #[test]
    fn typing_sentences_are_excluded() {
        assert_eq!(connector_phrase("Alice is a Actor"), None);
        assert_eq!(
            connector_phrase("The Film is directed by Jane Roe"),
            Some("directed by".to_string())
        );
    }

    #[test]
    fn ranking_is_deterministic_and_scored() {
        let kg = movies(23, Scale::tiny());
        let corpus = corpus_sentences(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        let a = identify_properties(&slm, &corpus, 1);
        let b = identify_properties(&slm, &corpus, 1);
        assert_eq!(a, b);
        for p in &a {
            assert!(p.lm_score.is_finite());
            assert!(p.support >= 1);
        }
    }

    #[test]
    fn min_support_prunes() {
        let corpus = vec![
            "X is linked to Y".to_string(),
            "A is linked to B".to_string(),
            "Q is weirdly near Z".to_string(),
        ];
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        let props = identify_properties(&slm, &corpus, 2);
        assert_eq!(props.len(), 1);
        assert_eq!(props[0].phrase, "linked to");
    }
}
