//! Ontology alignment (§2.1.1, \[6\]): match classes and properties
//! across two schemas by lexical + structural evidence.

use kg::ontology::Ontology;
use kgextract::align::string_similarity;

/// One proposed correspondence between two ontologies.
#[derive(Debug, Clone, PartialEq)]
pub struct OntologyMatch {
    /// IRI in the left ontology.
    pub left: String,
    /// IRI in the right ontology.
    pub right: String,
    /// Combined score in `[0,1]`.
    pub score: f64,
    /// `"class"` or `"property"`.
    pub kind: &'static str,
}

/// Align two ontologies. For classes, the score blends label similarity
/// with superclass-context similarity (classes whose parents also match
/// get a boost — the "domain orientation" signal of neurosymbolic
/// alignment). For properties, label similarity blends with domain/range
/// label similarity. Greedy one-to-one matching above `threshold`.
pub fn align_ontologies(left: &Ontology, right: &Ontology, threshold: f64) -> Vec<OntologyMatch> {
    let mut candidates: Vec<OntologyMatch> = Vec::new();

    let label_of = |o: &Ontology, iri: &str| crate::corpusgen::class_label(o, iri);

    for (lc, _) in left.classes() {
        for (rc, _) in right.classes() {
            let label_sim = string_similarity(&label_of(left, lc), &label_of(right, rc));
            if label_sim < 0.4 {
                continue;
            }
            let lparents = left.direct_superclasses(lc);
            let rparents = right.direct_superclasses(rc);
            let parent_sim = if lparents.is_empty() && rparents.is_empty() {
                label_sim // no structure: fall back to label signal
            } else {
                best_pairwise(&lparents, &rparents, |a, b| {
                    string_similarity(&label_of(left, a), &label_of(right, b))
                })
            };
            candidates.push(OntologyMatch {
                left: lc.to_string(),
                right: rc.to_string(),
                score: 0.75 * label_sim + 0.25 * parent_sim,
                kind: "class",
            });
        }
    }

    let prop_label = |o: &Ontology, iri: &str| {
        o.property(iri)
            .and_then(|p| p.label.clone())
            .unwrap_or_else(|| kg::namespace::humanize(kg::namespace::local_name(iri)))
    };
    for (lp, ld) in left.properties() {
        for (rp, rd) in right.properties() {
            let label_sim = string_similarity(&prop_label(left, lp), &prop_label(right, rp));
            if label_sim < 0.4 {
                continue;
            }
            let dom_sim = match (&ld.domain, &rd.domain) {
                (Some(a), Some(b)) => string_similarity(&label_of(left, a), &label_of(right, b)),
                (None, None) => label_sim,
                _ => 0.0,
            };
            candidates.push(OntologyMatch {
                left: lp.to_string(),
                right: rp.to_string(),
                score: 0.75 * label_sim + 0.25 * dom_sim,
                kind: "property",
            });
        }
    }

    // greedy one-to-one selection
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
    let mut used_left: Vec<&str> = Vec::new();
    let mut used_right: Vec<&str> = Vec::new();
    let mut out = Vec::new();
    for c in &candidates {
        if c.score < threshold {
            break;
        }
        if used_left.contains(&c.left.as_str()) || used_right.contains(&c.right.as_str()) {
            continue;
        }
        used_left.push(&c.left);
        used_right.push(&c.right);
        out.push(c.clone());
    }
    out
}

fn best_pairwise<T: AsRef<str>>(left: &[T], right: &[T], sim: impl Fn(&str, &str) -> f64) -> f64 {
    let mut best = 0.0f64;
    for l in left {
        for r in right {
            best = best.max(sim(l.as_ref(), r.as_ref()));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::ontology::PropertyDecl;

    fn left() -> Ontology {
        let mut o = Ontology::new();
        o.add_labeled_class("http://a/Film", "Film");
        o.add_labeled_class("http://a/Person", "Person");
        o.add_subclass("http://a/Actor", "http://a/Person");
        o.add_labeled_class("http://a/Actor", "Actor");
        o.add_property(
            "http://a/directedBy",
            PropertyDecl {
                domain: Some("http://a/Film".into()),
                label: Some("directed by".into()),
                ..Default::default()
            },
        );
        o
    }

    fn right_variant() -> Ontology {
        let mut o = Ontology::new();
        o.add_labeled_class("http://b/Movie", "Film");
        o.add_labeled_class("http://b/Human", "Person");
        o.add_subclass("http://b/Performer", "http://b/Human");
        o.add_labeled_class("http://b/Performer", "Actors"); // near-variant label
        o.add_property(
            "http://b/director",
            PropertyDecl {
                domain: Some("http://b/Movie".into()),
                label: Some("directed by".into()),
                ..Default::default()
            },
        );
        o
    }

    #[test]
    fn identical_labels_align_perfectly() {
        let l = left();
        let matches = align_ontologies(&l, &l, 0.9);
        assert!(matches
            .iter()
            .any(|m| m.left.ends_with("Film") && m.right.ends_with("Film")));
        assert!(matches.iter().any(|m| m.kind == "property"));
    }

    #[test]
    fn variant_labels_still_align() {
        let matches = align_ontologies(&left(), &right_variant(), 0.6);
        // Film ↔ Movie (same label "Film"), Actor ↔ Performer ("Actors")
        assert!(
            matches
                .iter()
                .any(|m| m.left == "http://a/Film" && m.right == "http://b/Movie"),
            "{matches:?}"
        );
        assert!(
            matches
                .iter()
                .any(|m| m.left == "http://a/Actor" && m.right == "http://b/Performer"),
            "{matches:?}"
        );
    }

    #[test]
    fn matching_is_one_to_one() {
        let matches = align_ontologies(&left(), &right_variant(), 0.5);
        let mut lefts: Vec<&str> = matches.iter().map(|m| m.left.as_str()).collect();
        let before = lefts.len();
        lefts.sort_unstable();
        lefts.dedup();
        assert_eq!(lefts.len(), before, "left side must be unique");
    }

    #[test]
    fn threshold_prunes_weak_matches() {
        let strict = align_ontologies(&left(), &right_variant(), 0.95);
        let lax = align_ontologies(&left(), &right_variant(), 0.5);
        assert!(strict.len() <= lax.len());
    }
}
