//! Text-to-ontology mapping (§2.1.1, \[50\]): route a text snippet to the
//! most relevant ontology class.

use kg::ontology::Ontology;
use slm::Slm;

/// A trained text→class router.
pub struct TextToOntologyMapper<'a> {
    slm: &'a Slm,
    /// `(class IRI, anchor text)` — label plus comment plus known
    /// instance names, the "document" representing the class.
    anchors: Vec<(String, String)>,
}

impl<'a> TextToOntologyMapper<'a> {
    /// Build from an ontology; optionally enrich class anchors with
    /// instance names via `instances(class_iri) -> names`.
    pub fn new(slm: &'a Slm, onto: &Ontology, instances: impl Fn(&str) -> Vec<String>) -> Self {
        let anchors = onto
            .classes()
            .map(|(iri, decl)| {
                let mut anchor = decl
                    .label
                    .clone()
                    .unwrap_or_else(|| kg::namespace::humanize(kg::namespace::local_name(iri)));
                if let Some(c) = &decl.comment {
                    anchor.push(' ');
                    anchor.push_str(c);
                }
                for i in instances(iri).into_iter().take(10) {
                    anchor.push(' ');
                    anchor.push_str(&i);
                }
                (iri.to_string(), anchor)
            })
            .collect();
        TextToOntologyMapper { slm, anchors }
    }

    /// Map a snippet to the best class with its score; `None` if the
    /// ontology is empty.
    pub fn map(&self, text: &str) -> Option<(String, f32)> {
        self.anchors
            .iter()
            .map(|(iri, anchor)| (iri.clone(), self.slm.similarity(text, anchor)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Rank all classes for a snippet (descending).
    pub fn rank(&self, text: &str) -> Vec<(String, f32)> {
        let mut v: Vec<(String, f32)> = self
            .anchors
            .iter()
            .map(|(iri, anchor)| (iri.clone(), self.slm.similarity(text, anchor)))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpusgen::schema_corpus;
    use kg::synth::{movies, Scale};

    #[test]
    fn maps_snippets_to_the_right_class() {
        let kg = movies(29, Scale::tiny());
        let corpus = schema_corpus(&kg.graph, &kg.ontology);
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .build();
        let graph = &kg.graph;
        let mapper = TextToOntologyMapper::new(&slm, &kg.ontology, |class_iri| {
            graph
                .pool()
                .get_iri(class_iri)
                .map(|c| {
                    graph
                        .instances_of(c)
                        .into_iter()
                        .map(|e| graph.display_name(e))
                        .collect()
                })
                .unwrap_or_default()
        });
        // a film instance name should map to the Film class
        let film_class = graph.pool().get_iri("http://llmkg.dev/vocab/Film").unwrap();
        let film_name = graph.display_name(graph.instances_of(film_class)[0]);
        let (mapped, score) = mapper.map(&film_name).expect("non-empty ontology");
        assert!(mapped.ends_with("Film"), "{film_name} → {mapped} ({score})");
    }

    #[test]
    fn rank_is_sorted_and_complete() {
        let kg = movies(29, Scale::tiny());
        let slm = Slm::builder().build();
        let mapper = TextToOntologyMapper::new(&slm, &kg.ontology, |_| Vec::new());
        let ranked = mapper.rank("a thrilling drama film");
        assert_eq!(ranked.len(), kg.ontology.class_count());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_ontology_maps_to_none() {
        let slm = Slm::builder().build();
        let onto = Ontology::new();
        let mapper = TextToOntologyMapper::new(&slm, &onto, |_| Vec::new());
        assert!(mapper.map("anything").is_none());
    }
}
