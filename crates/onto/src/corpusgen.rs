//! Schema-bearing corpus generation.
//!
//! Produces the natural-language sentences an ontology learner would mine
//! from a domain corpus: instance typing ("Alice Vale is a Actor"),
//! quantified subsumption ("every Actor is a Person"), disjointness
//! ("no Person is a Film"), and relational usage sentences (reusing the
//! relation verbalizer from `kgextract`).

use kg::namespace as ns;
use kg::ontology::Ontology;
use kg::Graph;

/// All schema-bearing sentences for a KG + ontology.
pub fn schema_corpus(graph: &Graph, onto: &Ontology) -> Vec<String> {
    let mut out = Vec::new();
    // instance typing sentences
    if let Some(ty) = graph.pool().get_iri(ns::RDF_TYPE) {
        for t in graph.iter() {
            if t.p != ty {
                continue;
            }
            let Some(class_iri) = graph.resolve(t.o).as_iri() else {
                continue;
            };
            if !class_iri.starts_with(ns::SYNTH_VOCAB) {
                continue;
            }
            let inst = graph.display_name(t.s);
            let class = class_label(onto, class_iri);
            out.push(format!("{inst} is a {class}"));
        }
    }
    // quantified subsumption sentences
    for (class, _) in onto.classes() {
        for parent in onto.direct_superclasses(class) {
            out.push(format!(
                "every {} is a {}",
                class_label(onto, class),
                class_label(onto, parent)
            ));
        }
    }
    // disjointness sentences
    for (a, b) in onto.disjoint_pairs() {
        out.push(format!(
            "no {} is a {}",
            class_label(onto, a),
            class_label(onto, b)
        ));
    }
    // relation usage sentences
    out.extend(kgextract::testgen::corpus_sentences(graph, onto));
    out
}

/// The human label of a class IRI under an ontology.
pub fn class_label(onto: &Ontology, iri: &str) -> String {
    onto.class(iri)
        .and_then(|c| c.label.clone())
        .unwrap_or_else(|| ns::humanize(ns::local_name(iri)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};

    #[test]
    fn corpus_contains_all_sentence_kinds() {
        let kg = movies(3, Scale::tiny());
        let corpus = schema_corpus(&kg.graph, &kg.ontology);
        assert!(
            corpus.iter().any(|s| s.contains(" is a Film")),
            "typing sentences"
        );
        assert!(
            corpus
                .iter()
                .any(|s| s.starts_with("every Actor is a Person")),
            "subsumption sentences"
        );
        assert!(
            corpus.iter().any(|s| s.starts_with("no ")),
            "disjointness sentences"
        );
        assert!(
            corpus.iter().any(|s| s.contains("directed by")),
            "relation sentences"
        );
    }

    #[test]
    fn class_label_falls_back_to_local_name() {
        let onto = Ontology::new();
        assert_eq!(class_label(&onto, "http://v/CamelCase"), "Camel case");
    }
}
