//! # kgonto — ontology generation with (simulated) LLMs (paper §2.1.1)
//!
//! The survey's Research Question 2 asks how LLMs can be employed in
//! ontology generation. This crate implements the six activities the
//! paper enumerates, all against the `slm` substrate:
//!
//! * [`corpusgen`] — schema-bearing corpus generation ("X is a Film",
//!   "every Student is a Person") from a gold KG, the input to learning,
//! * [`concept`] — concept extraction: instance→class harvesting from
//!   copula patterns, with LM-embedding sense grouping \[73\],
//! * [`taxonomy`] — taxonomy induction via quantified-subsumption patterns
//!   and instance-set containment (the BERT-subsumption recipe of \[16\]),
//! * [`property`] — property identification with LM pre-annotation
//!   ranking \[76\],
//! * [`align`] — ontology alignment: lexical + structural matching of two
//!   schemas \[6\],
//! * [`mapping`] — text-to-ontology mapping: route a text snippet to its
//!   best class \[50\],
//! * [`learn`] — the LLMs4OL-style end-to-end pipeline \[4\]: corpus →
//!   concepts → taxonomy → properties → [`kg::Ontology`], evaluated
//!   against the gold schema.

pub mod align;
pub mod concept;
pub mod corpusgen;
pub mod learn;
pub mod mapping;
pub mod property;
pub mod taxonomy;

pub use align::{align_ontologies, OntologyMatch};
pub use concept::{extract_concepts, Concept};
pub use learn::{learn_ontology, LearnedOntology};
pub use mapping::TextToOntologyMapper;
pub use property::{identify_properties, PropertyCandidate};
pub use taxonomy::induce_taxonomy;
