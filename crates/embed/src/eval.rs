//! Filtered link-prediction evaluation (the FB15k protocol).

use crate::data::{DenseTriple, TripleSet};
use crate::model::KgeModel;

/// Ranking metrics over a test split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankMetrics {
    /// Mean rank (1 = perfect).
    pub mr: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Fraction of test cases ranked first.
    pub hits1: f64,
    /// Fraction ranked in the top 3.
    pub hits3: f64,
    /// Fraction ranked in the top 10.
    pub hits10: f64,
    /// Number of ranking tasks evaluated (2 × test triples).
    pub count: usize,
}

impl RankMetrics {
    /// The metrics of an empty evaluation.
    pub fn empty() -> Self {
        RankMetrics {
            mr: 0.0,
            mrr: 0.0,
            hits1: 0.0,
            hits3: 0.0,
            hits10: 0.0,
            count: 0,
        }
    }

    /// One-line report.
    pub fn report(&self, name: &str) -> String {
        format!(
            "{name:12} MR {:7.1}  MRR {:.3}  Hits@1 {:.3}  Hits@3 {:.3}  Hits@10 {:.3}",
            self.mr, self.mrr, self.hits1, self.hits3, self.hits10
        )
    }
}

/// Score a model on the test split with the *filtered* protocol: when
/// ranking the true head/tail against all entities, other known-true
/// triples are excluded from the candidate list. Both head and tail
/// prediction count.
pub fn evaluate<M: KgeModel>(model: &M, data: &TripleSet) -> RankMetrics {
    evaluate_scored(|h, r, t| model.score(h, r, t), data)
}

/// Like [`evaluate`] but for any scoring function — used by the text-based
/// completion methods that are not `KgeModel`s.
pub fn evaluate_scored(
    score: impl Fn(usize, usize, usize) -> f32,
    data: &TripleSet,
) -> RankMetrics {
    evaluate_slice(&score, data, &data.test)
}

/// Parallel evaluation: splits the test triples across `threads` crossbeam
/// scoped workers and merges their partial metrics. Produces exactly the
/// same numbers as [`evaluate_scored`] (metric sums are associative).
pub fn evaluate_scored_parallel<F>(score: F, data: &TripleSet, threads: usize) -> RankMetrics
where
    F: Fn(usize, usize, usize) -> f32 + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || data.test.len() < threads * 2 {
        return evaluate_scored(score, data);
    }
    let chunk = data.test.len().div_ceil(threads);
    let partials: Vec<RankMetrics> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = data
            .test
            .chunks(chunk)
            .map(|slice| s.spawn(|_| evaluate_slice(&score, data, slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope");
    merge(&partials)
}

fn merge(parts: &[RankMetrics]) -> RankMetrics {
    let count: usize = parts.iter().map(|m| m.count).sum();
    if count == 0 {
        return RankMetrics::empty();
    }
    let weighted = |f: fn(&RankMetrics) -> f64| {
        parts.iter().map(|m| f(m) * m.count as f64).sum::<f64>() / count as f64
    };
    RankMetrics {
        mr: weighted(|m| m.mr),
        mrr: weighted(|m| m.mrr),
        hits1: weighted(|m| m.hits1),
        hits3: weighted(|m| m.hits3),
        hits10: weighted(|m| m.hits10),
        count,
    }
}

fn evaluate_slice(
    score: &(impl Fn(usize, usize, usize) -> f32 + ?Sized),
    data: &TripleSet,
    test: &[DenseTriple],
) -> RankMetrics {
    let n_ent = data.n_entities();
    let mut mr = 0.0f64;
    let mut mrr = 0.0f64;
    let mut hits = [0usize; 3]; // @1, @3, @10
    let mut count = 0usize;
    for &t in test {
        // tail prediction
        let true_score = score(t.h, t.r, t.t);
        let mut rank = 1usize;
        for cand in 0..n_ent {
            if cand == t.t {
                continue;
            }
            let candidate = DenseTriple { t: cand, ..t };
            if data.is_true(candidate) {
                continue; // filtered setting
            }
            if score(t.h, t.r, cand) > true_score {
                rank += 1;
            }
        }
        tally(rank, &mut mr, &mut mrr, &mut hits);
        count += 1;
        // head prediction
        let mut rank = 1usize;
        for cand in 0..n_ent {
            if cand == t.h {
                continue;
            }
            let candidate = DenseTriple { h: cand, ..t };
            if data.is_true(candidate) {
                continue;
            }
            if score(cand, t.r, t.t) > true_score {
                rank += 1;
            }
        }
        tally(rank, &mut mr, &mut mrr, &mut hits);
        count += 1;
    }
    if count == 0 {
        return RankMetrics::empty();
    }
    RankMetrics {
        mr: mr / count as f64,
        mrr: mrr / count as f64,
        hits1: hits[0] as f64 / count as f64,
        hits3: hits[1] as f64 / count as f64,
        hits10: hits[2] as f64 / count as f64,
        count,
    }
}

fn tally(rank: usize, mr: &mut f64, mrr: &mut f64, hits: &mut [usize; 3]) {
    *mr += rank as f64;
    *mrr += 1.0 / rank as f64;
    if rank <= 1 {
        hits[0] += 1;
    }
    if rank <= 3 {
        hits[1] += 1;
    }
    if rank <= 10 {
        hits[2] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransE;
    use crate::train::{train, TrainConfig};
    use kg::synth::{freebase_like, FreebaseLikeConfig};

    fn dataset() -> TripleSet {
        let cfg = FreebaseLikeConfig {
            n_entities: 60,
            n_relations: 4,
            n_triples: 500,
            zipf_exponent: 0.8,
            with_labels: true,
        };
        let kg = freebase_like(2, &cfg).expect("valid config");
        TripleSet::from_graph(&kg.graph, 5, TripleSet::default_keep)
    }

    #[test]
    fn trained_model_beats_untrained() {
        let data = dataset();
        let untrained = TransE::new(3, data.n_entities(), data.n_relations(), 24);
        let base = evaluate(&untrained, &data);
        let mut model = TransE::new(3, data.n_entities(), data.n_relations(), 24);
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 60,
                lr: 0.05,
                margin: 1.0,
                negatives: 2,
                seed: 1,
            },
        );
        let trained = evaluate(&model, &data);
        assert!(
            trained.mrr > base.mrr,
            "training must improve MRR: {} → {}",
            base.mrr,
            trained.mrr
        );
        assert!(trained.hits10 >= base.hits10);
    }

    #[test]
    fn perfect_oracle_ranks_first() {
        let data = dataset();
        let oracle = |h: usize, r: usize, t: usize| {
            if data.is_true(DenseTriple { h, r, t }) {
                1.0
            } else {
                0.0
            }
        };
        let m = evaluate_scored(oracle, &data);
        assert!(
            (m.mrr - 1.0).abs() < 1e-9,
            "oracle must be perfect, got {}",
            m.mrr
        );
        assert_eq!(m.hits1, 1.0);
        assert_eq!(m.mr, 1.0);
    }

    #[test]
    fn empty_test_split_is_empty_metrics() {
        let mut data = dataset();
        data.test.clear();
        let model = TransE::new(0, data.n_entities(), data.n_relations(), 4);
        let m = evaluate(&model, &data);
        assert_eq!(m.count, 0);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let data = dataset();
        let mut model = TransE::new(3, data.n_entities(), data.n_relations(), 16);
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        let serial = evaluate(&model, &data);
        let parallel = evaluate_scored_parallel(|h, r, t| model.score(h, r, t), &data, 4);
        assert_eq!(serial.count, parallel.count);
        assert!((serial.mrr - parallel.mrr).abs() < 1e-12);
        assert!((serial.mr - parallel.mr).abs() < 1e-9);
        assert_eq!(serial.hits1, parallel.hits1);
    }

    #[test]
    fn report_contains_metrics() {
        let m = RankMetrics {
            mr: 5.0,
            mrr: 0.5,
            hits1: 0.3,
            hits3: 0.5,
            hits10: 0.9,
            count: 10,
        };
        let r = m.report("TransE");
        assert!(r.contains("TransE") && r.contains("0.500"));
    }
}
