//! SimKGC-style textual bi-encoder (paper §2.4–2.5).
//!
//! Instead of learning structural embeddings, score a triple by the cosine
//! similarity between the text embedding of *head label + relation label*
//! and the text embedding of the *tail label* — the bi-encoder shape of
//! SimKGC, using the simulated LM's embedding space. Training-free: the
//! "pre-training" is the `slm` corpus.

use slm::Embedder;

use crate::data::TripleSet;
use kg::Graph;

/// A text-based triple scorer over LM embeddings.
pub struct LmBiEncoder {
    embedder: Embedder,
    /// Pre-computed query texts ("head-label relation-label") are built on
    /// the fly; entity label cache avoids repeated resolution.
    entity_labels: Vec<String>,
    relation_labels: Vec<String>,
    /// Cached tail embeddings, aligned with `entity_labels`.
    tail_vecs: Vec<Vec<f32>>,
}

impl LmBiEncoder {
    /// Build from a graph, a triple set, and a trained embedder
    /// (typically `slm.embedder().clone()`).
    pub fn new(graph: &Graph, data: &TripleSet, embedder: Embedder) -> Self {
        let entity_labels: Vec<String> = data
            .entities
            .iter()
            .map(|&e| graph.display_name(e))
            .collect();
        let relation_labels: Vec<String> = data
            .relations
            .iter()
            .map(|&r| kg::namespace::humanize(graph.label(r)))
            .collect();
        let tail_vecs = entity_labels.iter().map(|l| embedder.embed(l)).collect();
        LmBiEncoder {
            embedder,
            entity_labels,
            relation_labels,
            tail_vecs,
        }
    }

    /// Bi-encoder score: cosine( embed(head ⊕ relation), embed(tail) ).
    pub fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        let query = format!("{} {}", self.entity_labels[h], self.relation_labels[r]);
        slm::embedding::cosine(&self.embedder.embed(&query), &self.tail_vecs[t])
    }

    /// The label of an entity id (for reports).
    pub fn entity_label(&self, e: usize) -> &str {
        &self.entity_labels[e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TripleSet;
    use kg::synth::{movies, Scale};
    use slm::Slm;

    #[test]
    fn biencoder_scores_are_finite_and_vary() {
        let kg = movies(6, Scale::tiny());
        let data = TripleSet::from_graph(&kg.graph, 2, TripleSet::default_keep);
        let slm = Slm::builder()
            .corpus(["films star actors", "directors direct films"])
            .build();
        let be = LmBiEncoder::new(&kg.graph, &data, slm.embedder().clone());
        let t = data.train[0];
        let s1 = be.score(t.h, t.r, t.t);
        let s2 = be.score(t.h, t.r, (t.t + 1) % data.n_entities());
        assert!(s1.is_finite() && s2.is_finite());
        assert_ne!(s1, s2);
    }

    #[test]
    fn labels_resolve() {
        let kg = movies(6, Scale::tiny());
        let data = TripleSet::from_graph(&kg.graph, 2, TripleSet::default_keep);
        let slm = Slm::builder().build();
        let be = LmBiEncoder::new(&kg.graph, &data, slm.embedder().clone());
        assert!(!be.entity_label(0).is_empty());
    }
}
