//! Dense-id triple sets for embedding training.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use kg::namespace as ns;
use kg::term::Sym;
use kg::Graph;

/// A triple over dense entity/relation ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DenseTriple {
    /// Head entity id.
    pub h: usize,
    /// Relation id.
    pub r: usize,
    /// Tail entity id.
    pub t: usize,
}

/// A set of relation triples with dense id maps and a train/valid/test
/// split, extracted from a graph.
#[derive(Debug, Clone)]
pub struct TripleSet {
    /// Entity `Sym`s indexed by dense id.
    pub entities: Vec<Sym>,
    /// Relation `Sym`s indexed by dense id.
    pub relations: Vec<Sym>,
    /// Training triples.
    pub train: Vec<DenseTriple>,
    /// Validation triples.
    pub valid: Vec<DenseTriple>,
    /// Test triples.
    pub test: Vec<DenseTriple>,
    /// All known true triples (for filtered ranking).
    pub all: BTreeSet<DenseTriple>,
}

impl TripleSet {
    /// Extract relation triples from a graph, keeping only IRI→IRI edges
    /// whose predicate passes `keep` (use it to drop `rdf:type` /
    /// `rdfs:label`), and split into train/valid/test by `(0.8, 0.1, 0.1)`
    /// under `seed`.
    pub fn from_graph(graph: &Graph, seed: u64, keep: impl Fn(&str) -> bool) -> Self {
        let mut ent_ids: BTreeMap<Sym, usize> = BTreeMap::new();
        let mut rel_ids: BTreeMap<Sym, usize> = BTreeMap::new();
        let mut entities = Vec::new();
        let mut relations = Vec::new();
        let mut triples = Vec::new();
        for t in graph.iter() {
            let Some(p_iri) = graph.resolve(t.p).as_iri() else {
                continue;
            };
            if !keep(p_iri) {
                continue;
            }
            if !graph.resolve(t.s).is_iri() || !graph.resolve(t.o).is_iri() {
                continue;
            }
            let h = *ent_ids.entry(t.s).or_insert_with(|| {
                entities.push(t.s);
                entities.len() - 1
            });
            let r = *rel_ids.entry(t.p).or_insert_with(|| {
                relations.push(t.p);
                relations.len() - 1
            });
            let tt = *ent_ids.entry(t.o).or_insert_with(|| {
                entities.push(t.o);
                entities.len() - 1
            });
            triples.push(DenseTriple { h, r, t: tt });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        triples.shuffle(&mut rng);
        let n = triples.len();
        let n_test = n / 10;
        let n_valid = n / 10;
        let test = triples.split_off(n - n_test);
        let valid = triples.split_off(n.saturating_sub(n_test + n_valid));
        let train = triples;
        let all: BTreeSet<DenseTriple> = train.iter().chain(&valid).chain(&test).copied().collect();
        TripleSet {
            entities,
            relations,
            train,
            valid,
            test,
            all,
        }
    }

    /// The default predicate filter: keep synthetic-vocabulary relations,
    /// drop `rdf:` / `rdfs:` / `owl:` machinery.
    pub fn default_keep(p_iri: &str) -> bool {
        !p_iri.starts_with(ns::RDF) && !p_iri.starts_with(ns::RDFS) && !p_iri.starts_with(ns::OWL)
    }

    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of relations.
    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }

    /// Is a triple known to be true (any split)?
    pub fn is_true(&self, t: DenseTriple) -> bool {
        self.all.contains(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};

    fn set() -> TripleSet {
        let kg = movies(4, Scale::default());
        TripleSet::from_graph(&kg.graph, 7, TripleSet::default_keep)
    }

    #[test]
    fn split_is_8_1_1_ish() {
        let s = set();
        let n = s.train.len() + s.valid.len() + s.test.len();
        assert!(n > 50);
        assert!(s.test.len() >= n / 12);
        assert!(s.train.len() >= n * 7 / 10);
        assert_eq!(s.all.len(), n); // generators do not produce duplicates
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        let s = set();
        for t in s.train.iter().chain(&s.valid).chain(&s.test) {
            assert!(t.h < s.n_entities());
            assert!(t.t < s.n_entities());
            assert!(t.r < s.n_relations());
        }
    }

    #[test]
    fn default_keep_drops_schema_predicates() {
        assert!(!TripleSet::default_keep(ns::RDF_TYPE));
        assert!(!TripleSet::default_keep(ns::RDFS_LABEL));
        assert!(TripleSet::default_keep("http://llmkg.dev/vocab/directedBy"));
    }

    #[test]
    fn split_is_deterministic() {
        let kg = movies(4, Scale::tiny());
        let a = TripleSet::from_graph(&kg.graph, 7, TripleSet::default_keep);
        let b = TripleSet::from_graph(&kg.graph, 7, TripleSet::default_keep);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = TripleSet::from_graph(&kg.graph, 8, TripleSet::default_keep);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn is_true_sees_all_splits() {
        let s = set();
        assert!(s.is_true(s.test[0]));
        assert!(s.is_true(s.train[0]));
    }
}
