//! # kgembed — knowledge-graph embedding (paper §2.4–2.5)
//!
//! From-scratch implementations of the classic triple-based embedding
//! models the survey cites as the structural baseline for KG completion —
//! TransE \[9\], TransR-lite \[58\], DistMult, ComplEx \[77\], RotatE —
//! plus the text-based SimKGC-style bi-encoder that scores triples with
//! the simulated LM's text embeddings.
//!
//! * [`data`] — dense-id triple sets extracted from a [`kg::Graph`] with
//!   seeded train/valid/test splits,
//! * [`model`] — the scoring models with analytic margin-loss gradients,
//! * [`mod@train`] — the SGD training loop with uniform negative sampling,
//! * [`eval`] — filtered link-prediction metrics (MR, MRR, Hits@k),
//! * [`lm_adapter`] — SimKGC-style textual bi-encoder over `slm`
//!   embeddings (no training needed).

pub mod data;
pub mod eval;
pub mod lm_adapter;
pub mod model;
pub mod train;

pub use data::{DenseTriple, TripleSet};
pub use eval::{evaluate, RankMetrics};
pub use model::{ComplEx, DistMult, KgeModel, RotatE, TransE, TransR};
pub use train::{train, TrainConfig};
