//! Embedding models with analytic margin-loss gradients.
//!
//! All models expose the same interface: a plausibility [`KgeModel::score`]
//! (higher = more plausible) and one SGD [`KgeModel::step`] on a
//! (positive, negative) triple pair under hinge loss
//! `max(0, margin + s(neg) − s(pos))` (distance models equivalently use
//! `margin + d(pos) − d(neg)`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::DenseTriple;

/// Common interface of all embedding models.
pub trait KgeModel {
    /// Model name for reports.
    fn name(&self) -> &'static str;
    /// Plausibility score (higher = better).
    fn score(&self, h: usize, r: usize, t: usize) -> f32;
    /// One SGD step on a positive/negative pair.
    fn step(&mut self, pos: DenseTriple, neg: DenseTriple, lr: f32, margin: f32) -> f32;
    /// Number of entities.
    fn n_entities(&self) -> usize;
    /// Embedding dimensionality.
    fn dim(&self) -> usize;
}

fn init_vec(rng: &mut StdRng, n: usize, dim: usize) -> Vec<f32> {
    let bound = 6.0 / (dim as f32).sqrt();
    (0..n * dim).map(|_| rng.gen_range(-bound..bound)).collect()
}

fn normalize_row(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1.0 {
        for x in v {
            *x /= norm;
        }
    }
}

// ───────────────────────────── TransE ─────────────────────────────

/// TransE \[Bordes et al. 2013\]: `h + r ≈ t`, distance `‖h+r−t‖²`.
#[derive(Debug, Clone)]
pub struct TransE {
    ent: Vec<f32>,
    rel: Vec<f32>,
    n_ent: usize,
    dim: usize,
}

impl TransE {
    /// Fresh random model.
    pub fn new(seed: u64, n_ent: usize, n_rel: usize, dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        TransE {
            ent: init_vec(&mut rng, n_ent, dim),
            rel: init_vec(&mut rng, n_rel, dim),
            n_ent,
            dim,
        }
    }

    fn dist(&self, h: usize, r: usize, t: usize) -> f32 {
        let (d, eh, er, et) = (self.dim, h * self.dim, r * self.dim, t * self.dim);
        let mut s = 0.0;
        for i in 0..d {
            let u = self.ent[eh + i] + self.rel[er + i] - self.ent[et + i];
            s += u * u;
        }
        s
    }
}

impl KgeModel for TransE {
    fn name(&self) -> &'static str {
        "TransE"
    }

    fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        -self.dist(h, r, t)
    }

    fn step(&mut self, pos: DenseTriple, neg: DenseTriple, lr: f32, margin: f32) -> f32 {
        let loss = margin + self.dist(pos.h, pos.r, pos.t) - self.dist(neg.h, neg.r, neg.t);
        if loss <= 0.0 {
            return 0.0;
        }
        let d = self.dim;
        // positive: descend distance; negative: ascend
        for (triple, sign) in [(pos, 1.0f32), (neg, -1.0)] {
            let (eh, er, et) = (triple.h * d, triple.r * d, triple.t * d);
            for i in 0..d {
                let u = 2.0 * (self.ent[eh + i] + self.rel[er + i] - self.ent[et + i]);
                self.ent[eh + i] -= sign * lr * u;
                self.rel[er + i] -= sign * lr * u;
                self.ent[et + i] += sign * lr * u;
            }
        }
        for &e in &[pos.h, pos.t, neg.h, neg.t] {
            normalize_row(&mut self.ent[e * d..(e + 1) * d]);
        }
        loss
    }

    fn n_entities(&self) -> usize {
        self.n_ent
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

// ───────────────────────────── TransR-lite ─────────────────────────

/// TransR-lite \[after Lin et al. 2015\]: relation-specific *diagonal*
/// projection `w_r ∘ h + r ≈ w_r ∘ t` (the full matrix projection of
/// TransR collapsed to a vector, keeping per-relation spaces affordable).
#[derive(Debug, Clone)]
pub struct TransR {
    ent: Vec<f32>,
    rel: Vec<f32>,
    proj: Vec<f32>,
    n_ent: usize,
    dim: usize,
}

impl TransR {
    /// Fresh random model.
    pub fn new(seed: u64, n_ent: usize, n_rel: usize, dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7A);
        TransR {
            ent: init_vec(&mut rng, n_ent, dim),
            rel: init_vec(&mut rng, n_rel, dim),
            proj: (0..n_rel * dim)
                .map(|_| 1.0 + rng.gen_range(-0.1..0.1))
                .collect(),
            n_ent,
            dim,
        }
    }

    fn dist(&self, h: usize, r: usize, t: usize) -> f32 {
        let (d, eh, er, et) = (self.dim, h * self.dim, r * self.dim, t * self.dim);
        let mut s = 0.0;
        for i in 0..d {
            let w = self.proj[er + i];
            let u = w * self.ent[eh + i] + self.rel[er + i] - w * self.ent[et + i];
            s += u * u;
        }
        s
    }
}

impl KgeModel for TransR {
    fn name(&self) -> &'static str {
        "TransR-lite"
    }

    fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        -self.dist(h, r, t)
    }

    fn step(&mut self, pos: DenseTriple, neg: DenseTriple, lr: f32, margin: f32) -> f32 {
        let loss = margin + self.dist(pos.h, pos.r, pos.t) - self.dist(neg.h, neg.r, neg.t);
        if loss <= 0.0 {
            return 0.0;
        }
        let d = self.dim;
        for (triple, sign) in [(pos, 1.0f32), (neg, -1.0)] {
            let (eh, er, et) = (triple.h * d, triple.r * d, triple.t * d);
            for i in 0..d {
                let w = self.proj[er + i];
                let u = 2.0 * (w * self.ent[eh + i] + self.rel[er + i] - w * self.ent[et + i]);
                let dh = u * w;
                let dt = -u * w;
                let dw = u * (self.ent[eh + i] - self.ent[et + i]);
                self.ent[eh + i] -= sign * lr * dh;
                self.ent[et + i] -= sign * lr * dt;
                self.rel[er + i] -= sign * lr * u;
                self.proj[er + i] -= sign * lr * dw;
            }
        }
        for &e in &[pos.h, pos.t, neg.h, neg.t] {
            normalize_row(&mut self.ent[e * d..(e + 1) * d]);
        }
        loss
    }

    fn n_entities(&self) -> usize {
        self.n_ent
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

// ───────────────────────────── DistMult ─────────────────────────────

/// DistMult: bilinear-diagonal score `Σ h∘r∘t`.
#[derive(Debug, Clone)]
pub struct DistMult {
    ent: Vec<f32>,
    rel: Vec<f32>,
    n_ent: usize,
    dim: usize,
}

impl DistMult {
    /// Fresh random model.
    pub fn new(seed: u64, n_ent: usize, n_rel: usize, dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1);
        DistMult {
            ent: init_vec(&mut rng, n_ent, dim),
            rel: init_vec(&mut rng, n_rel, dim),
            n_ent,
            dim,
        }
    }
}

impl KgeModel for DistMult {
    fn name(&self) -> &'static str {
        "DistMult"
    }

    fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        let (d, eh, er, et) = (self.dim, h * self.dim, r * self.dim, t * self.dim);
        (0..d)
            .map(|i| self.ent[eh + i] * self.rel[er + i] * self.ent[et + i])
            .sum()
    }

    fn step(&mut self, pos: DenseTriple, neg: DenseTriple, lr: f32, margin: f32) -> f32 {
        let loss = margin + self.score(neg.h, neg.r, neg.t) - self.score(pos.h, pos.r, pos.t);
        if loss <= 0.0 {
            return 0.0;
        }
        let d = self.dim;
        for (triple, sign) in [(pos, 1.0f32), (neg, -1.0)] {
            let (eh, er, et) = (triple.h * d, triple.r * d, triple.t * d);
            for i in 0..d {
                let (hv, rv, tv) = (self.ent[eh + i], self.rel[er + i], self.ent[et + i]);
                // ascend score on positive, descend on negative
                self.ent[eh + i] += sign * lr * rv * tv;
                self.rel[er + i] += sign * lr * hv * tv;
                self.ent[et + i] += sign * lr * hv * rv;
            }
        }
        for &e in &[pos.h, pos.t, neg.h, neg.t] {
            normalize_row(&mut self.ent[e * d..(e + 1) * d]);
        }
        loss
    }

    fn n_entities(&self) -> usize {
        self.n_ent
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

// ───────────────────────────── ComplEx ─────────────────────────────

/// ComplEx \[Trouillon et al. 2016\]: `Re(Σ h ∘ r ∘ conj(t))` over complex
/// embeddings, able to model asymmetric relations.
#[derive(Debug, Clone)]
pub struct ComplEx {
    ent_re: Vec<f32>,
    ent_im: Vec<f32>,
    rel_re: Vec<f32>,
    rel_im: Vec<f32>,
    n_ent: usize,
    dim: usize,
}

impl ComplEx {
    /// Fresh random model.
    pub fn new(seed: u64, n_ent: usize, n_rel: usize, dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
        ComplEx {
            ent_re: init_vec(&mut rng, n_ent, dim),
            ent_im: init_vec(&mut rng, n_ent, dim),
            rel_re: init_vec(&mut rng, n_rel, dim),
            rel_im: init_vec(&mut rng, n_rel, dim),
            n_ent,
            dim,
        }
    }
}

impl KgeModel for ComplEx {
    fn name(&self) -> &'static str {
        "ComplEx"
    }

    fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        let (d, eh, er, et) = (self.dim, h * self.dim, r * self.dim, t * self.dim);
        let mut s = 0.0;
        for i in 0..d {
            let (hre, him) = (self.ent_re[eh + i], self.ent_im[eh + i]);
            let (rre, rim) = (self.rel_re[er + i], self.rel_im[er + i]);
            let (tre, tim) = (self.ent_re[et + i], self.ent_im[et + i]);
            s += hre * rre * tre + him * rre * tim + hre * rim * tim - him * rim * tre;
        }
        s
    }

    fn step(&mut self, pos: DenseTriple, neg: DenseTriple, lr: f32, margin: f32) -> f32 {
        let loss = margin + self.score(neg.h, neg.r, neg.t) - self.score(pos.h, pos.r, pos.t);
        if loss <= 0.0 {
            return 0.0;
        }
        let d = self.dim;
        for (triple, sign) in [(pos, 1.0f32), (neg, -1.0)] {
            let (eh, er, et) = (triple.h * d, triple.r * d, triple.t * d);
            for i in 0..d {
                let (hre, him) = (self.ent_re[eh + i], self.ent_im[eh + i]);
                let (rre, rim) = (self.rel_re[er + i], self.rel_im[er + i]);
                let (tre, tim) = (self.ent_re[et + i], self.ent_im[et + i]);
                let g = sign * lr;
                self.ent_re[eh + i] += g * (rre * tre + rim * tim);
                self.ent_im[eh + i] += g * (rre * tim - rim * tre);
                self.ent_re[et + i] += g * (rre * hre - rim * him);
                self.ent_im[et + i] += g * (rre * him + rim * hre);
                self.rel_re[er + i] += g * (hre * tre + him * tim);
                self.rel_im[er + i] += g * (hre * tim - him * tre);
            }
        }
        for &e in &[pos.h, pos.t, neg.h, neg.t] {
            normalize_row(&mut self.ent_re[e * d..(e + 1) * d]);
            normalize_row(&mut self.ent_im[e * d..(e + 1) * d]);
        }
        loss
    }

    fn n_entities(&self) -> usize {
        self.n_ent
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

// ───────────────────────────── RotatE ─────────────────────────────

/// RotatE: relations are rotations in the complex plane, distance
/// `‖h ∘ e^{iθ_r} − t‖²`.
#[derive(Debug, Clone)]
pub struct RotatE {
    ent_re: Vec<f32>,
    ent_im: Vec<f32>,
    phase: Vec<f32>,
    n_ent: usize,
    dim: usize,
}

impl RotatE {
    /// Fresh random model.
    pub fn new(seed: u64, n_ent: usize, n_rel: usize, dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x40);
        RotatE {
            ent_re: init_vec(&mut rng, n_ent, dim),
            ent_im: init_vec(&mut rng, n_ent, dim),
            phase: (0..n_rel * dim)
                .map(|_| rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI))
                .collect(),
            n_ent,
            dim,
        }
    }

    fn dist(&self, h: usize, r: usize, t: usize) -> f32 {
        let (d, eh, er, et) = (self.dim, h * self.dim, r * self.dim, t * self.dim);
        let mut s = 0.0;
        for i in 0..d {
            let (c, sn) = (self.phase[er + i].cos(), self.phase[er + i].sin());
            let (hre, him) = (self.ent_re[eh + i], self.ent_im[eh + i]);
            let ure = hre * c - him * sn - self.ent_re[et + i];
            let uim = hre * sn + him * c - self.ent_im[et + i];
            s += ure * ure + uim * uim;
        }
        s
    }
}

impl KgeModel for RotatE {
    fn name(&self) -> &'static str {
        "RotatE"
    }

    fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        -self.dist(h, r, t)
    }

    fn step(&mut self, pos: DenseTriple, neg: DenseTriple, lr: f32, margin: f32) -> f32 {
        let loss = margin + self.dist(pos.h, pos.r, pos.t) - self.dist(neg.h, neg.r, neg.t);
        if loss <= 0.0 {
            return 0.0;
        }
        let d = self.dim;
        for (triple, sign) in [(pos, 1.0f32), (neg, -1.0)] {
            let (eh, er, et) = (triple.h * d, triple.r * d, triple.t * d);
            for i in 0..d {
                let (c, sn) = (self.phase[er + i].cos(), self.phase[er + i].sin());
                let (hre, him) = (self.ent_re[eh + i], self.ent_im[eh + i]);
                let ure = hre * c - him * sn - self.ent_re[et + i];
                let uim = hre * sn + him * c - self.ent_im[et + i];
                let g = sign * lr;
                self.ent_re[eh + i] -= g * 2.0 * (ure * c + uim * sn);
                self.ent_im[eh + i] -= g * 2.0 * (-ure * sn + uim * c);
                self.ent_re[et + i] += g * 2.0 * ure;
                self.ent_im[et + i] += g * 2.0 * uim;
                self.phase[er + i] -=
                    g * 2.0 * (ure * (-hre * sn - him * c) + uim * (hre * c - him * sn));
            }
        }
        for &e in &[pos.h, pos.t, neg.h, neg.t] {
            normalize_row(&mut self.ent_re[e * d..(e + 1) * d]);
            normalize_row(&mut self.ent_im[e * d..(e + 1) * d]);
        }
        loss
    }

    fn n_entities(&self) -> usize {
        self.n_ent
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pair() -> (DenseTriple, DenseTriple) {
        (
            DenseTriple { h: 0, r: 0, t: 1 },
            DenseTriple { h: 0, r: 0, t: 2 },
        )
    }

    fn check_learning<M: KgeModel>(mut m: M) {
        let (pos, neg) = tiny_pair();
        let before = m.score(pos.h, pos.r, pos.t) - m.score(neg.h, neg.r, neg.t);
        for _ in 0..200 {
            m.step(pos, neg, 0.05, 1.0);
        }
        let after = m.score(pos.h, pos.r, pos.t) - m.score(neg.h, neg.r, neg.t);
        assert!(
            after > before || after > 0.5,
            "{}: margin did not improve ({before} → {after})",
            m.name()
        );
    }

    #[test]
    fn transe_learns_to_separate() {
        check_learning(TransE::new(1, 4, 2, 8));
    }

    #[test]
    fn transr_learns_to_separate() {
        check_learning(TransR::new(1, 4, 2, 8));
    }

    #[test]
    fn distmult_learns_to_separate() {
        check_learning(DistMult::new(1, 4, 2, 8));
    }

    #[test]
    fn complex_learns_to_separate() {
        check_learning(ComplEx::new(1, 4, 2, 8));
    }

    #[test]
    fn rotate_learns_to_separate() {
        check_learning(RotatE::new(1, 4, 2, 8));
    }

    #[test]
    fn satisfied_margin_gives_zero_loss_and_no_update() {
        let mut m = TransE::new(2, 4, 2, 8);
        let (pos, neg) = tiny_pair();
        // train hard first so margin is satisfied
        for _ in 0..500 {
            m.step(pos, neg, 0.05, 1.0);
        }
        let loss = m.step(pos, neg, 0.05, 0.01);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn complex_models_asymmetry() {
        // ComplEx can score (h,r,t) differently from (t,r,h)
        let m = ComplEx::new(5, 4, 2, 8);
        let fwd = m.score(0, 0, 1);
        let bwd = m.score(1, 0, 0);
        assert!((fwd - bwd).abs() > 1e-6);
        // DistMult cannot (symmetric by construction)
        let dm = DistMult::new(5, 4, 2, 8);
        assert!((dm.score(0, 0, 1) - dm.score(1, 0, 0)).abs() < 1e-6);
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        let a = TransE::new(9, 4, 2, 8);
        let b = TransE::new(9, 4, 2, 8);
        assert_eq!(a.score(0, 0, 1), b.score(0, 0, 1));
        let c = TransE::new(10, 4, 2, 8);
        assert_ne!(a.score(0, 0, 1), c.score(0, 0, 1));
    }
}
