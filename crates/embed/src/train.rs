//! SGD training loop with uniform negative sampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::data::{DenseTriple, TripleSet};
use crate::model::KgeModel;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Hinge margin.
    pub margin: f32,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Seed for shuffling and negative sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            lr: 0.05,
            margin: 1.0,
            negatives: 2,
            seed: 0,
        }
    }
}

/// Train a model in place; returns the mean hinge loss per epoch.
pub fn train<M: KgeModel>(model: &mut M, data: &TripleSet, config: &TrainConfig) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_ent = data.n_entities();
    let mut order: Vec<usize> = (0..data.train.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        let mut steps = 0usize;
        for &i in &order {
            let pos = data.train[i];
            for _ in 0..config.negatives {
                let neg = sample_negative(&mut rng, data, pos, n_ent);
                total += model.step(pos, neg, config.lr, config.margin);
                steps += 1;
            }
        }
        history.push(if steps == 0 {
            0.0
        } else {
            total / steps as f32
        });
    }
    history
}

/// Corrupt the head or tail uniformly, retrying a few times to avoid
/// accidentally sampling a known-true triple.
fn sample_negative(
    rng: &mut StdRng,
    data: &TripleSet,
    pos: DenseTriple,
    n_ent: usize,
) -> DenseTriple {
    for _ in 0..10 {
        let corrupt_head = rng.gen_bool(0.5);
        let e = rng.gen_range(0..n_ent);
        let cand = if corrupt_head {
            DenseTriple { h: e, ..pos }
        } else {
            DenseTriple { t: e, ..pos }
        };
        if !data.is_true(cand) && cand != pos {
            return cand;
        }
    }
    // fall back to a possibly-true corruption (rare on sparse graphs)
    DenseTriple {
        t: (pos.t + 1) % n_ent,
        ..pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransE;
    use kg::synth::{movies, Scale};

    fn dataset() -> TripleSet {
        let kg = movies(8, Scale::tiny());
        TripleSet::from_graph(&kg.graph, 3, TripleSet::default_keep)
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = dataset();
        let mut model = TransE::new(1, data.n_entities(), data.n_relations(), 16);
        let cfg = TrainConfig {
            epochs: 30,
            ..Default::default()
        };
        let history = train(&mut model, &data, &cfg);
        assert_eq!(history.len(), 30);
        let early: f32 = history[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = history[history.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "loss should fall: {early} → {late}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = dataset();
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let mut m1 = TransE::new(1, data.n_entities(), data.n_relations(), 8);
        let h1 = train(&mut m1, &data, &cfg);
        let mut m2 = TransE::new(1, data.n_entities(), data.n_relations(), 8);
        let h2 = train(&mut m2, &data, &cfg);
        assert_eq!(h1, h2);
    }

    #[test]
    fn negatives_avoid_known_truths_mostly() {
        let data = dataset();
        let mut rng = StdRng::seed_from_u64(9);
        let pos = data.train[0];
        let mut true_hits = 0;
        for _ in 0..100 {
            let neg = sample_negative(&mut rng, &data, pos, data.n_entities());
            if data.is_true(neg) {
                true_hits += 1;
            }
        }
        assert!(
            true_hits <= 2,
            "negative sampler leaked {true_hits} true triples"
        );
    }
}
