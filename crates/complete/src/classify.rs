//! Triple classification: is a given (h, r, t) true?

use kgembed::data::{DenseTriple, TripleSet};
use kgembed::model::KgeModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link::KgBertSim;

/// Which classification method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifyMethod {
    /// Structural embedding score with a validation-calibrated threshold.
    EmbeddingThreshold,
    /// KG-BERT-sim textual support with a fixed threshold.
    KgBertSim,
    /// Both must agree positive (the multi-task intuition of \[47\]).
    Ensemble,
}

impl ClassifyMethod {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ClassifyMethod::EmbeddingThreshold => "embedding-threshold",
            ClassifyMethod::KgBertSim => "kg-bert-sim",
            ClassifyMethod::Ensemble => "ensemble",
        }
    }

    /// All methods.
    pub fn all() -> [ClassifyMethod; 3] {
        [
            ClassifyMethod::EmbeddingThreshold,
            ClassifyMethod::KgBertSim,
            ClassifyMethod::Ensemble,
        ]
    }
}

/// A calibrated triple classifier.
pub struct TripleClassifier<'a, M: KgeModel> {
    model: &'a M,
    text: &'a KgBertSim,
    /// Embedding-score threshold (calibrated).
    pub threshold: f32,
    /// Textual-support threshold.
    pub text_threshold: f32,
}

impl<'a, M: KgeModel> TripleClassifier<'a, M> {
    /// Calibrate the embedding threshold on the validation split: pick the
    /// midpoint threshold maximizing accuracy on valid-positives vs
    /// random corruptions.
    pub fn calibrate(model: &'a M, text: &'a KgBertSim, data: &TripleSet, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos_scores: Vec<f32> = Vec::new();
        let mut neg_scores: Vec<f32> = Vec::new();
        // tiny datasets may have an empty validation split: calibrate on
        // training positives instead of degenerating to -inf
        let calibration: &[DenseTriple] = if data.valid.is_empty() {
            &data.train
        } else {
            &data.valid
        };
        for &t in calibration.iter().take(100) {
            pos_scores.push(model.score(t.h, t.r, t.t));
            let neg = corrupt(&mut rng, data, t);
            neg_scores.push(model.score(neg.h, neg.r, neg.t));
        }
        let threshold = best_threshold(&pos_scores, &neg_scores);
        TripleClassifier {
            model,
            text,
            threshold,
            text_threshold: 0.7,
        }
    }

    /// Classify one triple.
    pub fn classify(&self, method: ClassifyMethod, t: DenseTriple) -> bool {
        let structural = self.model.score(t.h, t.r, t.t) >= self.threshold;
        let textual = self.text.score(t.h, t.r, t.t) >= self.text_threshold;
        match method {
            ClassifyMethod::EmbeddingThreshold => structural,
            ClassifyMethod::KgBertSim => textual,
            ClassifyMethod::Ensemble => structural && textual,
        }
    }

    /// Accuracy over test positives + equally many random corruptions.
    pub fn evaluate(&self, method: ClassifyMethod, data: &TripleSet, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut correct = 0usize;
        let mut total = 0usize;
        for &t in &data.test {
            if self.classify(method, t) {
                correct += 1;
            }
            total += 1;
            let neg = corrupt(&mut rng, data, t);
            if !self.classify(method, neg) {
                correct += 1;
            }
            total += 1;
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

fn corrupt(rng: &mut StdRng, data: &TripleSet, t: DenseTriple) -> DenseTriple {
    for _ in 0..20 {
        let cand = DenseTriple {
            t: rng.gen_range(0..data.n_entities()),
            ..t
        };
        if !data.is_true(cand) {
            return cand;
        }
    }
    DenseTriple {
        t: (t.t + 1) % data.n_entities(),
        ..t
    }
}

/// Midpoint threshold maximizing balanced accuracy.
fn best_threshold(pos: &[f32], neg: &[f32]) -> f32 {
    if pos.is_empty() && neg.is_empty() {
        return 0.0;
    }
    let mut candidates: Vec<f32> = pos.iter().chain(neg).copied().collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    candidates.dedup();
    let mut best = (f32::NEG_INFINITY, 0.0f64);
    for &c in &candidates {
        let tp = pos.iter().filter(|&&s| s >= c).count() as f64;
        let tn = neg.iter().filter(|&&s| s < c).count() as f64;
        let acc = (tp / pos.len().max(1) as f64 + tn / neg.len().max(1) as f64) / 2.0;
        if acc > best.1 {
            best = (c, acc);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};
    use kgembed::model::TransE;
    use kgembed::train::{train, TrainConfig};
    use kgextract::testgen::entity_surface_forms;
    use slm::Slm;

    fn fixture() -> (kg::Graph, TripleSet, Slm) {
        let kg = movies(111, Scale::default());
        let data = TripleSet::from_graph(&kg.graph, 13, TripleSet::default_keep);
        let sentences: Vec<String> = data
            .train
            .iter()
            .chain(&data.valid)
            .chain(&data.test)
            .map(|t| {
                format!(
                    "{} is {} {}",
                    kg.graph.display_name(data.entities[t.h]),
                    kg::namespace::humanize(kg.graph.label(data.relations[t.r])),
                    kg.graph.display_name(data.entities[t.t])
                )
            })
            .collect();
        let slm = Slm::builder()
            .corpus(sentences.iter().map(String::as_str))
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        (kg.graph, data, slm)
    }

    #[test]
    fn all_methods_beat_chance() {
        let (graph, data, slm) = fixture();
        let kb = KgBertSim::new(&graph, &data, &slm);
        let mut te = TransE::new(3, data.n_entities(), data.n_relations(), 16);
        train(
            &mut te,
            &data,
            &TrainConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let clf = TripleClassifier::calibrate(&te, &kb, &data, 7);
        for method in ClassifyMethod::all() {
            let acc = clf.evaluate(method, &data, 9);
            assert!(acc > 0.55, "{} accuracy {acc}", method.name());
        }
    }

    #[test]
    fn kgbert_sim_is_near_perfect_when_lm_knows_all_facts() {
        // here the LM corpus covers all splits, so textual classification
        // reduces to knowledge lookup — a ceiling check
        let (graph, data, slm) = fixture();
        let kb = KgBertSim::new(&graph, &data, &slm);
        let mut te = TransE::new(3, data.n_entities(), data.n_relations(), 8);
        train(
            &mut te,
            &data,
            &TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let clf = TripleClassifier::calibrate(&te, &kb, &data, 7);
        let acc = clf.evaluate(ClassifyMethod::KgBertSim, &data, 9);
        assert!(acc > 0.9, "textual ceiling {acc}");
    }

    #[test]
    fn threshold_calibration_separates_scores() {
        let pos = [1.0f32, 0.9, 0.8];
        let neg = [0.1f32, 0.2, 0.3];
        let th = best_threshold(&pos, &neg);
        assert!(th > 0.3 && th <= 0.8, "{th}");
    }
}
