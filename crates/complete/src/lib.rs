//! # kgcomplete — KG completion (paper §2.4)
//!
//! The three completion tasks the survey enumerates, each with structural
//! and text-based (LM) methods:
//!
//! * [`classify`] — triple classification: embedding-threshold (calibrated
//!   on the validation split), KG-BERT-sim \[92\] textual scoring, and
//!   their ensemble (the MTL recipe of \[47\]);
//! * [`link`] — link prediction: KG-BERT-sim and SimKGC-style text
//!   scorers, StAR-sim \[80\] (self-adaptive ensemble of text and
//!   structure), and KICGPT-sim \[86\] (training-free LLM reranking of a
//!   structural retriever's candidates);
//! * [`typing`] — entity classification: structure-based (neighbor-type
//!   voting) and text-based (label embedding vs class anchors).

pub mod classify;
pub mod link;
pub mod typing;

pub use classify::{ClassifyMethod, TripleClassifier};
pub use link::{KgBertSim, KicGptSim, StarSim};
pub use typing::{predict_type, TypingMethod};
