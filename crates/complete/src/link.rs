//! Text-based and hybrid link-prediction scorers.
//!
//! All scorers expose `score(h, r, t) -> f32` over the dense ids of a
//! [`kgembed::TripleSet`], so they plug straight into the filtered
//! ranking evaluation ([`kgembed::eval::evaluate_scored`]).

use kgembed::data::TripleSet;
use kgembed::model::KgeModel;
use slm::Slm;

use kg::Graph;

/// KG-BERT-sim \[92\]: score a triple by the LM's support for its
/// verbalization ("head-label relation-label tail-label" treated as a
/// textual sequence).
pub struct KgBertSim {
    /// Verbalized triple prefix per (h, r): `"{head} {relation}"`.
    head_rel: Vec<Vec<String>>,
    tail_labels: Vec<String>,
    support_fn: SupportFn,
    verified_fn: SupportFn,
}

type SupportFn = Box<dyn Fn(&str) -> f64 + Send + Sync>;

impl KgBertSim {
    /// Build from the graph/labels and an LM trained on the KG's
    /// verbalized training split.
    pub fn new(graph: &Graph, data: &TripleSet, slm: &Slm) -> Self {
        let ent: Vec<String> = data
            .entities
            .iter()
            .map(|&e| graph.display_name(e))
            .collect();
        let rel: Vec<String> = data
            .relations
            .iter()
            .map(|&r| kg::namespace::humanize(graph.label(r)))
            .collect();
        let head_rel: Vec<Vec<String>> = ent
            .iter()
            .map(|h| rel.iter().map(|r| format!("{h} is {r}")).collect())
            .collect();
        let knowledge = slm.knowledge().clone();
        let verified = knowledge.clone();
        KgBertSim {
            head_rel,
            tail_labels: ent,
            support_fn: Box::new(move |claim| knowledge.support(claim)),
            verified_fn: Box::new(move |claim| verified.verified_support(claim)),
        }
    }

    fn claim(&self, h: usize, r: usize, t: usize) -> String {
        format!("{} {}", self.head_rel[h][r], self.tail_labels[t])
    }

    /// Plausibility score.
    pub fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        (self.support_fn)(&self.claim(h, r, t)) as f32
    }

    /// Does the LM verifiably know this triple's verbalization? Uses
    /// bidirectional support, so a claim merely word-covered by some
    /// training sentence (e.g. a head doubling as its own tail) does not
    /// count.
    pub fn knows(&self, h: usize, r: usize, t: usize) -> bool {
        (self.verified_fn)(&self.claim(h, r, t)) >= 0.999
    }
}

/// StAR-sim \[80\]: self-adaptive ensemble of a textual scorer and a
/// structural embedding model — the blend weight is chosen by validation
/// MRR, not hand-tuned.
pub struct StarSim<'a, M: KgeModel> {
    text: &'a KgBertSim,
    structure: &'a M,
    /// Blend weight on the textual score, selected on the validation set.
    pub alpha: f32,
    /// Normalization ranges for the structural score.
    s_min: f32,
    s_max: f32,
}

impl<'a, M: KgeModel> StarSim<'a, M> {
    /// Build, calibrating `alpha ∈ {0, 0.25, 0.5, 0.75, 1}` on the
    /// validation split.
    pub fn new(text: &'a KgBertSim, structure: &'a M, data: &TripleSet) -> Self {
        // normalize structural scores to [0,1] using training triples
        let mut s_min = f32::INFINITY;
        let mut s_max = f32::NEG_INFINITY;
        for t in data.train.iter().take(500) {
            let s = structure.score(t.h, t.r, t.t);
            s_min = s_min.min(s);
            s_max = s_max.max(s);
        }
        if !s_min.is_finite() || s_min >= s_max {
            s_min = 0.0;
            s_max = 1.0;
        }
        let mut best_alpha = 0.5f32;
        let mut best_mrr = -1.0f64;
        for &alpha in &[0.0f32, 0.25, 0.5, 0.75, 1.0] {
            let candidate = StarSim {
                text,
                structure,
                alpha,
                s_min,
                s_max,
            };
            // validate on a small slice for speed
            let mut subset = data.clone();
            subset.test = data.valid.iter().copied().take(20).collect();
            let m = kgembed::eval::evaluate_scored(|h, r, t| candidate.score(h, r, t), &subset);
            if m.mrr > best_mrr {
                best_mrr = m.mrr;
                best_alpha = alpha;
            }
        }
        StarSim {
            text,
            structure,
            alpha: best_alpha,
            s_min,
            s_max,
        }
    }

    /// Blended score.
    pub fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        let s = (self.structure.score(h, r, t) - self.s_min) / (self.s_max - self.s_min);
        self.alpha * self.text.score(h, r, t) + (1.0 - self.alpha) * s
    }
}

/// KICGPT-sim \[86\]: training-free completion. A structural retriever
/// proposes the top-k candidates; the LLM reranks them by evidence
/// support for the verbalized candidate triple (in-context knowledge).
pub struct KicGptSim<'a, M: KgeModel> {
    retriever: &'a M,
    text: &'a KgBertSim,
    /// How many retriever candidates the LLM reranks.
    pub k: usize,
}

impl<'a, M: KgeModel> KicGptSim<'a, M> {
    /// Build over a retriever and the textual scorer.
    pub fn new(retriever: &'a M, text: &'a KgBertSim, k: usize) -> Self {
        KicGptSim { retriever, text, k }
    }

    /// Score: retriever score, boosted into a reranked band when the
    /// candidate is in the retriever's top-k for this (h, r) and the LM
    /// finds supporting evidence.
    pub fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        let base = self.retriever.score(h, r, t);
        // top-k test: count candidates scoring above t
        let mut above = 0;
        for cand in 0..self.retriever.n_entities() {
            if cand != t && self.retriever.score(h, r, cand) > base {
                above += 1;
                if above >= self.k {
                    return base; // outside the reranked band
                }
            }
        }
        // inside the band: boost only on decisive LM knowledge (the
        // verified-support bar the Slm itself uses for `knows`) — weak
        // partial word overlap must not shuffle the retriever's ordering
        if self.text.knows(h, r, t) {
            1_000.0 * self.text.score(h, r, t) + base
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};
    use kgembed::data::TripleSet;
    use kgembed::eval::evaluate_scored;
    use kgembed::model::TransE;
    use kgembed::train::{train, TrainConfig};
    use kgextract::testgen::{corpus_sentences, entity_surface_forms};

    struct Fixture {
        graph: Graph,
        data: TripleSet,
        slm: Slm,
    }

    fn fixture() -> Fixture {
        let kg = movies(101, Scale::default());
        let data = TripleSet::from_graph(&kg.graph, 11, TripleSet::default_keep);
        // the LM knows the TRAINING split only (fair: test facts unseen)
        let train_sentences: Vec<String> = data
            .train
            .iter()
            .map(|t| {
                format!(
                    "{} is {} {}",
                    kg.graph.display_name(data.entities[t.h]),
                    kg::namespace::humanize(kg.graph.label(data.relations[t.r])),
                    kg.graph.display_name(data.entities[t.t])
                )
            })
            .collect();
        let _ = corpus_sentences(&kg.graph, &kg.ontology); // doc: full corpus exists
        let slm = Slm::builder()
            .corpus(train_sentences.iter().map(String::as_str))
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        Fixture {
            graph: kg.graph,
            data,
            slm,
        }
    }

    #[test]
    fn kgbert_sim_scores_training_triples_highly() {
        let f = fixture();
        let kb = KgBertSim::new(&f.graph, &f.data, &f.slm);
        let t = f.data.train[0];
        let pos = kb.score(t.h, t.r, t.t);
        let neg = kb.score(t.h, t.r, (t.t + 7) % f.data.n_entities());
        assert!(pos > neg, "{pos} vs {neg}");
        assert!(
            pos > 0.9,
            "training triple should be fully supported: {pos}"
        );
    }

    #[test]
    fn star_picks_a_sensible_alpha_and_does_not_underperform_parts() {
        let f = fixture();
        let kb = KgBertSim::new(&f.graph, &f.data, &f.slm);
        let mut te = TransE::new(5, f.data.n_entities(), f.data.n_relations(), 16);
        train(
            &mut te,
            &f.data,
            &TrainConfig {
                epochs: 25,
                ..Default::default()
            },
        );
        let star = StarSim::new(&kb, &te, &f.data);
        assert!((0.0..=1.0).contains(&star.alpha));
        // evaluate on a small test slice
        let mut small = f.data.clone();
        small.test.truncate(15);
        let m_star = evaluate_scored(|h, r, t| star.score(h, r, t), &small);
        let m_structure = evaluate_scored(|h, r, t| te.score(h, r, t), &small);
        assert!(
            m_star.mrr >= m_structure.mrr * 0.8,
            "ensemble should not collapse: {} vs {}",
            m_star.mrr,
            m_structure.mrr
        );
    }

    #[test]
    fn kicgpt_reranking_beats_raw_retriever() {
        let f = fixture();
        let kb = KgBertSim::new(&f.graph, &f.data, &f.slm);
        let mut te = TransE::new(5, f.data.n_entities(), f.data.n_relations(), 16);
        train(
            &mut te,
            &f.data,
            &TrainConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let kic = KicGptSim::new(&te, &kb, 10);
        let mut small = f.data.clone();
        small.test.truncate(10);
        let m_retriever = evaluate_scored(|h, r, t| te.score(h, r, t), &small);
        let m_kic = evaluate_scored(|h, r, t| kic.score(h, r, t), &small);
        // the LM has not seen test facts, so reranking can't make them
        // win by support — but it must not *hurt* beyond noise, and on
        // hits@10 the band boost should help or tie
        assert!(
            m_kic.hits10 >= m_retriever.hits10 * 0.9,
            "KICGPT degraded hits@10: {} vs {}",
            m_kic.hits10,
            m_retriever.hits10
        );
        assert!(m_kic.mrr.is_finite());
    }
}
