//! Entity classification (typing): predict an entity's class.

use std::collections::BTreeMap;

use kg::namespace as ns;
use kg::term::Sym;
use kg::Graph;
use slm::Slm;

/// Which typing method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypingMethod {
    /// Majority type among entities sharing a relation with this one,
    /// weighted by relation compatibility (structure only).
    NeighborVote,
    /// Embed the entity's label and match against class-name anchors
    /// built from typed entities (text only).
    TextAnchor,
}

impl TypingMethod {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TypingMethod::NeighborVote => "neighbor-vote",
            TypingMethod::TextAnchor => "text-anchor",
        }
    }
}

/// Predict the class of `entity`, ignoring its own `rdf:type` edges
/// (they are the ground truth being predicted).
pub fn predict_type(graph: &Graph, slm: &Slm, method: TypingMethod, entity: Sym) -> Option<String> {
    let ty = graph.pool().get_iri(ns::RDF_TYPE)?;
    match method {
        TypingMethod::NeighborVote => {
            // for each predicate this entity participates in, vote with the
            // types of *other* entities in the same position
            let mut votes: BTreeMap<String, usize> = BTreeMap::new();
            for (p, _) in graph.outgoing(entity) {
                if p == ty {
                    continue;
                }
                for t in graph.match_pattern(kg::TriplePattern {
                    s: None,
                    p: Some(p),
                    o: None,
                }) {
                    if t.s == entity {
                        continue;
                    }
                    for c in graph.types_of(t.s) {
                        if let Some(iri) = graph.resolve(c).as_iri() {
                            *votes.entry(iri.to_string()).or_insert(0) += 1;
                        }
                    }
                }
            }
            for (s, p) in graph.incoming(entity) {
                let _ = s;
                for t in graph.match_pattern(kg::TriplePattern {
                    s: None,
                    p: Some(p),
                    o: None,
                }) {
                    if t.o == entity {
                        continue;
                    }
                    for c in graph.types_of(t.o) {
                        if let Some(iri) = graph.resolve(c).as_iri() {
                            *votes.entry(iri.to_string()).or_insert(0) += 1;
                        }
                    }
                }
            }
            votes
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c)
        }
        TypingMethod::TextAnchor => {
            // class anchors: class label + a few instance names
            let mut anchors: BTreeMap<String, String> = BTreeMap::new();
            for t in graph.match_pattern(kg::TriplePattern {
                s: None,
                p: Some(ty),
                o: None,
            }) {
                if t.s == entity {
                    continue;
                }
                let Some(class) = graph.resolve(t.o).as_iri() else {
                    continue;
                };
                let anchor = anchors
                    .entry(class.to_string())
                    .or_insert_with(|| ns::humanize(ns::local_name(class)));
                if anchor.len() < 120 {
                    anchor.push(' ');
                    anchor.push_str(&graph.display_name(t.s));
                }
            }
            let label = graph.display_name(entity);
            anchors
                .into_iter()
                .map(|(class, anchor)| (class, slm.similarity(&label, &anchor)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c)
        }
    }
}

/// Accuracy of a typing method over all typed synthetic entities.
pub fn evaluate_typing(graph: &Graph, slm: &Slm, method: TypingMethod, limit: usize) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for e in graph.entities().into_iter().take(limit) {
        let Some(iri) = graph.resolve(e).as_iri() else {
            continue;
        };
        if !iri.starts_with(ns::SYNTH_ENTITY) {
            continue;
        }
        let truth: Vec<String> = graph
            .types_of(e)
            .into_iter()
            .filter_map(|c| graph.resolve(c).as_iri().map(str::to_string))
            .collect();
        if truth.is_empty() {
            continue;
        }
        total += 1;
        if let Some(pred) = predict_type(graph, slm, method, e) {
            if truth.contains(&pred) {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::synth::{movies, Scale};

    #[test]
    fn neighbor_vote_beats_chance() {
        let kg = movies(121, Scale::tiny());
        let slm = Slm::builder().build();
        let acc = evaluate_typing(&kg.graph, &slm, TypingMethod::NeighborVote, 40);
        // 6 classes → chance ≈ 0.17
        assert!(acc > 0.3, "neighbor-vote accuracy {acc}");
    }

    #[test]
    fn text_anchor_runs_and_produces_classes() {
        let kg = movies(121, Scale::tiny());
        let slm = Slm::builder().build();
        let e = kg.graph.entities()[0];
        let pred = predict_type(&kg.graph, &slm, TypingMethod::TextAnchor, e);
        if let Some(c) = pred {
            assert!(c.starts_with(ns::SYNTH_VOCAB), "{c}");
        }
    }

    #[test]
    fn methods_have_names() {
        assert_eq!(TypingMethod::NeighborVote.name(), "neighbor-vote");
        assert_eq!(TypingMethod::TextAnchor.name(), "text-anchor");
    }
}
