//! Accuracy vs consistency (§2.6.2's conceptual distinction, made
//! measurable).
//!
//! The paper: *"A KG might contain outdated yet logically coherent
//! information, maintaining high consistency even with low accuracy."*
//! With a reference graph (factual truth) and an ontology (logical
//! contract) both metrics are computable, and the misinformation-only
//! corruption demonstrates exactly the high-consistency/low-accuracy
//! quadrant.

use kg::ontology::Ontology;
use kg::Graph;

use crate::inconsistency::detect_violations;

/// A quality report for a KG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Fraction of relation triples that are factually correct.
    pub accuracy: f64,
    /// `1 − violations / relation-triples`, floored at 0.
    pub consistency: f64,
    /// Number of relation triples considered.
    pub triples: usize,
    /// Number of constraint violations found.
    pub violations: usize,
}

fn relation_triples(g: &Graph) -> Vec<kg::Triple> {
    g.iter()
        .filter(|t| {
            g.resolve(t.p)
                .as_iri()
                .is_some_and(|i| i.starts_with(kg::namespace::SYNTH_VOCAB))
        })
        .collect()
}

/// Factual accuracy of `graph` against `reference` (triples are compared
/// by resolved terms, so differing pools are fine).
pub fn accuracy(graph: &Graph, reference: &Graph) -> f64 {
    let triples = relation_triples(graph);
    if triples.is_empty() {
        return 1.0;
    }
    let correct = triples
        .iter()
        .filter(|t| {
            let (Some(s), Some(p), Some(o)) = (
                reference.pool().get(graph.resolve(t.s)),
                reference.pool().get(graph.resolve(t.p)),
                reference.pool().get(graph.resolve(t.o)),
            ) else {
                return false;
            };
            reference.contains(s, p, o)
        })
        .count();
    correct as f64 / triples.len() as f64
}

/// Logical consistency of `graph` under `onto`.
pub fn consistency(graph: &Graph, onto: &Ontology) -> f64 {
    let n = relation_triples(graph).len();
    if n == 0 {
        return 1.0;
    }
    let v = detect_violations(graph, onto).len();
    (1.0 - v as f64 / n as f64).max(0.0)
}

/// Full report.
pub fn report(graph: &Graph, reference: &Graph, onto: &Ontology) -> QualityReport {
    let triples = relation_triples(graph).len();
    let violations = detect_violations(graph, onto).len();
    QualityReport {
        accuracy: accuracy(graph, reference),
        consistency: consistency(graph, onto),
        triples,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::corrupt::{corrupt, CorruptionPlan};
    use kg::synth::{movies, Scale};

    #[test]
    fn clean_graph_is_accurate_and_consistent() {
        let kg = movies(95, Scale::tiny());
        let r = report(&kg.graph, &kg.graph, &kg.ontology);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.consistency, 1.0);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn misinformation_lowers_accuracy_but_not_consistency() {
        // the paper's key conceptual point, reproduced
        let kg = movies(95, Scale::default());
        let mut g = kg.graph.clone();
        let plan = CorruptionPlan {
            seed: 9,
            misinformation: 15,
            functional: 0,
            range: 0,
            domain: 0,
            disjoint: 0,
            irreflexive: 0,
        };
        corrupt(&mut g, &kg.ontology, &plan);
        let r = report(&g, &kg.graph, &kg.ontology);
        assert!(r.accuracy < 1.0, "accuracy should drop: {}", r.accuracy);
        assert!(
            r.consistency > 0.95,
            "schema-conforming misinformation must stay consistent: {}",
            r.consistency
        );
    }

    #[test]
    fn constraint_violations_lower_consistency() {
        let kg = movies(95, Scale::default());
        let mut g = kg.graph.clone();
        let plan = CorruptionPlan {
            seed: 9,
            misinformation: 0,
            functional: 8,
            range: 8,
            domain: 8,
            disjoint: 4,
            irreflexive: 4,
        };
        corrupt(&mut g, &kg.ontology, &plan);
        let r = report(&g, &kg.graph, &kg.ontology);
        assert!(
            r.consistency < 1.0,
            "consistency should drop: {}",
            r.consistency
        );
        assert!(r.violations > 0);
    }
}
