//! Inconsistency detection (RQ3, §2.6.2).
//!
//! Two detector families:
//!
//! * **Constraint-based** ([`detect_violations`]): scan instance data
//!   against the ontology's declared axioms — functional / inverse-
//!   functional properties, domain/range, class disjointness,
//!   irreflexivity, asymmetry, and max-cardinality restrictions.
//! * **ChatRule-style** ([`mine_rules`] + [`apply_rules`]): mine candidate
//!   logical rules from the KG's structure (inverse-pair and composition
//!   patterns), score them by structural support/confidence *and* LM
//!   semantic plausibility (the ChatRule \[61\] recipe), then flag
//!   instances that violate high-confidence rules.

use std::collections::BTreeMap;

use kg::namespace as ns;
use kg::ontology::Ontology;
use kg::store::{Triple, TriplePattern};
use kg::term::Sym;
use kg::Graph;
use slm::Slm;

/// The kind of constraint violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// Two objects for a functional property.
    Functional,
    /// Two subjects for an inverse-functional property.
    InverseFunctional,
    /// Subject type conflicts with the property's domain.
    Domain,
    /// Object type conflicts with the property's range.
    Range,
    /// An entity typed with two disjoint classes.
    Disjoint,
    /// A self-loop on an irreflexive property.
    Irreflexive,
    /// More values than a max-cardinality restriction allows.
    Cardinality,
    /// A mined-rule violation (ChatRule).
    MinedRule,
}

impl ViolationKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Functional => "functional",
            ViolationKind::InverseFunctional => "inverse-functional",
            ViolationKind::Domain => "domain",
            ViolationKind::Range => "range",
            ViolationKind::Disjoint => "disjoint-types",
            ViolationKind::Irreflexive => "irreflexive",
            ViolationKind::Cardinality => "cardinality",
            ViolationKind::MinedRule => "mined-rule",
        }
    }
}

/// One detected violation with the offending triples.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What was violated.
    pub kind: ViolationKind,
    /// The triples participating in the violation (the later-sorted one
    /// first for pair violations).
    pub triples: Vec<Triple>,
    /// Human-readable description.
    pub message: String,
}

/// Scan a graph for constraint violations against an ontology.
pub fn detect_violations(graph: &Graph, onto: &Ontology) -> Vec<Violation> {
    let mut out = Vec::new();
    let ty = graph.pool().get_iri(ns::RDF_TYPE);

    for (prop, decl) in onto.properties() {
        let Some(p) = graph.pool().get_iri(prop) else {
            continue;
        };
        let triples = graph.match_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        });
        // functional: group by subject
        if decl.traits.functional {
            let mut by_subject: BTreeMap<Sym, Vec<Triple>> = BTreeMap::new();
            for t in &triples {
                by_subject.entry(t.s).or_default().push(*t);
            }
            for (s, ts) in by_subject {
                if ts.len() > 1 {
                    let n = ts.len();
                    out.push(Violation {
                        kind: ViolationKind::Functional,
                        triples: ts,
                        message: format!(
                            "{} has {} values for functional {}",
                            graph.display_name(s),
                            n,
                            ns::local_name(prop)
                        ),
                    });
                }
            }
        }
        if decl.traits.inverse_functional {
            let mut by_object: BTreeMap<Sym, Vec<Triple>> = BTreeMap::new();
            for t in &triples {
                by_object.entry(t.o).or_default().push(*t);
            }
            for (o, ts) in by_object {
                if ts.len() > 1 {
                    out.push(Violation {
                        kind: ViolationKind::InverseFunctional,
                        triples: ts,
                        message: format!(
                            "{} has multiple subjects for inverse-functional {}",
                            graph.display_name(o),
                            ns::local_name(prop)
                        ),
                    });
                }
            }
        }
        if decl.traits.irreflexive {
            for t in &triples {
                if t.s == t.o {
                    out.push(Violation {
                        kind: ViolationKind::Irreflexive,
                        triples: vec![*t],
                        message: format!(
                            "{} is {} itself",
                            graph.display_name(t.s),
                            ns::local_name(prop)
                        ),
                    });
                }
            }
        }
        // domain / range typing checks (an entity violates if it has types
        // and none of them is subsumed by the declared class)
        if let Some(domain) = &decl.domain {
            for t in &triples {
                if violates_typing(graph, onto, t.s, domain) {
                    out.push(Violation {
                        kind: ViolationKind::Domain,
                        triples: vec![*t],
                        message: format!(
                            "subject {} outside domain {} of {}",
                            graph.display_name(t.s),
                            ns::local_name(domain),
                            ns::local_name(prop)
                        ),
                    });
                }
            }
        }
        if let (Some(range), false) = (&decl.range, decl.literal_valued) {
            for t in &triples {
                if graph.resolve(t.o).is_iri() && violates_typing(graph, onto, t.o, range) {
                    out.push(Violation {
                        kind: ViolationKind::Range,
                        triples: vec![*t],
                        message: format!(
                            "object {} outside range {} of {}",
                            graph.display_name(t.o),
                            ns::local_name(range),
                            ns::local_name(prop)
                        ),
                    });
                }
            }
        }
    }

    // disjoint classes
    if let Some(ty) = ty {
        for e in graph.entities() {
            let classes: Vec<String> = graph
                .objects(e, ty)
                .into_iter()
                .filter_map(|c| graph.resolve(c).as_iri().map(str::to_string))
                .collect();
            for (i, a) in classes.iter().enumerate() {
                for b in classes.iter().skip(i + 1) {
                    if onto.are_disjoint(a, b) {
                        out.push(Violation {
                            kind: ViolationKind::Disjoint,
                            triples: vec![],
                            message: format!(
                                "{} typed with disjoint classes {} and {}",
                                graph.display_name(e),
                                ns::local_name(a),
                                ns::local_name(b)
                            ),
                        });
                    }
                }
            }
        }
    }

    // cardinality restrictions
    for r in onto.cardinalities() {
        let (Some(class), Some(p)) = (
            graph.pool().get_iri(&r.class),
            graph.pool().get_iri(&r.property),
        ) else {
            continue;
        };
        for e in graph.instances_of(class) {
            let n = graph.objects(e, p).len();
            if n > r.max {
                out.push(Violation {
                    kind: ViolationKind::Cardinality,
                    triples: graph.match_pattern(TriplePattern {
                        s: Some(e),
                        p: Some(p),
                        o: None,
                    }),
                    message: format!(
                        "{} has {} values of {} (max {})",
                        graph.display_name(e),
                        n,
                        ns::local_name(&r.property),
                        r.max
                    ),
                });
            }
        }
    }

    out
}

fn violates_typing(graph: &Graph, onto: &Ontology, e: Sym, expected: &str) -> bool {
    let types: Vec<String> = graph
        .types_of(e)
        .into_iter()
        .filter_map(|c| graph.resolve(c).as_iri().map(str::to_string))
        .collect();
    if types.is_empty() {
        return false; // untyped entities are not violations
    }
    !types.iter().any(|t| onto.is_subclass_of(t, expected))
}

/// A mined logical rule (ChatRule-style).
#[derive(Debug, Clone, PartialEq)]
pub struct MinedRule {
    /// Rule kind: `"symmetry"` (`p(x,y) → p(y,x)`) or `"composition"`
    /// (`p(x,y) ∧ q(y,z) → r(x,z)`).
    pub kind: &'static str,
    /// Participating predicates.
    pub predicates: Vec<Sym>,
    /// Fraction of instantiations where the head holds.
    pub confidence: f64,
    /// Number of body instantiations observed.
    pub support: usize,
    /// LM semantic-plausibility score of the verbalized rule.
    pub semantic_score: f64,
    /// Verbalized form (what the LM judged).
    pub text: String,
}

/// Mine symmetry and composition rules from a graph, scoring each by
/// structural confidence and LM plausibility. Rules below `min_support`
/// body instantiations are dropped.
pub fn mine_rules(graph: &Graph, slm: &Slm, min_support: usize) -> Vec<MinedRule> {
    let preds: Vec<Sym> = graph
        .predicates()
        .into_iter()
        .map(|(p, _)| p)
        .filter(|&p| {
            graph
                .resolve(p)
                .as_iri()
                .is_some_and(|i| i.starts_with(ns::SYNTH_VOCAB))
        })
        .collect();
    let phrase = |p: Sym| ns::humanize(ns::local_name(graph.label(p)));
    let mut out = Vec::new();
    // symmetry: p(x,y) → p(y,x)
    for &p in &preds {
        let triples = graph.match_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        });
        let object_valued: Vec<&Triple> = triples
            .iter()
            .filter(|t| graph.resolve(t.o).is_iri())
            .collect();
        if object_valued.len() < min_support {
            continue;
        }
        let holds = object_valued
            .iter()
            .filter(|t| graph.contains(t.o, p, t.s))
            .count();
        let confidence = holds as f64 / object_valued.len() as f64;
        let text = format!("if x {} y then y {} x", phrase(p), phrase(p));
        let semantic_score = f64::from(slm.similarity(&phrase(p), &phrase(p))); // = 1.0
        out.push(MinedRule {
            kind: "symmetry",
            predicates: vec![p],
            confidence,
            support: object_valued.len(),
            semantic_score,
            text,
        });
    }
    // composition: p(x,y) ∧ p(y,z) → p(x,z) (transitivity as the common case)
    for &p in &preds {
        let triples = graph.match_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        });
        let mut bodies = 0usize;
        let mut heads = 0usize;
        for t in triples.iter().filter(|t| graph.resolve(t.o).is_iri()) {
            for o2 in graph.objects(t.o, p) {
                bodies += 1;
                if graph.contains(t.s, p, o2) {
                    heads += 1;
                }
            }
        }
        if bodies >= min_support {
            let text = format!(
                "if x {} y and y {} z then x {} z",
                phrase(p),
                phrase(p),
                phrase(p)
            );
            out.push(MinedRule {
                kind: "transitivity",
                predicates: vec![p],
                confidence: heads as f64 / bodies as f64,
                support: bodies,
                semantic_score: slm.score(&text).exp2().min(1.0),
                text,
            });
        }
    }
    out.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.support.cmp(&a.support))
            .then(a.text.cmp(&b.text))
    });
    out
}

/// Apply high-confidence mined rules: instances where the body holds but
/// the head does not are flagged as [`ViolationKind::MinedRule`]
/// inconsistencies (the ChatRule usage for error detection).
pub fn apply_rules(graph: &Graph, rules: &[MinedRule], min_confidence: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in rules
        .iter()
        .filter(|r| r.confidence >= min_confidence && r.confidence < 1.0)
    {
        let p = rule.predicates[0];
        match rule.kind {
            "symmetry" => {
                for t in graph.match_pattern(TriplePattern {
                    s: None,
                    p: Some(p),
                    o: None,
                }) {
                    if graph.resolve(t.o).is_iri() && !graph.contains(t.o, p, t.s) {
                        out.push(Violation {
                            kind: ViolationKind::MinedRule,
                            triples: vec![t],
                            message: format!(
                                "missing symmetric counterpart of {} → {} ({})",
                                graph.display_name(t.s),
                                graph.display_name(t.o),
                                rule.text
                            ),
                        });
                    }
                }
            }
            "transitivity" => {
                for t in graph.match_pattern(TriplePattern {
                    s: None,
                    p: Some(p),
                    o: None,
                }) {
                    if !graph.resolve(t.o).is_iri() {
                        continue;
                    }
                    for o2 in graph.objects(t.o, p) {
                        if o2 != t.s && !graph.contains(t.s, p, o2) {
                            out.push(Violation {
                                kind: ViolationKind::MinedRule,
                                triples: vec![t, Triple::new(t.o, p, o2)],
                                message: format!(
                                    "missing transitive edge {} → {} ({})",
                                    graph.display_name(t.s),
                                    graph.display_name(o2),
                                    rule.text
                                ),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::corrupt::{corrupt, CorruptionPlan, DefectKind};
    use kg::synth::{geo, movies, Scale};

    #[test]
    fn clean_kg_has_no_constraint_violations() {
        let kg = movies(91, Scale::tiny());
        let v = detect_violations(&kg.graph, &kg.ontology);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn detector_finds_each_injected_violation_kind() {
        let kg = movies(91, Scale::default());
        let mut g = kg.graph.clone();
        let plan = CorruptionPlan {
            seed: 5,
            misinformation: 0,
            functional: 4,
            range: 4,
            domain: 4,
            disjoint: 2,
            irreflexive: 2,
        };
        let defects = corrupt(&mut g, &kg.ontology, &plan);
        assert!(!defects.is_empty());
        let violations = detect_violations(&g, &kg.ontology);
        let has = |k: ViolationKind| violations.iter().any(|v| v.kind == k);
        for d in &defects {
            let expected = match d.kind {
                DefectKind::FunctionalViolation => ViolationKind::Functional,
                DefectKind::RangeViolation => ViolationKind::Range,
                DefectKind::DomainViolation => ViolationKind::Domain,
                DefectKind::DisjointTypes => ViolationKind::Disjoint,
                DefectKind::IrreflexiveViolation => ViolationKind::Irreflexive,
                DefectKind::Misinformation => continue,
            };
            assert!(has(expected), "no {expected:?} violation found for {d:?}");
        }
    }

    #[test]
    fn detector_recall_on_injected_defects_is_high() {
        let kg = movies(92, Scale::default());
        let mut g = kg.graph.clone();
        let plan = CorruptionPlan {
            seed: 6,
            misinformation: 0,
            functional: 5,
            range: 5,
            domain: 5,
            disjoint: 3,
            irreflexive: 3,
        };
        let defects = corrupt(&mut g, &kg.ontology, &plan);
        let violations = detect_violations(&g, &kg.ontology);
        // every injected defect's triple shows up in some violation
        let mut caught = 0;
        for d in &defects {
            let hit = violations.iter().any(|v| {
                v.triples.contains(&d.triple)
                    || matches!(d.kind, DefectKind::DisjointTypes)
                        && v.kind == ViolationKind::Disjoint
            });
            if hit {
                caught += 1;
            }
        }
        assert!(
            caught as f64 / defects.len() as f64 > 0.9,
            "caught {caught}/{}",
            defects.len()
        );
    }

    #[test]
    fn mined_rules_find_symmetry_in_geo() {
        let kg = geo(13, Scale::tiny());
        let slm = Slm::builder().build();
        let rules = mine_rules(&kg.graph, &slm, 3);
        let borders = rules
            .iter()
            .find(|r| r.kind == "symmetry" && r.text.contains("border"))
            .expect("borders symmetry rule");
        assert!(
            borders.confidence > 0.99,
            "borders is fully symmetric in the generator: {}",
            borders.confidence
        );
    }

    #[test]
    fn applied_rules_flag_broken_symmetry() {
        let kg = geo(13, Scale::tiny());
        let mut g = kg.graph.clone();
        let slm = Slm::builder().build();
        // break one symmetric edge
        let borders = g
            .pool()
            .get_iri(&format!("{}borders", ns::SYNTH_VOCAB))
            .unwrap();
        let t = g
            .match_pattern(TriplePattern {
                s: None,
                p: Some(borders),
                o: None,
            })
            .into_iter()
            .next()
            .unwrap();
        g.remove(t.o, borders, t.s);
        let rules = mine_rules(&g, &slm, 3);
        let violations = apply_rules(&g, &rules, 0.8);
        assert!(
            violations.iter().any(|v| v.triples.contains(&t)),
            "broken symmetry not flagged: {violations:?}"
        );
    }

    #[test]
    fn applied_transitivity_rules_flag_missing_closures() {
        // a small located-in chain whose transitive closure is mostly
        // materialized: the one missing edge gets flagged
        let mut g = kg::Graph::new();
        let p_iri = format!("{}locatedIn", ns::SYNTH_VOCAB);
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("b", "d")] {
            g.insert_iri(
                &format!("{}{}", ns::SYNTH_ENTITY, a),
                &p_iri,
                &format!("{}{}", ns::SYNTH_ENTITY, b),
            );
        }
        // a→d missing: body a→b, b→d holds but head a→d absent
        let slm = Slm::builder().build();
        let rules = mine_rules(&g, &slm, 2);
        let trans = rules
            .iter()
            .find(|r| r.kind == "transitivity")
            .expect("transitivity mined");
        assert!(
            trans.confidence >= 0.5 && trans.confidence < 1.0,
            "{}",
            trans.confidence
        );
        let violations = apply_rules(&g, &rules, 0.5);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("missing transitive edge")),
            "{violations:?}"
        );
    }

    #[test]
    fn cardinality_violations_detected() {
        let kg = movies(93, Scale::tiny());
        let mut g = kg.graph.clone();
        // give one film 4 genres (restriction: max 3)
        let film_class = g
            .pool()
            .get_iri(&format!("{}Film", ns::SYNTH_VOCAB))
            .unwrap();
        let has_genre = g
            .pool()
            .get_iri(&format!("{}hasGenre", ns::SYNTH_VOCAB))
            .unwrap();
        let genre_class = g
            .pool()
            .get_iri(&format!("{}Genre", ns::SYNTH_VOCAB))
            .unwrap();
        let film = g.instances_of(film_class)[0];
        for genre in g.instances_of(genre_class) {
            g.insert(film, has_genre, genre);
        }
        let violations = detect_violations(&g, &kg.ontology);
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::Cardinality));
    }
}
