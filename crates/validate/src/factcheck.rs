//! Triple fact-checking (RQ4, §2.6.1).
//!
//! All three method families verbalize the candidate triple; they differ
//! in what evidence reaches the verifier:
//!
//! * [`FactCheckMethod::VerbalizeLlm`] — the LM's parametric knowledge
//!   only (what \[7, 13\] do with ChatGPT);
//! * [`FactCheckMethod::KnowledgeAugmented`] — retrieval from an external
//!   trusted corpus is added to the prompt (FactLLaMA \[20\]);
//! * [`FactCheckMethod::ToolAugmented`] — a structured KG-lookup tool
//!   supplies the strongest evidence (FacTool \[19\]): functional-property
//!   conflicts with a trusted reference KG are decisive.

use kg::ontology::Ontology;
use kg::store::Triple;
use kg::Graph;
use slm::task::VerdictLabel;
use slm::{EvidenceIndex, Slm};

/// Which fact-checking method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactCheckMethod {
    /// Verbalize the triple and ask the LM (parametric only).
    VerbalizeLlm,
    /// Add retrieved trusted-corpus evidence to the prompt.
    KnowledgeAugmented,
    /// Query a trusted reference KG as a tool.
    ToolAugmented,
}

impl FactCheckMethod {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FactCheckMethod::VerbalizeLlm => "verbalize+llm",
            FactCheckMethod::KnowledgeAugmented => "knowledge-augmented",
            FactCheckMethod::ToolAugmented => "tool-augmented",
        }
    }

    /// All methods, for sweeps.
    pub fn all() -> [FactCheckMethod; 3] {
        [
            FactCheckMethod::VerbalizeLlm,
            FactCheckMethod::KnowledgeAugmented,
            FactCheckMethod::ToolAugmented,
        ]
    }
}

/// A fact-checking engine bound to an LM and (optionally) trusted
/// external knowledge.
pub struct FactChecker<'a> {
    slm: &'a Slm,
    ontology: &'a Ontology,
    /// Trusted external corpus (verbalized reference KG) for the
    /// knowledge-augmented method.
    trusted_corpus: Option<EvidenceIndex>,
    /// Trusted reference graph for the tool-augmented method.
    reference: Option<&'a Graph>,
}

impl<'a> FactChecker<'a> {
    /// A checker with parametric knowledge only.
    pub fn new(slm: &'a Slm, ontology: &'a Ontology) -> Self {
        FactChecker {
            slm,
            ontology,
            trusted_corpus: None,
            reference: None,
        }
    }

    /// Attach a trusted corpus (for [`FactCheckMethod::KnowledgeAugmented`]).
    pub fn with_trusted_corpus<'s>(mut self, sentences: impl IntoIterator<Item = &'s str>) -> Self {
        self.trusted_corpus = Some(EvidenceIndex::from_sentences(sentences));
        self
    }

    /// Attach a trusted reference graph (for [`FactCheckMethod::ToolAugmented`]).
    pub fn with_reference(mut self, reference: &'a Graph) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Verbalize a triple of `graph` for checking.
    pub fn verbalize(&self, graph: &Graph, t: Triple) -> String {
        let p_iri = graph.resolve(t.p).as_iri().unwrap_or("");
        kgextract::testgen::verbalize_triple(graph, self.ontology, t.s, p_iri, t.o)
    }

    /// Check one triple; `true` = judged factual.
    pub fn check(&self, method: FactCheckMethod, graph: &Graph, t: Triple) -> bool {
        let claim = self.verbalize(graph, t);
        match method {
            FactCheckMethod::VerbalizeLlm => {
                self.slm.verify(&claim, &[]).label == VerdictLabel::Supported
            }
            FactCheckMethod::KnowledgeAugmented => {
                let context: Vec<String> = self
                    .trusted_corpus
                    .as_ref()
                    .map(|idx| {
                        idx.retrieve(&claim, 3)
                            .into_iter()
                            .map(|r| r.text)
                            .collect()
                    })
                    .unwrap_or_default();
                self.slm.verify(&claim, &context).label == VerdictLabel::Supported
            }
            FactCheckMethod::ToolAugmented => {
                let Some(reference) = self.reference else {
                    // degrade to knowledge-augmented behaviour
                    return self.check(FactCheckMethod::KnowledgeAugmented, graph, t);
                };
                // tool call 1: exact lookup in the reference KG
                if let (Some(s), Some(p), Some(o)) = (
                    reference.pool().get(graph.resolve(t.s)),
                    reference.pool().get(graph.resolve(t.p)),
                    reference.pool().get(graph.resolve(t.o)),
                ) {
                    if reference.contains(s, p, o) {
                        return true;
                    }
                    // tool call 2: functional conflict — the reference has a
                    // *different* object for a functional property
                    if let Some(p_iri) = graph.resolve(t.p).as_iri() {
                        if self
                            .ontology
                            .property(p_iri)
                            .is_some_and(|d| d.traits.functional)
                            && !reference.objects(s, p).is_empty()
                        {
                            return false;
                        }
                    }
                }
                // fall back to the LM with retrieved evidence
                self.check(FactCheckMethod::KnowledgeAugmented, graph, t)
            }
        }
    }
}

/// Binary-classification counts for a fact-checking run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Corrupted triples correctly flagged false.
    pub true_positives: usize,
    /// Clean triples wrongly flagged false.
    pub false_positives: usize,
    /// Corrupted triples missed.
    pub false_negatives: usize,
    /// Clean triples correctly passed.
    pub true_negatives: usize,
}

impl CheckStats {
    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.false_negatives + self.true_negatives;
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// F1 on the "corrupted" class.
    pub fn f1(&self) -> f64 {
        let p =
            self.true_positives as f64 / (self.true_positives + self.false_positives).max(1) as f64;
        let r =
            self.true_positives as f64 / (self.true_positives + self.false_negatives).max(1) as f64;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluate a method: `corrupted` is the graph under test, `defect_triples`
/// the injected-misinformation ground truth, `sample_clean` how many clean
/// triples to include as negatives.
pub fn evaluate_method(
    checker: &FactChecker<'_>,
    method: FactCheckMethod,
    corrupted: &Graph,
    defect_triples: &[Triple],
    sample_clean: usize,
) -> CheckStats {
    let mut stats = CheckStats::default();
    for &t in defect_triples {
        if checker.check(method, corrupted, t) {
            stats.false_negatives += 1;
        } else {
            stats.true_positives += 1;
        }
    }
    let clean: Vec<Triple> = corrupted
        .iter()
        .filter(|t| {
            corrupted
                .resolve(t.p)
                .as_iri()
                .is_some_and(|i| i.starts_with(kg::namespace::SYNTH_VOCAB))
                && corrupted.resolve(t.o).is_iri()
                && !defect_triples.contains(t)
        })
        .take(sample_clean)
        .collect();
    for t in clean {
        if checker.check(method, corrupted, t) {
            stats.true_negatives += 1;
        } else {
            stats.false_positives += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg::corrupt::{corrupt, CorruptionPlan, DefectKind};
    use kg::synth::{movies, Scale};
    use kgextract::testgen::{corpus_sentences, entity_surface_forms};

    struct Fixture {
        clean: Graph,
        corrupted: Graph,
        onto: Ontology,
        misinformation: Vec<Triple>,
        slm: Slm,
        corpus: Vec<String>,
    }

    fn fixture() -> Fixture {
        let kg = movies(81, Scale::default());
        let mut corrupted = kg.graph.clone();
        let plan = CorruptionPlan {
            seed: 3,
            misinformation: 12,
            functional: 0,
            range: 0,
            domain: 0,
            disjoint: 0,
            irreflexive: 0,
        };
        let defects = corrupt(&mut corrupted, &kg.ontology, &plan);
        let misinformation: Vec<Triple> = defects
            .iter()
            .filter(|d| d.kind == DefectKind::Misinformation)
            .map(|d| d.triple)
            .collect();
        let corpus = corpus_sentences(&kg.graph, &kg.ontology);
        // the LM trained on the CLEAN corpus (its parametric knowledge is
        // the uncorrupted world)
        let slm = Slm::builder()
            .corpus(corpus.iter().map(String::as_str))
            .entity_names(entity_surface_forms(&kg.graph).iter().map(String::as_str))
            .build();
        Fixture {
            clean: kg.graph,
            corrupted,
            onto: kg.ontology,
            misinformation,
            slm,
            corpus,
        }
    }

    #[test]
    fn all_methods_beat_coin_flip_and_augmentation_helps() {
        let f = fixture();
        let checker = FactChecker::new(&f.slm, &f.onto)
            .with_trusted_corpus(f.corpus.iter().map(String::as_str))
            .with_reference(&f.clean);
        let mut accs = Vec::new();
        for method in FactCheckMethod::all() {
            let stats = evaluate_method(&checker, method, &f.corrupted, &f.misinformation, 30);
            accs.push((method.name(), stats.accuracy()));
            assert!(
                stats.accuracy() > 0.5,
                "{} accuracy {} not better than chance",
                method.name(),
                stats.accuracy()
            );
        }
        // the paper's qualitative claim: external knowledge ≥ parametric
        let plain = accs[0].1;
        let tool = accs[2].1;
        assert!(tool >= plain, "tool-augmented {tool} < plain {plain}");
    }

    #[test]
    fn tool_augmented_catches_functional_swaps_exactly() {
        let f = fixture();
        let checker = FactChecker::new(&f.slm, &f.onto).with_reference(&f.clean);
        // functional misinformation (directedBy/producedBy swaps) must be
        // flagged with certainty by the tool
        for &t in &f.misinformation {
            let p_iri = f.corrupted.resolve(t.p).as_iri().unwrap();
            if f.onto.property(p_iri).is_some_and(|d| d.traits.functional) {
                assert!(
                    !checker.check(FactCheckMethod::ToolAugmented, &f.corrupted, t),
                    "missed functional swap {t:?}"
                );
            }
        }
    }

    #[test]
    fn clean_triples_pass_the_tool_check() {
        let f = fixture();
        let checker = FactChecker::new(&f.slm, &f.onto).with_reference(&f.clean);
        let clean_triple = f
            .corrupted
            .iter()
            .find(|t| {
                f.corrupted
                    .resolve(t.p)
                    .as_iri()
                    .is_some_and(|i| i.starts_with(kg::namespace::SYNTH_VOCAB))
                    && f.corrupted.resolve(t.o).is_iri()
                    && !f.misinformation.contains(t)
            })
            .expect("clean triple exists");
        assert!(checker.check(FactCheckMethod::ToolAugmented, &f.corrupted, clean_triple));
    }

    #[test]
    fn stats_math() {
        let s = CheckStats {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 2,
            true_negatives: 8,
        };
        assert!((s.accuracy() - 0.8).abs() < 1e-9);
        assert!((s.f1() - 0.8).abs() < 1e-9);
        assert_eq!(CheckStats::default().accuracy(), 0.0);
    }
}
