//! # kgvalidate — KG validation (paper §2.6)
//!
//! The survey's starred, previously-unsurveyed category: using LLMs to
//! keep KGs accurate and consistent.
//!
//! * [`factcheck`] — Research Question 4: triple fact-checking by three
//!   method families — plain verbalize-and-ask \[7, 13\], knowledge-
//!   augmented checking à la FactLLaMA \[20\], and tool-augmented checking
//!   à la FacTool \[19\] (the "tool" is structured KG lookup);
//! * [`inconsistency`] — Research Question 3: constraint-based detection
//!   (functional / inverse-functional / domain / range / disjointness /
//!   irreflexive / cardinality) plus ChatRule-style \[61\] rule mining
//!   that combines structural support with LM semantic plausibility;
//! * [`quality`] — the accuracy-vs-consistency distinction the paper
//!   draws (a KG can be consistent yet inaccurate): both metrics,
//!   computed against a reference graph and an ontology.

pub mod factcheck;
pub mod inconsistency;
pub mod quality;

pub use factcheck::{FactCheckMethod, FactChecker};
pub use inconsistency::{detect_violations, mine_rules, MinedRule, Violation, ViolationKind};
pub use quality::{accuracy, consistency, QualityReport};
