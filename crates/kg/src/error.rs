//! Error taxonomy for the `kg` crate.

use std::fmt;

/// Errors produced by KG parsing, storage, and generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgError {
    /// A syntax error while parsing Turtle / N-Triples input.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A term id that does not belong to the pool it was resolved against.
    UnknownSym(u32),
    /// An IRI that is not well formed under our (pragmatic) IRI rules.
    InvalidIri(String),
    /// A literal whose lexical form does not match its datatype.
    InvalidLiteral {
        /// The lexical form that failed to parse.
        lexical: String,
        /// The datatype IRI it was checked against.
        datatype: String,
    },
    /// Generator configuration that cannot produce a valid KG.
    InvalidConfig(String),
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            KgError::UnknownSym(id) => write!(f, "unknown term id {id}"),
            KgError::InvalidIri(iri) => write!(f, "invalid IRI: {iri}"),
            KgError::InvalidLiteral { lexical, datatype } => {
                write!(f, "literal {lexical:?} is not a valid {datatype}")
            }
            KgError::InvalidConfig(msg) => write!(f, "invalid generator config: {msg}"),
        }
    }
}

impl std::error::Error for KgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, KgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error_mentions_position() {
        let e = KgError::Parse {
            line: 3,
            column: 14,
            message: "expected '.'".into(),
        };
        let s = e.to_string();
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("expected '.'"), "{s}");
    }

    #[test]
    fn display_other_variants() {
        assert!(KgError::UnknownSym(7).to_string().contains('7'));
        assert!(KgError::InvalidIri("x y".into())
            .to_string()
            .contains("x y"));
        let lit = KgError::InvalidLiteral {
            lexical: "abc".into(),
            datatype: "xsd:integer".into(),
        };
        assert!(lit.to_string().contains("abc"));
        assert!(KgError::InvalidConfig("n=0".into())
            .to_string()
            .contains("n=0"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(KgError::UnknownSym(1));
        assert!(!e.to_string().is_empty());
    }
}
