//! RDF-style terms and the interning pool.
//!
//! All IRIs, literals, and blank nodes are interned into a [`TermPool`],
//! yielding compact [`Sym`] ids (`u32`). Hot paths throughout the workspace
//! (indexes, joins, embedding training) operate on `Sym` only; the string
//! forms are resolved at the edges (parsing, serialization, verbalization).

use std::collections::HashMap;
use std::fmt;

use crate::error::{KgError, Result};

/// An interned term id. Cheap to copy, hash, and compare; ordered by
/// interning sequence, which is stable for a deterministically built pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index into the owning pool.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A literal value with optional datatype or language tag.
///
/// Exactly one of `datatype` / `language` may be set; a plain string literal
/// has neither.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, e.g. `"42"` or `"Berlin"`.
    pub lexical: String,
    /// Datatype IRI, e.g. `http://www.w3.org/2001/XMLSchema#integer`.
    pub datatype: Option<String>,
    /// BCP-47 language tag, e.g. `en`.
    pub language: Option<String>,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn string(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal {
            lexical: value.to_string(),
            datatype: Some(crate::namespace::XSD_INTEGER.to_string()),
            language: None,
        }
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal {
            lexical: format!("{value}"),
            datatype: Some(crate::namespace::XSD_DOUBLE.to_string()),
            language: None,
        }
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal {
            lexical: value.to_string(),
            datatype: Some(crate::namespace::XSD_BOOLEAN.to_string()),
            language: None,
        }
    }

    /// A language-tagged string literal.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(tag.into()),
        }
    }

    /// Parse the lexical form as an integer if the datatype says so.
    pub fn as_integer(&self) -> Option<i64> {
        match self.datatype.as_deref() {
            Some(crate::namespace::XSD_INTEGER) => self.lexical.parse().ok(),
            _ => None,
        }
    }

    /// Parse the lexical form as a double for numeric datatypes.
    pub fn as_double(&self) -> Option<f64> {
        match self.datatype.as_deref() {
            Some(crate::namespace::XSD_DOUBLE) | Some(crate::namespace::XSD_INTEGER) => {
                self.lexical.parse().ok()
            }
            _ => None,
        }
    }
}

/// An RDF term: IRI, literal, or blank node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored in full form.
    Iri(String),
    /// A literal with optional datatype / language tag.
    Literal(Literal),
    /// A blank node with a local label.
    Blank(String),
}

impl Term {
    /// Shorthand for an IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Shorthand for a plain string literal term.
    pub fn lit(s: impl Into<String>) -> Self {
        Term::Literal(Literal::string(s))
    }

    /// Shorthand for an integer literal term.
    pub fn int(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    /// Is this term an IRI?
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Is this term a literal?
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI string, if this is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal, if this is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// A human-readable label: the IRI local name, the literal lexical form,
    /// or the blank label. Used heavily by verbalization.
    pub fn label(&self) -> &str {
        match self {
            Term::Iri(s) => crate::namespace::local_name(s),
            Term::Literal(l) => &l.lexical,
            Term::Blank(b) => b,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(l) => {
                write!(f, "{:?}", l.lexical)?;
                if let Some(dt) = &l.datatype {
                    write!(f, "^^<{dt}>")?;
                } else if let Some(tag) = &l.language {
                    write!(f, "@{tag}")?;
                }
                Ok(())
            }
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

/// An interning pool mapping [`Term`]s to dense [`Sym`] ids and back.
///
/// Interning order is deterministic given a deterministic insertion order,
/// which the rest of the workspace relies on for reproducible outputs.
#[derive(Debug, Default, Clone)]
pub struct TermPool {
    terms: Vec<Term>,
    lookup: HashMap<Term, Sym>,
}

impl TermPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id (existing or fresh).
    pub fn intern(&mut self, term: Term) -> Sym {
        if let Some(&sym) = self.lookup.get(&term) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.terms.len()).expect("term pool overflow"));
        self.terms.push(term.clone());
        self.lookup.insert(term, sym);
        sym
    }

    /// Intern an IRI given as a string.
    pub fn intern_iri(&mut self, iri: impl Into<String>) -> Sym {
        self.intern(Term::Iri(iri.into()))
    }

    /// Intern a plain string literal.
    pub fn intern_str(&mut self, s: impl Into<String>) -> Sym {
        self.intern(Term::lit(s))
    }

    /// Intern an integer literal.
    pub fn intern_int(&mut self, v: i64) -> Sym {
        self.intern(Term::int(v))
    }

    /// Look up a term without interning it.
    pub fn get(&self, term: &Term) -> Option<Sym> {
        self.lookup.get(term).copied()
    }

    /// Look up an IRI without interning it.
    pub fn get_iri(&self, iri: &str) -> Option<Sym> {
        self.lookup.get(&Term::Iri(iri.to_string())).copied()
    }

    /// Resolve an id back to its term. Panics on a foreign id; use
    /// [`TermPool::try_resolve`] for fallible resolution.
    pub fn resolve(&self, sym: Sym) -> &Term {
        &self.terms[sym.index()]
    }

    /// Fallible resolution of an id to its term.
    pub fn try_resolve(&self, sym: Sym) -> Result<&Term> {
        self.terms
            .get(sym.index())
            .ok_or(KgError::UnknownSym(sym.0))
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(Sym, &Term)` in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (Sym(i as u32), t))
    }

    /// Human-readable label for an id (local name / lexical form).
    pub fn label(&self, sym: Sym) -> &str {
        self.resolve(sym).label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = TermPool::new();
        let a = pool.intern_iri("http://ex.org/a");
        let b = pool.intern_iri("http://ex.org/b");
        let a2 = pool.intern_iri("http://ex.org/a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut pool = TermPool::new();
        let t = Term::lit("hello");
        let s = pool.intern(t.clone());
        assert_eq!(pool.resolve(s), &t);
        assert_eq!(pool.get(&t), Some(s));
    }

    #[test]
    fn try_resolve_rejects_foreign_ids() {
        let pool = TermPool::new();
        assert_eq!(pool.try_resolve(Sym(0)), Err(KgError::UnknownSym(0)));
    }

    #[test]
    fn literals_distinguish_datatype_and_language() {
        let mut pool = TermPool::new();
        let plain = pool.intern(Term::lit("x"));
        let tagged = pool.intern(Term::Literal(Literal::lang("x", "en")));
        let typed = pool.intern(Term::Literal(Literal {
            lexical: "x".into(),
            datatype: Some("http://ex.org/dt".into()),
            language: None,
        }));
        assert_ne!(plain, tagged);
        assert_ne!(plain, typed);
        assert_ne!(tagged, typed);
    }

    #[test]
    fn integer_literal_parses_back() {
        let l = Literal::integer(-42);
        assert_eq!(l.as_integer(), Some(-42));
        assert_eq!(l.as_double(), Some(-42.0));
        assert_eq!(Literal::string("7").as_integer(), None);
    }

    #[test]
    fn labels_use_local_names() {
        assert_eq!(Term::iri("http://ex.org/vocab#Person").label(), "Person");
        assert_eq!(Term::iri("http://ex.org/people/alice").label(), "alice");
        assert_eq!(Term::lit("Alice").label(), "Alice");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://e/a").to_string(), "<http://e/a>");
        assert_eq!(Term::lit("hi").to_string(), "\"hi\"");
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
        let tagged = Term::Literal(Literal::lang("hi", "en"));
        assert_eq!(tagged.to_string(), "\"hi\"@en");
    }

    #[test]
    fn pool_iteration_in_interning_order() {
        let mut pool = TermPool::new();
        pool.intern_iri("http://e/1");
        pool.intern_iri("http://e/2");
        let ids: Vec<u32> = pool.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
