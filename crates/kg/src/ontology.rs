//! Ontology / schema model.
//!
//! An [`Ontology`] describes the vocabulary of a KG: classes with a
//! subsumption hierarchy, properties with domains/ranges and characteristic
//! axioms (functional, symmetric, …), class disjointness, and cardinality
//! restrictions. It is the contract that `kgvalidate` checks instance data
//! against and that `kgonto` learns from text.
//!
//! The model is string-keyed (full IRIs) so it is independent of any
//! particular [`Graph`]'s id space; [`Ontology::to_graph`] /
//! [`Ontology::from_graph`] convert to and from an RDF representation.

use std::collections::{BTreeMap, BTreeSet};

use crate::namespace as ns;
use crate::store::Graph;
use crate::term::Term;

/// A class declaration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassDecl {
    /// Human-readable label.
    pub label: Option<String>,
    /// Documentation comment.
    pub comment: Option<String>,
}

/// Characteristic axioms a property may carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropertyTraits {
    /// At most one object per subject.
    pub functional: bool,
    /// At most one subject per object.
    pub inverse_functional: bool,
    /// `p(x,y) ⇒ p(y,x)`.
    pub symmetric: bool,
    /// `p(x,y) ∧ p(y,z) ⇒ p(x,z)`.
    pub transitive: bool,
    /// `p(x,x)` is forbidden.
    pub irreflexive: bool,
    /// `p(x,y) ⇒ ¬p(y,x)` for `x ≠ y`.
    pub asymmetric: bool,
}

/// A property declaration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropertyDecl {
    /// Expected subject class (IRI), if constrained.
    pub domain: Option<String>,
    /// Expected object class (IRI) — `None` for literal-valued properties.
    pub range: Option<String>,
    /// Whether the object is a literal rather than an entity.
    pub literal_valued: bool,
    /// Characteristic axioms.
    pub traits: PropertyTraits,
    /// Human-readable label.
    pub label: Option<String>,
    /// Inverse property IRI, if declared.
    pub inverse_of: Option<String>,
}

/// A max-cardinality restriction: subjects of `class` may have at most
/// `max` values of `property`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardinalityRestriction {
    /// Class the restriction applies to.
    pub class: String,
    /// Restricted property.
    pub property: String,
    /// Maximum number of values allowed.
    pub max: usize,
}

/// A full schema: classes, hierarchy, properties, disjointness, cardinality.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    classes: BTreeMap<String, ClassDecl>,
    /// child → set of direct parents
    parents: BTreeMap<String, BTreeSet<String>>,
    properties: BTreeMap<String, PropertyDecl>,
    /// child property → direct super-properties
    prop_parents: BTreeMap<String, BTreeSet<String>>,
    disjoint: BTreeSet<(String, String)>,
    cardinality: Vec<CardinalityRestriction>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a class (idempotent).
    pub fn add_class(&mut self, iri: impl Into<String>) -> &mut ClassDecl {
        self.classes.entry(iri.into()).or_default()
    }

    /// Declare a class with a label.
    pub fn add_labeled_class(&mut self, iri: impl Into<String>, label: impl Into<String>) {
        self.add_class(iri).label = Some(label.into());
    }

    /// Declare `child rdfs:subClassOf parent` (classes are auto-declared).
    pub fn add_subclass(&mut self, child: impl Into<String>, parent: impl Into<String>) {
        let (c, p) = (child.into(), parent.into());
        self.add_class(c.clone());
        self.add_class(p.clone());
        self.parents.entry(c).or_default().insert(p);
    }

    /// Declare a property.
    pub fn add_property(&mut self, iri: impl Into<String>, decl: PropertyDecl) {
        self.properties.insert(iri.into(), decl);
    }

    /// Declare `child rdfs:subPropertyOf parent`.
    pub fn add_subproperty(&mut self, child: impl Into<String>, parent: impl Into<String>) {
        let (c, p) = (child.into(), parent.into());
        self.properties.entry(c.clone()).or_default();
        self.properties.entry(p.clone()).or_default();
        self.prop_parents.entry(c).or_default().insert(p);
    }

    /// Declare two classes disjoint (stored symmetrically-normalized).
    pub fn add_disjoint(&mut self, a: impl Into<String>, b: impl Into<String>) {
        let (a, b) = (a.into(), b.into());
        self.add_class(a.clone());
        self.add_class(b.clone());
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.disjoint.insert(pair);
    }

    /// Add a max-cardinality restriction.
    pub fn add_cardinality(&mut self, r: CardinalityRestriction) {
        self.cardinality.push(r);
    }

    /// Is `iri` a declared class?
    pub fn has_class(&self, iri: &str) -> bool {
        self.classes.contains_key(iri)
    }

    /// Is `iri` a declared property?
    pub fn has_property(&self, iri: &str) -> bool {
        self.properties.contains_key(iri)
    }

    /// Declared classes, sorted.
    pub fn classes(&self) -> impl Iterator<Item = (&str, &ClassDecl)> {
        self.classes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Declared properties, sorted.
    pub fn properties(&self) -> impl Iterator<Item = (&str, &PropertyDecl)> {
        self.properties.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Property declaration lookup.
    pub fn property(&self, iri: &str) -> Option<&PropertyDecl> {
        self.properties.get(iri)
    }

    /// Class declaration lookup.
    pub fn class(&self, iri: &str) -> Option<&ClassDecl> {
        self.classes.get(iri)
    }

    /// Cardinality restrictions.
    pub fn cardinalities(&self) -> &[CardinalityRestriction] {
        &self.cardinality
    }

    /// Direct superclasses of a class.
    pub fn direct_superclasses(&self, class: &str) -> Vec<&str> {
        self.parents
            .get(class)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// All (transitive) superclasses, excluding the class itself.
    pub fn superclasses(&self, class: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack = vec![class.to_string()];
        while let Some(c) = stack.pop() {
            if let Some(ps) = self.parents.get(&c) {
                for p in ps {
                    if out.insert(p.clone()) {
                        stack.push(p.clone());
                    }
                }
            }
        }
        out
    }

    /// All (transitive) subclasses, excluding the class itself.
    pub fn subclasses(&self, class: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut changed = true;
        while changed {
            changed = false;
            for (child, parents) in &self.parents {
                if out.contains(child) {
                    continue;
                }
                if parents.iter().any(|p| p == class || out.contains(p)) {
                    out.insert(child.clone());
                    changed = true;
                }
            }
        }
        out
    }

    /// Reflexive-transitive subsumption test.
    pub fn is_subclass_of(&self, child: &str, parent: &str) -> bool {
        child == parent || self.superclasses(child).contains(parent)
    }

    /// All (transitive) super-properties, excluding the property itself.
    pub fn superproperties(&self, prop: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack = vec![prop.to_string()];
        while let Some(c) = stack.pop() {
            if let Some(ps) = self.prop_parents.get(&c) {
                for p in ps {
                    if out.insert(p.clone()) {
                        stack.push(p.clone());
                    }
                }
            }
        }
        out
    }

    /// Are two classes disjoint, considering inheritance? (A subclass of a
    /// disjoint class inherits the disjointness.)
    pub fn are_disjoint(&self, a: &str, b: &str) -> bool {
        let mut ancestors_a: BTreeSet<String> = self.superclasses(a);
        ancestors_a.insert(a.to_string());
        let mut ancestors_b: BTreeSet<String> = self.superclasses(b);
        ancestors_b.insert(b.to_string());
        for x in &ancestors_a {
            for y in &ancestors_b {
                let pair = if x <= y {
                    (x.clone(), y.clone())
                } else {
                    (y.clone(), x.clone())
                };
                if x != y && self.disjoint.contains(&pair) {
                    return true;
                }
            }
        }
        false
    }

    /// Declared disjoint pairs (normalized order).
    pub fn disjoint_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.disjoint.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }

    /// Serialize the schema into RDF triples.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new();
        for (iri, decl) in &self.classes {
            g.insert_iri(iri, ns::RDF_TYPE, ns::OWL_CLASS);
            if let Some(l) = &decl.label {
                g.insert_terms(
                    Term::iri(iri),
                    Term::iri(ns::RDFS_LABEL),
                    Term::lit(l.clone()),
                );
            }
            if let Some(c) = &decl.comment {
                g.insert_terms(
                    Term::iri(iri),
                    Term::iri(ns::RDFS_COMMENT),
                    Term::lit(c.clone()),
                );
            }
        }
        for (child, parents) in &self.parents {
            for p in parents {
                g.insert_iri(child, ns::RDFS_SUBCLASS_OF, p);
            }
        }
        for (child, parents) in &self.prop_parents {
            for p in parents {
                g.insert_iri(child, ns::RDFS_SUBPROPERTY_OF, p);
            }
        }
        for (iri, decl) in &self.properties {
            if let Some(d) = &decl.domain {
                g.insert_iri(iri, ns::RDFS_DOMAIN, d);
            }
            if let Some(r) = &decl.range {
                g.insert_iri(iri, ns::RDFS_RANGE, r);
            }
            if let Some(l) = &decl.label {
                g.insert_terms(
                    Term::iri(iri),
                    Term::iri(ns::RDFS_LABEL),
                    Term::lit(l.clone()),
                );
            }
            if let Some(inv) = &decl.inverse_of {
                g.insert_iri(iri, ns::OWL_INVERSE_OF, inv);
            }
            if decl.traits.functional {
                g.insert_iri(iri, ns::RDF_TYPE, ns::OWL_FUNCTIONAL);
            }
            if decl.traits.inverse_functional {
                g.insert_iri(iri, ns::RDF_TYPE, ns::OWL_INVERSE_FUNCTIONAL);
            }
            if decl.traits.symmetric {
                g.insert_iri(iri, ns::RDF_TYPE, ns::OWL_SYMMETRIC);
            }
            if decl.traits.transitive {
                g.insert_iri(iri, ns::RDF_TYPE, ns::OWL_TRANSITIVE);
            }
        }
        for (a, b) in &self.disjoint {
            g.insert_iri(a, ns::OWL_DISJOINT_WITH, b);
        }
        g
    }

    /// Reconstruct a schema from RDF triples (inverse of [`to_graph`] for
    /// the vocabulary it emits; cardinality restrictions are not round-
    /// tripped since OWL restriction blank-node encoding is out of scope).
    ///
    /// [`to_graph`]: Ontology::to_graph
    pub fn from_graph(g: &Graph) -> Self {
        let mut onto = Ontology::new();
        let iri_of = |g: &Graph, s: crate::term::Sym| -> Option<String> {
            g.resolve(s).as_iri().map(str::to_string)
        };
        for t in g.iter() {
            let p_iri = match g.resolve(t.p).as_iri() {
                Some(p) => p.to_string(),
                None => continue,
            };
            let s_iri = match iri_of(g, t.s) {
                Some(s) => s,
                None => continue,
            };
            match p_iri.as_str() {
                ns::RDF_TYPE => match g.resolve(t.o).as_iri() {
                    Some(ns::OWL_CLASS) => {
                        onto.add_class(s_iri);
                    }
                    Some(ns::OWL_FUNCTIONAL) => {
                        onto.properties.entry(s_iri).or_default().traits.functional = true;
                    }
                    Some(ns::OWL_INVERSE_FUNCTIONAL) => {
                        onto.properties
                            .entry(s_iri)
                            .or_default()
                            .traits
                            .inverse_functional = true;
                    }
                    Some(ns::OWL_SYMMETRIC) => {
                        onto.properties.entry(s_iri).or_default().traits.symmetric = true;
                    }
                    Some(ns::OWL_TRANSITIVE) => {
                        onto.properties.entry(s_iri).or_default().traits.transitive = true;
                    }
                    _ => {}
                },
                ns::RDFS_SUBCLASS_OF => {
                    if let Some(o) = iri_of(g, t.o) {
                        onto.add_subclass(s_iri, o);
                    }
                }
                ns::RDFS_SUBPROPERTY_OF => {
                    if let Some(o) = iri_of(g, t.o) {
                        onto.add_subproperty(s_iri, o);
                    }
                }
                ns::RDFS_DOMAIN => {
                    if let Some(o) = iri_of(g, t.o) {
                        onto.properties.entry(s_iri).or_default().domain = Some(o);
                    }
                }
                ns::RDFS_RANGE => {
                    if let Some(o) = iri_of(g, t.o) {
                        onto.properties.entry(s_iri).or_default().range = Some(o);
                    }
                }
                ns::OWL_INVERSE_OF => {
                    if let Some(o) = iri_of(g, t.o) {
                        onto.properties.entry(s_iri).or_default().inverse_of = Some(o);
                    }
                }
                ns::OWL_DISJOINT_WITH => {
                    if let Some(o) = iri_of(g, t.o) {
                        onto.add_disjoint(s_iri, o);
                    }
                }
                ns::RDFS_LABEL => {
                    if let Term::Literal(l) = g.resolve(t.o) {
                        if let Some(c) = onto.classes.get_mut(&s_iri) {
                            c.label = Some(l.lexical.clone());
                        } else if let Some(p) = onto.properties.get_mut(&s_iri) {
                            p.label = Some(l.lexical.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        onto
    }

    /// Number of declared classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of declared properties.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Ontology {
        let mut o = Ontology::new();
        o.add_subclass("http://v/Student", "http://v/Person");
        o.add_subclass("http://v/Professor", "http://v/Person");
        o.add_subclass("http://v/PhdStudent", "http://v/Student");
        o.add_disjoint("http://v/Person", "http://v/Organization");
        o.add_property(
            "http://v/advisor",
            PropertyDecl {
                domain: Some("http://v/Student".into()),
                range: Some("http://v/Professor".into()),
                traits: PropertyTraits {
                    functional: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        o
    }

    #[test]
    fn transitive_subsumption() {
        let o = people();
        assert!(o.is_subclass_of("http://v/PhdStudent", "http://v/Person"));
        assert!(o.is_subclass_of("http://v/Person", "http://v/Person"));
        assert!(!o.is_subclass_of("http://v/Person", "http://v/Student"));
        assert_eq!(o.superclasses("http://v/PhdStudent").len(), 2);
        assert_eq!(o.subclasses("http://v/Person").len(), 3);
    }

    #[test]
    fn disjointness_is_inherited() {
        let o = people();
        assert!(o.are_disjoint("http://v/Person", "http://v/Organization"));
        assert!(o.are_disjoint("http://v/PhdStudent", "http://v/Organization"));
        assert!(!o.are_disjoint("http://v/Student", "http://v/Professor"));
        assert!(!o.are_disjoint("http://v/Person", "http://v/Person"));
    }

    #[test]
    fn graph_round_trip_preserves_schema() {
        let o = people();
        let g = o.to_graph();
        let o2 = Ontology::from_graph(&g);
        assert_eq!(o2.class_count(), o.class_count());
        assert!(o2.is_subclass_of("http://v/PhdStudent", "http://v/Person"));
        assert!(o2.are_disjoint("http://v/Student", "http://v/Organization"));
        let adv = o2.property("http://v/advisor").unwrap();
        assert_eq!(adv.domain.as_deref(), Some("http://v/Student"));
        assert!(adv.traits.functional);
    }

    #[test]
    fn subproperty_closure() {
        let mut o = Ontology::new();
        o.add_subproperty("http://v/mother", "http://v/parent");
        o.add_subproperty("http://v/parent", "http://v/ancestor");
        let sup = o.superproperties("http://v/mother");
        assert!(sup.contains("http://v/parent"));
        assert!(sup.contains("http://v/ancestor"));
        assert_eq!(sup.len(), 2);
    }

    #[test]
    fn labels_and_comments_serialize() {
        let mut o = Ontology::new();
        o.add_labeled_class("http://v/Film", "Film");
        o.add_class("http://v/Film").comment = Some("A motion picture".into());
        let g = o.to_graph();
        let film = g.pool().get_iri("http://v/Film").unwrap();
        assert_eq!(g.display_name(film), "Film");
        assert_eq!(g.len(), 3); // type, label, comment
    }
}
