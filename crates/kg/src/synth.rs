//! Seeded synthetic knowledge-graph generators.
//!
//! These stand in for the Freebase / Wikidata / DBpedia dumps used by the
//! surveyed papers: each generator produces a typed KG with a realistic
//! schema (functional properties, disjoint classes, literal attributes),
//! multi-hop structure, and `rdfs:label`s suitable for verbalization — at a
//! laptop scale, fully deterministic under a seed.
//!
//! Domains provided:
//! * [`movies`] — films / actors / directors / genres / studios (the classic
//!   KGQA domain, analogous to Freebase film),
//! * [`academic`] — universities / researchers / papers (LUBM-flavoured),
//! * [`geo`] — countries / cities / rivers with transitive containment,
//! * [`biomed`] — diseases / symptoms / drugs / genes (the COVID-19-style
//!   domain the survey's ontology-construction discussion motivates),
//! * [`freebase_like`] — a generic scale-free multi-relational graph with a
//!   Zipf degree distribution for embedding / completion benchmarks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{KgError, Result};
use crate::namespace as ns;
use crate::ontology::{CardinalityRestriction, Ontology, PropertyDecl, PropertyTraits};
use crate::store::Graph;
use crate::term::{Sym, Term};

/// A generated KG bundle: instance graph plus the schema it conforms to.
#[derive(Debug, Clone)]
pub struct SynthKg {
    /// Instance triples (plus labels and types).
    pub graph: Graph,
    /// The schema the instances conform to.
    pub ontology: Ontology,
    /// Name of the domain ("movies", "academic", …).
    pub domain: &'static str,
}

/// Scale knob shared by the domain generators.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rough number of entities per major class.
    pub entities_per_class: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            entities_per_class: 40,
        }
    }
}

impl Scale {
    /// A small scale for unit tests.
    pub fn tiny() -> Self {
        Scale {
            entities_per_class: 8,
        }
    }

    /// A medium scale for evaluation harnesses.
    pub fn medium() -> Self {
        Scale {
            entities_per_class: 120,
        }
    }
}

/// Deterministic pseudo-name generator (syllable chains).
pub struct NameGen {
    rng: StdRng,
}

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "r", "s",
    "st", "t", "th", "v", "w", "z",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou", "io"];
const CODAS: &[&str] = &["", "n", "r", "s", "l", "m", "nd", "rt", "x"];

impl NameGen {
    /// A fresh generator with its own seed.
    pub fn new(seed: u64) -> Self {
        NameGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One capitalized pseudo-word of 2–3 syllables.
    pub fn word(&mut self) -> String {
        let syllables = self.rng.gen_range(2..=3);
        let mut w = String::new();
        for _ in 0..syllables {
            w.push_str(ONSETS.choose(&mut self.rng).expect("non-empty"));
            w.push_str(NUCLEI.choose(&mut self.rng).expect("non-empty"));
            w.push_str(CODAS.choose(&mut self.rng).expect("non-empty"));
        }
        let mut c = w.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => w,
        }
    }

    /// A two-word person-style name.
    pub fn person(&mut self) -> String {
        format!("{} {}", self.word(), self.word())
    }

    /// A title-like phrase of `n` words.
    pub fn title(&mut self, n: usize) -> String {
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            parts.push(self.word());
        }
        parts.join(" ")
    }
}

/// Helper that owns a graph under construction and registers entities.
struct Builder {
    graph: Graph,
    ty: Sym,
    label: Sym,
}

impl Builder {
    fn new() -> Self {
        let mut graph = Graph::new();
        let ty = graph.intern_iri(ns::RDF_TYPE);
        let label = graph.intern_iri(ns::RDFS_LABEL);
        Builder { graph, ty, label }
    }

    fn entity(&mut self, class_iri: &str, name: &str) -> Sym {
        let iri = format!("{}{}", ns::SYNTH_ENTITY, ns::slug(name));
        let e = self.graph.intern_iri(iri);
        let c = self.graph.intern_iri(class_iri);
        self.graph.insert(e, self.ty, c);
        let l = self.graph.intern(Term::lit(name));
        self.graph.insert(e, self.label, l);
        e
    }

    fn edge(&mut self, s: Sym, prop_iri: &str, o: Sym) {
        let p = self.graph.intern_iri(prop_iri);
        self.graph.insert(s, p, o);
    }

    fn attr_int(&mut self, s: Sym, prop_iri: &str, v: i64) {
        let p = self.graph.intern_iri(prop_iri);
        let o = self.graph.intern(Term::int(v));
        self.graph.insert(s, p, o);
    }

    /// Hand the finished graph over, compacted: generated KGs are
    /// read-mostly, so they should start life on the flat arena (fast
    /// scans, merge-join eligible) rather than in the delta overlay.
    fn finish(self) -> Graph {
        let mut graph = self.graph;
        graph.compact();
        graph
    }
}

fn vocab(name: &str) -> String {
    format!("{}{}", ns::SYNTH_VOCAB, name)
}

/// Generate the movies domain.
pub fn movies(seed: u64, scale: Scale) -> SynthKg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut names = NameGen::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let mut b = Builder::new();

    let film_c = vocab("Film");
    let actor_c = vocab("Actor");
    let director_c = vocab("Director");
    let genre_c = vocab("Genre");
    let studio_c = vocab("Studio");
    let person_c = vocab("Person");

    let mut onto = Ontology::new();
    for (c, l) in [
        (&film_c, "Film"),
        (&actor_c, "Actor"),
        (&director_c, "Director"),
        (&genre_c, "Genre"),
        (&studio_c, "Studio"),
        (&person_c, "Person"),
    ] {
        onto.add_labeled_class(c.clone(), l);
    }
    onto.add_subclass(actor_c.clone(), person_c.clone());
    onto.add_subclass(director_c.clone(), person_c.clone());
    onto.add_disjoint(person_c.clone(), film_c.clone());
    onto.add_disjoint(person_c.clone(), studio_c.clone());
    onto.add_disjoint(film_c.clone(), genre_c.clone());

    let directed_by = vocab("directedBy");
    let starring = vocab("starring");
    let has_genre = vocab("hasGenre");
    let produced_by = vocab("producedBy");
    let release_year = vocab("releaseYear");
    let spouse = vocab("spouse");

    onto.add_property(
        directed_by.clone(),
        PropertyDecl {
            domain: Some(film_c.clone()),
            range: Some(director_c.clone()),
            traits: PropertyTraits {
                functional: true,
                ..Default::default()
            },
            label: Some("directed by".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        starring.clone(),
        PropertyDecl {
            domain: Some(film_c.clone()),
            range: Some(actor_c.clone()),
            label: Some("starring".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        has_genre.clone(),
        PropertyDecl {
            domain: Some(film_c.clone()),
            range: Some(genre_c.clone()),
            label: Some("has genre".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        produced_by.clone(),
        PropertyDecl {
            domain: Some(film_c.clone()),
            range: Some(studio_c.clone()),
            traits: PropertyTraits {
                functional: true,
                ..Default::default()
            },
            label: Some("produced by".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        release_year.clone(),
        PropertyDecl {
            domain: Some(film_c.clone()),
            literal_valued: true,
            traits: PropertyTraits {
                functional: true,
                ..Default::default()
            },
            label: Some("released in".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        spouse.clone(),
        PropertyDecl {
            domain: Some(person_c.clone()),
            range: Some(person_c.clone()),
            traits: PropertyTraits {
                symmetric: true,
                irreflexive: true,
                ..Default::default()
            },
            label: Some("spouse of".into()),
            ..Default::default()
        },
    );
    onto.add_cardinality(CardinalityRestriction {
        class: film_c.clone(),
        property: has_genre.clone(),
        max: 3,
    });

    let n = scale.entities_per_class;
    let genres: Vec<Sym> = [
        "Drama", "Comedy", "Thriller", "SciFi", "Romance", "Horror", "Noir",
    ]
    .iter()
    .map(|g| b.entity(&genre_c, g))
    .collect();
    let studios: Vec<Sym> = (0..(n / 6).max(2))
        .map(|_| b.entity(&studio_c, &format!("{} Studios", names.word())))
        .collect();
    let directors: Vec<Sym> = (0..(n / 3).max(3))
        .map(|_| b.entity(&director_c, &names.person()))
        .collect();
    let actors: Vec<Sym> = (0..n)
        .map(|_| b.entity(&actor_c, &names.person()))
        .collect();

    for _ in 0..n {
        let film = b.entity(&film_c, &format!("The {}", names.title(2)));
        let d = *directors.choose(&mut rng).expect("non-empty");
        b.edge(film, &directed_by, d);
        let cast = rng.gen_range(2..=4).min(actors.len());
        let mut chosen = actors.clone();
        chosen.shuffle(&mut rng);
        for &a in chosen.iter().take(cast) {
            b.edge(film, &starring, a);
        }
        let n_genres = rng.gen_range(1..=2);
        for &g in genres.as_slice().choose_multiple(&mut rng, n_genres) {
            b.edge(film, &has_genre, g);
        }
        let s = *studios.choose(&mut rng).expect("non-empty");
        b.edge(film, &produced_by, s);
        b.attr_int(film, &release_year, rng.gen_range(1950..=2024));
    }
    // a few spouse edges among people (kept symmetric)
    let mut people: Vec<Sym> = actors.iter().chain(directors.iter()).copied().collect();
    people.shuffle(&mut rng);
    for pair in people.chunks(2).take(n / 5) {
        if let [a, bb] = pair {
            b.edge(*a, &spouse, *bb);
            b.edge(*bb, &spouse, *a);
        }
    }

    SynthKg {
        graph: b.finish(),
        ontology: onto,
        domain: "movies",
    }
}

/// Generate the academic domain.
pub fn academic(seed: u64, scale: Scale) -> SynthKg {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xACAD);
    let mut names = NameGen::new(seed.wrapping_add(17));
    let mut b = Builder::new();

    let person_c = vocab("Person");
    let prof_c = vocab("Professor");
    let student_c = vocab("Student");
    let uni_c = vocab("University");
    let paper_c = vocab("Paper");
    let venue_c = vocab("Venue");

    let mut onto = Ontology::new();
    for (c, l) in [
        (&person_c, "Person"),
        (&prof_c, "Professor"),
        (&student_c, "Student"),
        (&uni_c, "University"),
        (&paper_c, "Paper"),
        (&venue_c, "Venue"),
    ] {
        onto.add_labeled_class(c.clone(), l);
    }
    onto.add_subclass(prof_c.clone(), person_c.clone());
    onto.add_subclass(student_c.clone(), person_c.clone());
    onto.add_disjoint(person_c.clone(), paper_c.clone());
    onto.add_disjoint(uni_c.clone(), person_c.clone());

    let advisor = vocab("advisor");
    let works_at = vocab("worksAt");
    let author_of = vocab("authorOf");
    let cites = vocab("cites");
    let published_in = vocab("publishedIn");

    onto.add_property(
        advisor.clone(),
        PropertyDecl {
            domain: Some(student_c.clone()),
            range: Some(prof_c.clone()),
            traits: PropertyTraits {
                functional: true,
                ..Default::default()
            },
            label: Some("advised by".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        works_at.clone(),
        PropertyDecl {
            domain: Some(person_c.clone()),
            range: Some(uni_c.clone()),
            label: Some("works at".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        author_of.clone(),
        PropertyDecl {
            domain: Some(person_c.clone()),
            range: Some(paper_c.clone()),
            label: Some("author of".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        cites.clone(),
        PropertyDecl {
            domain: Some(paper_c.clone()),
            range: Some(paper_c.clone()),
            traits: PropertyTraits {
                irreflexive: true,
                ..Default::default()
            },
            label: Some("cites".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        published_in.clone(),
        PropertyDecl {
            domain: Some(paper_c.clone()),
            range: Some(venue_c.clone()),
            traits: PropertyTraits {
                functional: true,
                ..Default::default()
            },
            label: Some("published in".into()),
            ..Default::default()
        },
    );

    let n = scale.entities_per_class;
    let unis: Vec<Sym> = (0..(n / 8).max(2))
        .map(|_| b.entity(&uni_c, &format!("University of {}", names.word())))
        .collect();
    let venues: Vec<Sym> = (0..(n / 10).max(2))
        .map(|_| b.entity(&venue_c, &format!("{} Conference", names.word())))
        .collect();
    let profs: Vec<Sym> = (0..(n / 3).max(3))
        .map(|_| b.entity(&prof_c, &names.person()))
        .collect();
    let students: Vec<Sym> = (0..n)
        .map(|_| b.entity(&student_c, &names.person()))
        .collect();

    for &p in &profs {
        let u = *unis.choose(&mut rng).expect("non-empty");
        b.edge(p, &works_at, u);
    }
    for &s in &students {
        b.edge(s, &advisor, *profs.choose(&mut rng).expect("non-empty"));
        b.edge(s, &works_at, *unis.choose(&mut rng).expect("non-empty"));
    }
    let mut papers = Vec::new();
    for _ in 0..n {
        let paper = b.entity(&paper_c, &format!("On {}", names.title(3)));
        b.edge(
            paper,
            &published_in,
            *venues.choose(&mut rng).expect("non-empty"),
        );
        let nauth = rng.gen_range(1..=3);
        for _ in 0..nauth {
            let who = if rng.gen_bool(0.5) {
                *profs.choose(&mut rng).expect("non-empty")
            } else {
                *students.choose(&mut rng).expect("non-empty")
            };
            b.edge(who, &author_of, paper);
        }
        papers.push(paper);
    }
    for &paper in &papers {
        for _ in 0..rng.gen_range(0..3usize) {
            let target = *papers.choose(&mut rng).expect("non-empty");
            if target != paper {
                b.edge(paper, &cites, target);
            }
        }
    }

    SynthKg {
        graph: b.finish(),
        ontology: onto,
        domain: "academic",
    }
}

/// Generate the geography domain.
pub fn geo(seed: u64, scale: Scale) -> SynthKg {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6E0);
    let mut names = NameGen::new(seed.wrapping_add(99));
    let mut b = Builder::new();

    let country_c = vocab("Country");
    let city_c = vocab("City");
    let region_c = vocab("Region");
    let river_c = vocab("River");

    let mut onto = Ontology::new();
    for (c, l) in [
        (&country_c, "Country"),
        (&city_c, "City"),
        (&region_c, "Region"),
        (&river_c, "River"),
    ] {
        onto.add_labeled_class(c.clone(), l);
    }
    onto.add_disjoint(country_c.clone(), city_c.clone());
    onto.add_disjoint(city_c.clone(), river_c.clone());

    let capital_of = vocab("capitalOf");
    let located_in = vocab("locatedIn");
    let flows_through = vocab("flowsThrough");
    let borders = vocab("borders");
    let population = vocab("population");

    onto.add_property(
        capital_of.clone(),
        PropertyDecl {
            domain: Some(city_c.clone()),
            range: Some(country_c.clone()),
            traits: PropertyTraits {
                functional: true,
                inverse_functional: true,
                ..Default::default()
            },
            label: Some("capital of".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        located_in.clone(),
        PropertyDecl {
            range: Some(region_c.clone()),
            traits: PropertyTraits {
                transitive: true,
                ..Default::default()
            },
            label: Some("located in".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        flows_through.clone(),
        PropertyDecl {
            domain: Some(river_c.clone()),
            range: Some(country_c.clone()),
            label: Some("flows through".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        borders.clone(),
        PropertyDecl {
            domain: Some(country_c.clone()),
            range: Some(country_c.clone()),
            traits: PropertyTraits {
                symmetric: true,
                irreflexive: true,
                ..Default::default()
            },
            label: Some("borders".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        population.clone(),
        PropertyDecl {
            literal_valued: true,
            traits: PropertyTraits {
                functional: true,
                ..Default::default()
            },
            label: Some("has population".into()),
            ..Default::default()
        },
    );

    let n = scale.entities_per_class;
    let regions: Vec<Sym> = (0..(n / 8).max(2))
        .map(|_| b.entity(&region_c, &format!("{} Region", names.word())))
        .collect();
    let countries: Vec<Sym> = (0..(n / 2).max(3))
        .map(|_| b.entity(&country_c, &names.word()))
        .collect();
    for (i, &c) in countries.iter().enumerate() {
        b.edge(c, &located_in, regions[i % regions.len()]);
        b.attr_int(c, &population, rng.gen_range(100_000..200_000_000));
        // capital
        let cap = b.entity(&city_c, &format!("{} City", names.word()));
        b.edge(cap, &capital_of, c);
        b.edge(cap, &located_in, c);
        b.attr_int(cap, &population, rng.gen_range(10_000..20_000_000));
    }
    for _ in 0..n {
        let city = b.entity(&city_c, &names.word());
        let c = *countries.choose(&mut rng).expect("non-empty");
        b.edge(city, &located_in, c);
        b.attr_int(city, &population, rng.gen_range(1_000..5_000_000));
    }
    for _ in 0..(n / 2) {
        let river = b.entity(&river_c, &format!("River {}", names.word()));
        let n_through = rng.gen_range(1..=3);
        for &c in countries.as_slice().choose_multiple(&mut rng, n_through) {
            b.edge(river, &flows_through, c);
        }
    }
    // symmetric borders
    for i in 0..countries.len() {
        let j = (i + 1) % countries.len();
        if i != j {
            b.edge(countries[i], &borders, countries[j]);
            b.edge(countries[j], &borders, countries[i]);
        }
    }

    SynthKg {
        graph: b.finish(),
        ontology: onto,
        domain: "geo",
    }
}

/// Generate the biomedical (COVID-19-style) domain.
pub fn biomed(seed: u64, scale: Scale) -> SynthKg {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB10);
    let mut names = NameGen::new(seed.wrapping_add(7_777));
    let mut b = Builder::new();

    let disease_c = vocab("Disease");
    let symptom_c = vocab("Symptom");
    let drug_c = vocab("Drug");
    let gene_c = vocab("Gene");
    let pathogen_c = vocab("Pathogen");

    let mut onto = Ontology::new();
    for (c, l) in [
        (&disease_c, "Disease"),
        (&symptom_c, "Symptom"),
        (&drug_c, "Drug"),
        (&gene_c, "Gene"),
        (&pathogen_c, "Pathogen"),
    ] {
        onto.add_labeled_class(c.clone(), l);
    }
    onto.add_disjoint(disease_c.clone(), drug_c.clone());
    onto.add_disjoint(symptom_c.clone(), drug_c.clone());

    let has_symptom = vocab("hasSymptom");
    let treats = vocab("treats");
    let targets = vocab("targets");
    let caused_by = vocab("causedBy");
    let interacts_with = vocab("interactsWith");

    onto.add_property(
        has_symptom.clone(),
        PropertyDecl {
            domain: Some(disease_c.clone()),
            range: Some(symptom_c.clone()),
            label: Some("has symptom".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        treats.clone(),
        PropertyDecl {
            domain: Some(drug_c.clone()),
            range: Some(disease_c.clone()),
            label: Some("treats".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        targets.clone(),
        PropertyDecl {
            domain: Some(drug_c.clone()),
            range: Some(gene_c.clone()),
            label: Some("targets".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        caused_by.clone(),
        PropertyDecl {
            domain: Some(disease_c.clone()),
            range: Some(pathogen_c.clone()),
            traits: PropertyTraits {
                functional: true,
                ..Default::default()
            },
            label: Some("caused by".into()),
            ..Default::default()
        },
    );
    onto.add_property(
        interacts_with.clone(),
        PropertyDecl {
            domain: Some(drug_c.clone()),
            range: Some(drug_c.clone()),
            traits: PropertyTraits {
                symmetric: true,
                irreflexive: true,
                ..Default::default()
            },
            label: Some("interacts with".into()),
            ..Default::default()
        },
    );

    let n = scale.entities_per_class;
    let symptoms: Vec<Sym> = [
        "Fever", "Cough", "Fatigue", "Headache", "Nausea", "Rash", "Chills",
    ]
    .iter()
    .map(|s| b.entity(&symptom_c, s))
    .collect();
    let pathogens: Vec<Sym> = (0..(n / 6).max(2))
        .map(|_| b.entity(&pathogen_c, &format!("{} virus", names.word())))
        .collect();
    let genes: Vec<Sym> = (0..(n / 3).max(3))
        .map(|i| b.entity(&gene_c, &format!("GEN{i:03}")))
        .collect();
    let diseases: Vec<Sym> = (0..n)
        .map(|_| b.entity(&disease_c, &format!("{} disease", names.word())))
        .collect();
    for &d in &diseases {
        let n_sym = rng.gen_range(2..=4);
        for &s in symptoms.as_slice().choose_multiple(&mut rng, n_sym) {
            b.edge(d, &has_symptom, s);
        }
        b.edge(
            d,
            &caused_by,
            *pathogens.choose(&mut rng).expect("non-empty"),
        );
    }
    let drugs: Vec<Sym> = (0..n)
        .map(|_| b.entity(&drug_c, &format!("{}ol", names.word())))
        .collect();
    for &dr in &drugs {
        let n_treats = rng.gen_range(1..=2);
        for &d in diseases.as_slice().choose_multiple(&mut rng, n_treats) {
            b.edge(dr, &treats, d);
        }
        let n_targets = rng.gen_range(1..=2);
        for &g in genes.as_slice().choose_multiple(&mut rng, n_targets) {
            b.edge(dr, &targets, g);
        }
    }
    for pair in drugs.chunks(2).take(n / 4) {
        if let [a, c] = pair {
            b.edge(*a, &interacts_with, *c);
            b.edge(*c, &interacts_with, *a);
        }
    }

    SynthKg {
        graph: b.finish(),
        ontology: onto,
        domain: "biomed",
    }
}

/// Configuration for the generic scale-free generator.
#[derive(Debug, Clone)]
pub struct FreebaseLikeConfig {
    /// Number of entities.
    pub n_entities: usize,
    /// Number of distinct relations.
    pub n_relations: usize,
    /// Number of triples to generate (duplicates are retried).
    pub n_triples: usize,
    /// Zipf-like skew exponent for entity popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Attach an `rdfs:label` literal to every entity. Disable for pure
    /// join-stress graphs at millions of triples, where the label
    /// strings would dominate the term pool.
    pub with_labels: bool,
}

impl Default for FreebaseLikeConfig {
    fn default() -> Self {
        FreebaseLikeConfig {
            n_entities: 500,
            n_relations: 20,
            n_triples: 3_000,
            zipf_exponent: 1.0,
            with_labels: true,
        }
    }
}

/// Generate a generic scale-free multi-relational KG (the shape used by
/// link-prediction benchmarks such as FB15k): entity popularity follows an
/// approximate Zipf law, so a few hub entities participate in many triples.
///
/// Scales to millions of triples: relation ids are interned once up
/// front, candidate edges stream into a flat id buffer that is
/// sort-deduplicated in amortized batches (no per-attempt string
/// allocation, no per-triple B-tree probing), and the result lands in the
/// arena via [`Graph::bulk_load`] with statistics recounted linearly.
pub fn freebase_like(seed: u64, config: &FreebaseLikeConfig) -> Result<SynthKg> {
    if config.n_entities < 2 || config.n_relations == 0 || config.n_triples == 0 {
        return Err(KgError::InvalidConfig(format!(
            "need ≥2 entities, ≥1 relation, ≥1 triple; got {config:?}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF8EE);
    let mut b = Builder::new();
    let class = vocab("Entity");
    let mut onto = Ontology::new();
    onto.add_labeled_class(class.clone(), "Entity");

    let digits = config.n_entities.to_string().len().max(5);
    let entities: Vec<Sym> = (0..config.n_entities)
        .map(|i| {
            let name = format!("E{i:0digits$}");
            if config.with_labels {
                b.entity(&class, &name)
            } else {
                let iri = format!("{}{}", ns::SYNTH_ENTITY, ns::slug(&name));
                let e = b.graph.intern_iri(iri);
                let c = b.graph.intern_iri(class.as_str());
                b.graph.insert(e, b.ty, c);
                e
            }
        })
        .collect();
    let relations: Vec<String> = (0..config.n_relations)
        .map(|i| vocab(&format!("rel{i:03}")))
        .collect();
    for r in &relations {
        onto.add_property(
            r.clone(),
            PropertyDecl {
                domain: Some(class.clone()),
                range: Some(class.clone()),
                label: Some(ns::humanize(ns::local_name(r))),
                ..Default::default()
            },
        );
    }
    // intern every relation once — the generation loop below touches only
    // pre-interned ids
    let rel_syms: Vec<Sym> = relations
        .iter()
        .map(|r| b.graph.intern_iri(r.as_str()))
        .collect();

    // cumulative Zipf weights over entity ranks
    let weights: Vec<f64> = (1..=config.n_entities)
        .map(|r| 1.0 / (r as f64).powf(config.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let pick = |rng: &mut StdRng| -> Sym {
        let x: f64 = rng.gen();
        let idx = cumulative
            .partition_point(|&c| c < x)
            .min(config.n_entities - 1);
        entities[idx]
    };

    // Stream candidate edges into a flat buffer; sort-dedup whenever the
    // buffer passes its flush mark, growing the mark by twice the
    // remaining deficit so dedup work stays amortized-linear even on
    // dense, collision-heavy configurations.
    let target = config.n_triples;
    let mut rows: Vec<(Sym, Sym, Sym)> = Vec::with_capacity(target + target / 8 + 16);
    let mut flush_at = target + target / 8 + 16;
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(20);
    while attempts < max_attempts {
        attempts += 1;
        let s = pick(&mut rng);
        let o = pick(&mut rng);
        if s == o {
            continue;
        }
        let p = *rel_syms.choose(&mut rng).expect("non-empty");
        rows.push((s, p, o));
        if rows.len() >= flush_at {
            rows.sort_unstable();
            rows.dedup();
            if rows.len() >= target {
                break;
            }
            flush_at = rows.len() + (target - rows.len()) * 2 + 64;
        }
    }
    rows.sort_unstable();
    rows.dedup();
    rows.truncate(target);
    b.graph.bulk_load(rows);

    Ok(SynthKg {
        graph: b.finish(),
        ontology: onto,
        domain: "freebase-like",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::to_ntriples;

    #[test]
    fn movies_is_deterministic() {
        let a = movies(42, Scale::tiny());
        let b = movies(42, Scale::tiny());
        assert_eq!(to_ntriples(&a.graph), to_ntriples(&b.graph));
        let c = movies(43, Scale::tiny());
        assert_ne!(to_ntriples(&a.graph), to_ntriples(&c.graph));
    }

    #[test]
    fn movies_respects_functional_directed_by() {
        let kg = movies(1, Scale::tiny());
        let g = &kg.graph;
        let db = g.pool().get_iri(&vocab("directedBy")).unwrap();
        let film_class = g.pool().get_iri(&vocab("Film")).unwrap();
        for film in g.instances_of(film_class) {
            assert_eq!(
                g.objects(film, db).len(),
                1,
                "directedBy must be functional"
            );
        }
    }

    #[test]
    fn all_domains_nonempty_and_typed() {
        for kg in [
            movies(5, Scale::tiny()),
            academic(5, Scale::tiny()),
            geo(5, Scale::tiny()),
            biomed(5, Scale::tiny()),
        ] {
            assert!(kg.graph.len() > 20, "{} too small", kg.domain);
            assert!(kg.ontology.class_count() >= 4);
            // every entity has a type and a label
            let ty = kg.graph.pool().get_iri(ns::RDF_TYPE).unwrap();
            let lbl = kg.graph.pool().get_iri(ns::RDFS_LABEL).unwrap();
            for e in kg.graph.entities() {
                let iri = kg.graph.resolve(e).as_iri().unwrap();
                if iri.starts_with(ns::SYNTH_ENTITY) {
                    assert!(!kg.graph.objects(e, ty).is_empty(), "untyped {iri}");
                    assert!(!kg.graph.objects(e, lbl).is_empty(), "unlabeled {iri}");
                }
            }
        }
    }

    #[test]
    fn geo_borders_are_symmetric() {
        let kg = geo(9, Scale::tiny());
        let g = &kg.graph;
        let borders = g.pool().get_iri(&vocab("borders")).unwrap();
        for t in g.match_pattern(crate::store::TriplePattern {
            s: None,
            p: Some(borders),
            o: None,
        }) {
            assert!(g.contains(t.o, t.p, t.s), "borders must be symmetric");
        }
    }

    #[test]
    fn freebase_like_hits_target_size() {
        let cfg = FreebaseLikeConfig {
            n_entities: 100,
            n_relations: 5,
            n_triples: 400,
            zipf_exponent: 1.0,
            with_labels: true,
        };
        let kg = freebase_like(3, &cfg).unwrap();
        // types+labels for 100 entities plus the requested relation triples
        let rel_triples = kg
            .graph
            .predicates()
            .iter()
            .filter(|(p, _)| {
                kg.graph
                    .resolve(*p)
                    .as_iri()
                    .is_some_and(|i| i.contains("rel"))
            })
            .map(|(_, c)| *c)
            .sum::<usize>();
        assert_eq!(rel_triples, 400);
    }

    #[test]
    fn freebase_like_zipf_skews_degrees() {
        let cfg = FreebaseLikeConfig {
            n_entities: 200,
            n_relations: 5,
            n_triples: 1_000,
            zipf_exponent: 1.2,
            with_labels: true,
        };
        let kg = freebase_like(7, &cfg).unwrap();
        let g = &kg.graph;
        let e0 = g
            .pool()
            .get_iri(&format!("{}E00000", ns::SYNTH_ENTITY))
            .unwrap();
        let elast = g
            .pool()
            .get_iri(&format!("{}E00199", ns::SYNTH_ENTITY))
            .unwrap();
        // labels+types contribute 2 everywhere, relation edges dominate on hubs
        assert!(
            g.degree(e0) > g.degree(elast),
            "rank-0 entity should be a hub: {} vs {}",
            g.degree(e0),
            g.degree(elast)
        );
    }

    #[test]
    fn freebase_like_rejects_bad_config() {
        let bad = FreebaseLikeConfig {
            n_entities: 1,
            ..Default::default()
        };
        assert!(freebase_like(0, &bad).is_err());
    }

    #[test]
    fn namegen_is_deterministic() {
        let mut a = NameGen::new(5);
        let mut b = NameGen::new(5);
        assert_eq!(a.person(), b.person());
        assert_eq!(a.title(3), b.title(3));
    }
}
