//! The indexed in-memory triple store.
//!
//! [`Graph`] owns a [`TermPool`] and three sorted indexes (SPO, POS, OSP) so
//! that every binding shape of a triple pattern is answered by a range scan.
//! All mutation goes through interning, keeping the hot representation at
//! three `u32`s per triple.

use std::collections::{BTreeMap, BTreeSet};

use crate::namespace;
use crate::term::{Sym, Term, TermPool};

/// A triple of interned term ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject id.
    pub s: Sym,
    /// Predicate id.
    pub p: Sym,
    /// Object id.
    pub o: Sym,
}

impl Triple {
    /// Construct from parts.
    pub fn new(s: Sym, p: Sym, o: Sym) -> Self {
        Triple { s, p, o }
    }
}

/// A triple pattern: `None` positions are wildcards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<Sym>,
    /// Predicate constraint.
    pub p: Option<Sym>,
    /// Object constraint.
    pub o: Option<Sym>,
}

impl TriplePattern {
    /// The fully unconstrained pattern.
    pub fn any() -> Self {
        Self::default()
    }

    /// Does a concrete triple match this pattern?
    #[inline]
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

/// Entries of a ternary index whose first two components equal `(a, b)`.
fn pair_range(
    idx: &BTreeSet<(Sym, Sym, Sym)>,
    a: Sym,
    b: Sym,
) -> impl Iterator<Item = &(Sym, Sym, Sym)> {
    idx.range((a, b, Sym(0))..=(a, b, Sym(u32::MAX)))
}

/// Entries of a ternary index whose first component equals `a`.
fn prefix_range(idx: &BTreeSet<(Sym, Sym, Sym)>, a: Sym) -> impl Iterator<Item = &(Sym, Sym, Sym)> {
    idx.range((a, Sym(0), Sym(0))..=(a, Sym(u32::MAX), Sym(u32::MAX)))
}

/// Per-predicate cardinality statistics, maintained incrementally.
///
/// These are the histogram buckets the query optimizer's join ordering
/// consumes: knowing how many triples a predicate has *and* over how many
/// distinct subjects/objects they spread yields the average fan-out
/// (`triples / distinct_subjects` matches per bound subject, and likewise
/// for objects) without scanning any index at plan time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PredicateCard {
    /// Total triples carrying this predicate.
    pub triples: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

impl PredicateCard {
    /// Expected matches of `(s, p, ?o)` for a known subject: the average
    /// out-fan of this predicate (at least 1 while any triple exists).
    pub fn subject_fanout(&self) -> usize {
        ratio_ceil(self.triples, self.distinct_subjects)
    }

    /// Expected matches of `(?s, p, o)` for a known object: the average
    /// in-fan of this predicate (at least 1 while any triple exists).
    pub fn object_fanout(&self) -> usize {
        ratio_ceil(self.triples, self.distinct_objects)
    }
}

/// `ceil(n / d)` with `0` for an empty numerator and `n` for a zero
/// denominator (a predicate with triples always has distinct terms, so
/// the latter only guards against inconsistent inputs).
fn ratio_ceil(n: usize, d: usize) -> usize {
    if n == 0 {
        0
    } else if d == 0 {
        n
    } else {
        n.div_ceil(d)
    }
}

/// An indexed, interning triple store.
///
/// Iteration order of all query methods is deterministic (sorted by id).
#[derive(Debug, Default, Clone)]
pub struct Graph {
    pool: TermPool,
    spo: BTreeSet<(Sym, Sym, Sym)>,
    pos: BTreeSet<(Sym, Sym, Sym)>,
    osp: BTreeSet<(Sym, Sym, Sym)>,
    /// Per-predicate cardinality histogram, maintained incrementally on
    /// insert/remove for selectivity estimation in the query optimizer.
    pred_stats: BTreeMap<Sym, PredicateCard>,
    /// Distinct subjects across the whole graph (predicate-agnostic).
    subject_card: usize,
    /// Distinct objects across the whole graph (predicate-agnostic).
    object_card: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable access to the term pool.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Mutable access to the term pool (for callers that need to intern
    /// query constants against this graph's id space).
    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// Intern a term in this graph's pool.
    pub fn intern(&mut self, term: Term) -> Sym {
        self.pool.intern(term)
    }

    /// Intern an IRI in this graph's pool.
    pub fn intern_iri(&mut self, iri: impl Into<String>) -> Sym {
        self.pool.intern_iri(iri)
    }

    /// Resolve an id back to its term.
    pub fn resolve(&self, sym: Sym) -> &Term {
        self.pool.resolve(sym)
    }

    /// Human-readable label for an id.
    pub fn label(&self, sym: Sym) -> &str {
        self.pool.label(sym)
    }

    /// Insert a triple of already-interned ids. Returns `true` if new.
    ///
    /// Cardinality statistics ([`PredicateCard`] per predicate plus the
    /// graph-wide distinct subject/object counts) are maintained here with
    /// `O(log n)` range-emptiness probes, so planning never has to scan.
    pub fn insert(&mut self, s: Sym, p: Sym, o: Sym) -> bool {
        if self.spo.contains(&(s, p, o)) {
            return false;
        }
        let new_sp = pair_range(&self.spo, s, p).next().is_none();
        let new_po = pair_range(&self.pos, p, o).next().is_none();
        let new_subject = prefix_range(&self.spo, s).next().is_none();
        let new_object = prefix_range(&self.osp, o).next().is_none();
        self.spo.insert((s, p, o));
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
        let card = self.pred_stats.entry(p).or_default();
        card.triples += 1;
        card.distinct_subjects += usize::from(new_sp);
        card.distinct_objects += usize::from(new_po);
        self.subject_card += usize::from(new_subject);
        self.object_card += usize::from(new_object);
        true
    }

    /// Intern three terms and insert the triple.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> Triple {
        let t = Triple {
            s: self.pool.intern(s),
            p: self.pool.intern(p),
            o: self.pool.intern(o),
        };
        self.insert(t.s, t.p, t.o);
        t
    }

    /// Convenience: insert `(<s>, <p>, <o>)` as IRIs.
    pub fn insert_iri(&mut self, s: &str, p: &str, o: &str) -> Triple {
        self.insert_terms(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// Remove a triple. Returns `true` if it was present.
    ///
    /// The inverse of [`Graph::insert`]: the same range-emptiness probes
    /// decide whether a distinct subject/object count drops.
    pub fn remove(&mut self, s: Sym, p: Sym, o: Sym) -> bool {
        if !self.spo.remove(&(s, p, o)) {
            return false;
        }
        self.pos.remove(&(p, o, s));
        self.osp.remove(&(o, s, p));
        let gone_sp = pair_range(&self.spo, s, p).next().is_none();
        let gone_po = pair_range(&self.pos, p, o).next().is_none();
        let gone_subject = prefix_range(&self.spo, s).next().is_none();
        let gone_object = prefix_range(&self.osp, o).next().is_none();
        if let Some(card) = self.pred_stats.get_mut(&p) {
            card.triples -= 1;
            card.distinct_subjects -= usize::from(gone_sp);
            card.distinct_objects -= usize::from(gone_po);
            if card.triples == 0 {
                self.pred_stats.remove(&p);
            }
        }
        self.subject_card -= usize::from(gone_subject);
        self.object_card -= usize::from(gone_object);
        true
    }

    /// Membership test.
    pub fn contains(&self, s: Sym, p: Sym, o: Sym) -> bool {
        self.spo.contains(&(s, p, o))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterate all triples in (s, p, o) order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple { s, p, o })
    }

    /// Match a pattern, choosing the best index for the bound positions.
    ///
    /// Returned triples are in a deterministic order (sorted under the
    /// chosen index).
    pub fn match_pattern(&self, pat: TriplePattern) -> Vec<Triple> {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains(s, p, o) {
                    vec![Triple { s, p, o }]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, Sym(0))..=(s, p, Sym(u32::MAX)))
                .map(|&(s, p, o)| Triple { s, p, o })
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range((s, Sym(0), Sym(0))..=(s, Sym(u32::MAX), Sym(u32::MAX)))
                .map(|&(s, p, o)| Triple { s, p, o })
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p, o, Sym(0))..=(p, o, Sym(u32::MAX)))
                .map(|&(p, o, s)| Triple { s, p, o })
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((p, Sym(0), Sym(0))..=(p, Sym(u32::MAX), Sym(u32::MAX)))
                .map(|&(p, o, s)| Triple { s, p, o })
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o, Sym(0), Sym(0))..=(o, Sym(u32::MAX), Sym(u32::MAX)))
                .map(|&(o, s, p)| Triple { s, p, o })
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range((o, s, Sym(0))..=(o, s, Sym(u32::MAX)))
                .map(|&(o, s, p)| Triple { s, p, o })
                .collect(),
            (None, None, None) => self.iter().collect(),
        }
    }

    /// Estimated number of matches for a pattern, used for join ordering.
    ///
    /// Exact for the fully-bound / fully-free / predicate-bound shapes;
    /// histogram-driven (average per-predicate fan-out from
    /// [`PredicateCard`]) for half-bound predicate shapes; degree-based
    /// elsewhere. Never scans an index.
    pub fn estimate(&self, pat: TriplePattern) -> usize {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(s, p, o)),
            (None, None, None) => self.len(),
            (None, Some(p), None) => self.predicate_card(p).triples,
            (Some(s), Some(p), None) => {
                let card = self.predicate_card(p);
                card.subject_fanout().min(self.degree(s))
            }
            (None, Some(p), Some(o)) => {
                let card = self.predicate_card(p);
                card.object_fanout().min(self.degree(o))
            }
            (Some(s), None, None) => self.out_degree(s),
            (None, None, Some(o)) => self.in_degree(o),
            (Some(s), None, Some(o)) => self.out_degree(s).min(self.in_degree(o)),
        }
    }

    /// Cardinality histogram entry for a predicate (zeros when absent).
    pub fn predicate_card(&self, p: Sym) -> PredicateCard {
        self.pred_stats.get(&p).copied().unwrap_or_default()
    }

    /// Number of distinct subjects across the whole graph.
    pub fn subject_cardinality(&self) -> usize {
        self.subject_card
    }

    /// Number of distinct objects across the whole graph.
    pub fn object_cardinality(&self) -> usize {
        self.object_card
    }

    /// Objects `o` such that `(s, p, o)` holds.
    pub fn objects(&self, s: Sym, p: Sym) -> Vec<Sym> {
        pair_range(&self.spo, s, p).map(|&(_, _, o)| o).collect()
    }

    /// Subjects `s` such that `(s, p, o)` holds.
    pub fn subjects(&self, p: Sym, o: Sym) -> Vec<Sym> {
        pair_range(&self.pos, p, o).map(|&(_, _, s)| s).collect()
    }

    /// All outgoing edges `(p, o)` of a subject.
    pub fn outgoing(&self, s: Sym) -> Vec<(Sym, Sym)> {
        prefix_range(&self.spo, s)
            .map(|&(_, p, o)| (p, o))
            .collect()
    }

    /// All incoming edges `(s, p)` of an object.
    pub fn incoming(&self, o: Sym) -> Vec<(Sym, Sym)> {
        prefix_range(&self.osp, o)
            .map(|&(_, s, p)| (s, p))
            .collect()
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, s: Sym) -> usize {
        prefix_range(&self.spo, s).count()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, o: Sym) -> usize {
        prefix_range(&self.osp, o).count()
    }

    /// Total degree (in + out) of a node.
    pub fn degree(&self, n: Sym) -> usize {
        self.out_degree(n) + self.in_degree(n)
    }

    /// Number of distinct predicates present.
    pub fn predicate_count(&self) -> usize {
        self.pred_stats.len()
    }

    /// Distinct predicates, sorted, with their triple counts.
    pub fn predicates(&self) -> Vec<(Sym, usize)> {
        self.pred_stats
            .iter()
            .map(|(&p, c)| (p, c.triples))
            .collect()
    }

    /// Distinct subjects and objects that are IRIs (entities), sorted.
    pub fn entities(&self) -> Vec<Sym> {
        let mut set = BTreeSet::new();
        for &(s, _, o) in &self.spo {
            if self.pool.resolve(s).is_iri() {
                set.insert(s);
            }
            if self.pool.resolve(o).is_iri() {
                set.insert(o);
            }
        }
        set.into_iter().collect()
    }

    /// Entities having an `rdf:type` edge to `class`.
    pub fn instances_of(&self, class: Sym) -> Vec<Sym> {
        match self.pool.get_iri(namespace::RDF_TYPE) {
            Some(ty) => self.subjects(ty, class),
            None => Vec::new(),
        }
    }

    /// The `rdf:type` objects of an entity.
    pub fn types_of(&self, entity: Sym) -> Vec<Sym> {
        match self.pool.get_iri(namespace::RDF_TYPE) {
            Some(ty) => self.objects(entity, ty),
            None => Vec::new(),
        }
    }

    /// The first `rdfs:label` literal of an entity, if any, else the
    /// humanized local name.
    pub fn display_name(&self, entity: Sym) -> String {
        if let Some(lp) = self.pool.get_iri(namespace::RDFS_LABEL) {
            if let Some(&o) = self.objects(entity, lp).first() {
                if let Term::Literal(l) = self.pool.resolve(o) {
                    return l.lexical.clone();
                }
            }
        }
        namespace::humanize(self.pool.label(entity))
    }

    /// Merge all triples of `other` into `self`, translating ids across
    /// pools. Returns the number of triples newly inserted.
    pub fn merge(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        for t in other.iter() {
            let s = self.pool.intern(other.resolve(t.s).clone());
            let p = self.pool.intern(other.resolve(t.p).clone());
            let o = self.pool.intern(other.resolve(t.o).clone());
            if self.insert(s, p, o) {
                added += 1;
            }
        }
        added
    }
}

impl Extend<(Term, Term, Term)> for Graph {
    fn extend<I: IntoIterator<Item = (Term, Term, Term)>>(&mut self, iter: I) {
        for (s, p, o) in iter {
            self.insert_terms(s, p, o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut g = Graph::new();
        g.insert_iri("http://e/alice", "http://v/knows", "http://e/bob");
        g.insert_iri("http://e/alice", "http://v/knows", "http://e/carol");
        g.insert_iri("http://e/bob", "http://v/knows", "http://e/carol");
        g.insert_iri("http://e/alice", "http://v/age", "http://e/unused");
        g
    }

    #[test]
    fn insert_is_idempotent_and_indexed() {
        let mut g = Graph::new();
        let t = g.insert_iri("http://e/a", "http://v/p", "http://e/b");
        assert_eq!(g.len(), 1);
        g.insert(t.s, t.p, t.o);
        assert_eq!(g.len(), 1);
        assert!(g.contains(t.s, t.p, t.o));
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        let bob = g.pool().get_iri("http://e/bob").unwrap();
        assert!(g.remove(alice, knows, bob));
        assert!(!g.remove(alice, knows, bob));
        assert!(!g.contains(alice, knows, bob));
        assert_eq!(
            g.match_pattern(TriplePattern {
                s: None,
                p: Some(knows),
                o: None
            })
            .len(),
            2
        );
        assert_eq!(g.objects(alice, knows).len(), 1);
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        let carol = g.pool().get_iri("http://e/carol").unwrap();
        let m = |s, p, o| g.match_pattern(TriplePattern { s, p, o }).len();
        assert_eq!(m(None, None, None), 4);
        assert_eq!(m(Some(alice), None, None), 3);
        assert_eq!(m(None, Some(knows), None), 3);
        assert_eq!(m(None, None, Some(carol)), 2);
        assert_eq!(m(Some(alice), Some(knows), None), 2);
        assert_eq!(m(Some(alice), None, Some(carol)), 1);
        assert_eq!(m(None, Some(knows), Some(carol)), 2);
        assert_eq!(m(Some(alice), Some(knows), Some(carol)), 1);
    }

    #[test]
    fn pattern_results_agree_with_naive_filter() {
        let g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        for pat in [
            TriplePattern {
                s: Some(alice),
                p: None,
                o: None,
            },
            TriplePattern {
                s: None,
                p: Some(knows),
                o: None,
            },
            TriplePattern::any(),
        ] {
            let fast: Vec<_> = g.match_pattern(pat);
            let slow: Vec<_> = g.iter().filter(|t| pat.matches(t)).collect();
            assert_eq!(fast.len(), slow.len());
            for t in &fast {
                assert!(slow.contains(t));
            }
        }
    }

    #[test]
    fn degrees_and_predicates() {
        let g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let carol = g.pool().get_iri("http://e/carol").unwrap();
        assert_eq!(g.out_degree(alice), 3);
        assert_eq!(g.in_degree(carol), 2);
        assert_eq!(g.degree(carol), 2); // two incoming `knows` edges, no outgoing
        let preds = g.predicates();
        assert_eq!(preds.len(), 2);
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        assert!(preds.contains(&(knows, 3)));
    }

    #[test]
    fn estimate_matches_reality_for_exact_shapes() {
        let g = tiny();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        assert_eq!(g.estimate(TriplePattern::any()), 4);
        assert_eq!(
            g.estimate(TriplePattern {
                s: None,
                p: Some(knows),
                o: None
            }),
            3
        );
    }

    #[test]
    fn predicate_card_tracks_distinct_terms_incrementally() {
        let mut g = Graph::new();
        g.insert_iri("http://e/a", "http://v/p", "http://e/x");
        g.insert_iri("http://e/a", "http://v/p", "http://e/y");
        g.insert_iri("http://e/b", "http://v/p", "http://e/x");
        let p = g.pool().get_iri("http://v/p").unwrap();
        let card = g.predicate_card(p);
        assert_eq!(card.triples, 3);
        assert_eq!(card.distinct_subjects, 2); // a, b
        assert_eq!(card.distinct_objects, 2); // x, y
        assert_eq!(card.subject_fanout(), 2); // ceil(3/2)
        assert_eq!(card.object_fanout(), 2);
        // removing (a p y) drops object y but keeps subject a (a p x stays)
        let a = g.pool().get_iri("http://e/a").unwrap();
        let y = g.pool().get_iri("http://e/y").unwrap();
        assert!(g.remove(a, p, y));
        let card = g.predicate_card(p);
        assert_eq!(card.triples, 2);
        assert_eq!(card.distinct_subjects, 2);
        assert_eq!(card.distinct_objects, 1);
        // draining the predicate drops its histogram entry entirely
        let b = g.pool().get_iri("http://e/b").unwrap();
        let x = g.pool().get_iri("http://e/x").unwrap();
        g.remove(a, p, x);
        g.remove(b, p, x);
        assert_eq!(g.predicate_card(p), PredicateCard::default());
        assert_eq!(g.subject_cardinality(), 0);
        assert_eq!(g.object_cardinality(), 0);
    }

    #[test]
    fn graph_wide_cardinalities_count_distinct_positions() {
        let mut g = tiny();
        // subjects: alice, bob; objects: bob, carol, unused
        assert_eq!(g.subject_cardinality(), 2);
        assert_eq!(g.object_cardinality(), 3);
        // duplicate insert changes nothing
        g.insert_iri("http://e/alice", "http://v/knows", "http://e/bob");
        assert_eq!(g.subject_cardinality(), 2);
        assert_eq!(g.object_cardinality(), 3);
    }

    #[test]
    fn estimate_uses_histogram_fanout_for_half_bound_shapes() {
        let mut g = Graph::new();
        // a star predicate: one subject, many objects
        for i in 0..10 {
            g.insert_iri("http://e/hub", "http://v/spokes", &format!("http://e/o{i}"));
        }
        let hub = g.pool().get_iri("http://e/hub").unwrap();
        let spokes = g.pool().get_iri("http://v/spokes").unwrap();
        let o0 = g.pool().get_iri("http://e/o0").unwrap();
        // bound subject: the full fan-out of the hub, not count/8
        assert_eq!(
            g.estimate(TriplePattern {
                s: Some(hub),
                p: Some(spokes),
                o: None
            }),
            10
        );
        // bound object: each object has exactly one incoming edge
        assert_eq!(
            g.estimate(TriplePattern {
                s: None,
                p: Some(spokes),
                o: Some(o0)
            }),
            1
        );
    }

    #[test]
    fn types_and_instances() {
        let mut g = Graph::new();
        g.insert_iri("http://e/alice", namespace::RDF_TYPE, "http://v/Person");
        g.insert_iri("http://e/bob", namespace::RDF_TYPE, "http://v/Person");
        let person = g.pool().get_iri("http://v/Person").unwrap();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        assert_eq!(g.instances_of(person).len(), 2);
        assert_eq!(g.types_of(alice), vec![person]);
    }

    #[test]
    fn display_name_prefers_label() {
        let mut g = Graph::new();
        let a = g.intern_iri("http://e/alice_smith");
        let lbl = g.intern_iri(namespace::RDFS_LABEL);
        let lit = g.intern(Term::lit("Alice Smith"));
        assert_eq!(g.display_name(a), "alice smith");
        g.insert(a, lbl, lit);
        assert_eq!(g.display_name(a), "Alice Smith");
    }

    #[test]
    fn merge_translates_ids() {
        let mut g1 = Graph::new();
        g1.insert_iri("http://e/x", "http://v/p", "http://e/y");
        let mut g2 = Graph::new();
        g2.insert_iri("http://e/z", "http://v/p", "http://e/x");
        g2.insert_iri("http://e/x", "http://v/p", "http://e/y");
        let added = g1.merge(&g2);
        assert_eq!(added, 1);
        assert_eq!(g1.len(), 2);
        let x = g1.pool().get_iri("http://e/x").unwrap();
        let p = g1.pool().get_iri("http://v/p").unwrap();
        let z = g1.pool().get_iri("http://e/z").unwrap();
        assert!(g1.contains(z, p, x));
    }

    #[test]
    fn entities_excludes_literals() {
        let mut g = Graph::new();
        g.insert_terms(
            Term::iri("http://e/a"),
            Term::iri("http://v/name"),
            Term::lit("A"),
        );
        g.insert_iri("http://e/a", "http://v/knows", "http://e/b");
        // literals never count as entities; only IRI subjects/objects do
        assert_eq!(g.entities().len(), 2);
    }
}
