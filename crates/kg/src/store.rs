//! The indexed in-memory triple store.
//!
//! [`Graph`] owns a [`TermPool`] and a flat columnar index: one sorted
//! arena `Vec<[Sym; 3]>` in SPO order plus two `u32` row-id permutation
//! arrays (POS, OSP), so every binding shape of a triple pattern is
//! answered by a `partition_point` binary-search range — 20 bytes per
//! triple instead of three pointer-chasing B-trees. Mutations land in a
//! small `BTreeSet` delta overlay (adds plus tombstones) merged into the
//! base by [`Graph::compact`]; reads merge the base range with the delta
//! range on the fly, so results are identical before and after
//! compaction. See `docs/storage.md` for the full layout.

use std::collections::{BTreeMap, BTreeSet};

use crate::namespace;
use crate::term::{Sym, Term, TermPool};

/// Smallest possible id, used as an inclusive range bound.
const SYM_MIN: Sym = Sym(0);
/// Largest possible id, used as an inclusive range bound.
const SYM_MAX: Sym = Sym(u32::MAX);

/// Extra delta entries tolerated before an automatic [`Graph::compact`]:
/// the overlay may grow to `DELTA_SLACK + base/2` entries, making the
/// amortized cost of incremental insertion `O(log n)` probes per triple
/// plus a geometric series of merges.
const DELTA_SLACK: usize = 1024;

/// Minimum number of mutations between statistics-epoch bumps. Below
/// this, [`PredicateCard`] drift cannot have moved any join-order
/// decision enough to matter, so cached plans stay valid; see
/// [`Graph::stats_epoch`].
const EPOCH_MIN_DRIFT: usize = 64;

/// A triple of interned term ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject id.
    pub s: Sym,
    /// Predicate id.
    pub p: Sym,
    /// Object id.
    pub o: Sym,
}

impl Triple {
    /// Construct from parts.
    pub fn new(s: Sym, p: Sym, o: Sym) -> Self {
        Triple { s, p, o }
    }
}

/// A triple pattern: `None` positions are wildcards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<Sym>,
    /// Predicate constraint.
    pub p: Option<Sym>,
    /// Object constraint.
    pub o: Option<Sym>,
}

impl TriplePattern {
    /// The fully unconstrained pattern.
    pub fn any() -> Self {
        Self::default()
    }

    /// Does a concrete triple match this pattern?
    #[inline]
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

/// Which permutation a scan runs under. Keys are the triple's components
/// rotated so the permutation's sort order is plain tuple order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Perm {
    Spo,
    Pos,
    Osp,
}

impl Perm {
    /// The permuted sort key of a base row.
    #[inline]
    fn key(self, r: [Sym; 3]) -> (Sym, Sym, Sym) {
        match self {
            Perm::Spo => (r[0], r[1], r[2]),
            Perm::Pos => (r[1], r[2], r[0]),
            Perm::Osp => (r[2], r[0], r[1]),
        }
    }

    /// Invert a permuted key back into a triple.
    #[inline]
    fn triple(self, k: (Sym, Sym, Sym)) -> Triple {
        match self {
            Perm::Spo => Triple {
                s: k.0,
                p: k.1,
                o: k.2,
            },
            Perm::Pos => Triple {
                s: k.2,
                p: k.0,
                o: k.1,
            },
            Perm::Osp => Triple {
                s: k.1,
                p: k.2,
                o: k.0,
            },
        }
    }
}

/// Per-predicate cardinality statistics, maintained incrementally.
///
/// These are the histogram buckets the query optimizer's join ordering
/// consumes: knowing how many triples a predicate has *and* over how many
/// distinct subjects/objects they spread yields the average fan-out
/// (`triples / distinct_subjects` matches per bound subject, and likewise
/// for objects) without scanning any index at plan time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PredicateCard {
    /// Total triples carrying this predicate.
    pub triples: usize,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: usize,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: usize,
}

impl PredicateCard {
    /// Expected matches of `(s, p, ?o)` for a known subject: the average
    /// out-fan of this predicate (at least 1 while any triple exists).
    pub fn subject_fanout(&self) -> usize {
        ratio_ceil(self.triples, self.distinct_subjects)
    }

    /// Expected matches of `(?s, p, o)` for a known object: the average
    /// in-fan of this predicate (at least 1 while any triple exists).
    pub fn object_fanout(&self) -> usize {
        ratio_ceil(self.triples, self.distinct_objects)
    }
}

/// `ceil(n / d)` with `0` for an empty numerator and `n` for a zero
/// denominator (a predicate with triples always has distinct terms, so
/// the latter only guards against inconsistent inputs).
fn ratio_ceil(n: usize, d: usize) -> usize {
    if n == 0 {
        0
    } else if d == 0 {
        n
    } else {
        n.div_ceil(d)
    }
}

/// An indexed, interning triple store.
///
/// Iteration order of all query methods is deterministic (sorted by id
/// under the permutation each method scans).
#[derive(Debug, Default, Clone)]
pub struct Graph {
    pool: TermPool,
    /// The compacted arena: all base triples as `[s, p, o]`, sorted.
    base: Vec<[Sym; 3]>,
    /// Row ids into `base`, sorted by `(p, o, s)`.
    pos_idx: Vec<u32>,
    /// Row ids into `base`, sorted by `(o, s, p)`.
    osp_idx: Vec<u32>,
    /// Delta overlay: inserted triples not yet compacted, one set per
    /// permutation so delta range scans share the base's sort orders.
    /// Invariant: disjoint from the base rows.
    d_spo: BTreeSet<(Sym, Sym, Sym)>,
    d_pos: BTreeSet<(Sym, Sym, Sym)>,
    d_osp: BTreeSet<(Sym, Sym, Sym)>,
    /// Tombstones: base rows removed since the last compaction, stored as
    /// `(s, p, o)`. Membership is permutation-agnostic, so one set filters
    /// every scan. Invariant: a subset of the base rows.
    dead: BTreeSet<(Sym, Sym, Sym)>,
    /// Per-predicate cardinality histogram, maintained incrementally on
    /// insert/remove for selectivity estimation in the query optimizer.
    pred_stats: BTreeMap<Sym, PredicateCard>,
    /// Distinct subjects across the whole graph (predicate-agnostic).
    subject_card: usize,
    /// Distinct objects across the whole graph (predicate-agnostic).
    object_card: usize,
    /// Statistics epoch: bumped whenever cumulative [`PredicateCard`]
    /// drift since the last bump crosses a threshold. Plan caches key
    /// their validity on this (see `kgquery::PlanCache`).
    stats_epoch: u64,
    /// Mutations (inserts + removes) since the last epoch bump.
    stats_drift: usize,
    /// Live triple count at the last epoch bump, the basis of the
    /// relative drift threshold.
    epoch_len: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable access to the term pool.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Mutable access to the term pool (for callers that need to intern
    /// query constants against this graph's id space).
    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// Intern a term in this graph's pool.
    pub fn intern(&mut self, term: Term) -> Sym {
        self.pool.intern(term)
    }

    /// Intern an IRI in this graph's pool.
    pub fn intern_iri(&mut self, iri: impl Into<String>) -> Sym {
        self.pool.intern_iri(iri)
    }

    /// Resolve an id back to its term.
    pub fn resolve(&self, sym: Sym) -> &Term {
        self.pool.resolve(sym)
    }

    /// Human-readable label for an id.
    pub fn label(&self, sym: Sym) -> &str {
        self.pool.label(sym)
    }

    /// Whether a base row exists (live or tombstoned).
    #[inline]
    fn base_contains(&self, r: [Sym; 3]) -> bool {
        self.base.binary_search(&r).is_ok()
    }

    /// The half-open range of scan positions whose permuted key lies in
    /// `lo..=hi`. Positions index `base` directly for SPO and the row-id
    /// arrays for POS/OSP.
    fn base_range(&self, perm: Perm, lo: (Sym, Sym, Sym), hi: (Sym, Sym, Sym)) -> (usize, usize) {
        match perm {
            Perm::Spo => {
                let start = self.base.partition_point(|&r| perm.key(r) < lo);
                let len = self.base[start..].partition_point(|&r| perm.key(r) <= hi);
                (start, start + len)
            }
            Perm::Pos => idx_range(&self.base, &self.pos_idx, perm, lo, hi),
            Perm::Osp => idx_range(&self.base, &self.osp_idx, perm, lo, hi),
        }
    }

    /// The base row at a scan position under a permutation.
    #[inline]
    fn row_at(&self, perm: Perm, pos: usize) -> [Sym; 3] {
        match perm {
            Perm::Spo => self.base[pos],
            Perm::Pos => self.base[self.pos_idx[pos] as usize],
            Perm::Osp => self.base[self.osp_idx[pos] as usize],
        }
    }

    /// The delta-add set sorted under a permutation.
    #[inline]
    fn delta_set(&self, perm: Perm) -> &BTreeSet<(Sym, Sym, Sym)> {
        match perm {
            Perm::Spo => &self.d_spo,
            Perm::Pos => &self.d_pos,
            Perm::Osp => &self.d_osp,
        }
    }

    /// Whether any live triple has a permuted key in `lo..=hi`.
    fn live_empty(&self, perm: Perm, lo: (Sym, Sym, Sym), hi: (Sym, Sym, Sym)) -> bool {
        PatternScan::new(self, perm, lo, hi).next().is_none()
    }

    /// Number of live triples with a permuted key in `lo..=hi`.
    fn live_count(&self, perm: Perm, lo: (Sym, Sym, Sym), hi: (Sym, Sym, Sym)) -> usize {
        if self.dead.is_empty() {
            let (start, end) = self.base_range(perm, lo, hi);
            end - start + self.delta_set(perm).range(lo..=hi).count()
        } else {
            PatternScan::new(self, perm, lo, hi).count()
        }
    }

    /// Insert a triple of already-interned ids. Returns `true` if new.
    ///
    /// The triple lands in the delta overlay (or resurrects a tombstoned
    /// base row); cardinality statistics ([`PredicateCard`] per predicate
    /// plus the graph-wide distinct subject/object counts) are maintained
    /// here with `O(log n)` range-emptiness probes, so planning never has
    /// to scan. A large overlay triggers an automatic [`Graph::compact`].
    pub fn insert(&mut self, s: Sym, p: Sym, o: Sym) -> bool {
        let in_base = self.base_contains([s, p, o]);
        let tombstoned = in_base && self.dead.contains(&(s, p, o));
        if (in_base && !tombstoned) || self.d_spo.contains(&(s, p, o)) {
            return false;
        }
        let new_sp = self.live_empty(Perm::Spo, (s, p, SYM_MIN), (s, p, SYM_MAX));
        let new_po = self.live_empty(Perm::Pos, (p, o, SYM_MIN), (p, o, SYM_MAX));
        let new_subject = self.live_empty(Perm::Spo, (s, SYM_MIN, SYM_MIN), (s, SYM_MAX, SYM_MAX));
        let new_object = self.live_empty(Perm::Osp, (o, SYM_MIN, SYM_MIN), (o, SYM_MAX, SYM_MAX));
        if tombstoned {
            self.dead.remove(&(s, p, o));
        } else {
            self.d_spo.insert((s, p, o));
            self.d_pos.insert((p, o, s));
            self.d_osp.insert((o, s, p));
        }
        let card = self.pred_stats.entry(p).or_default();
        card.triples += 1;
        card.distinct_subjects += usize::from(new_sp);
        card.distinct_objects += usize::from(new_po);
        self.subject_card += usize::from(new_subject);
        self.object_card += usize::from(new_object);
        self.note_stats_drift(1);
        self.maybe_compact();
        true
    }

    /// Intern three terms and insert the triple.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> Triple {
        let t = Triple {
            s: self.pool.intern(s),
            p: self.pool.intern(p),
            o: self.pool.intern(o),
        };
        self.insert(t.s, t.p, t.o);
        t
    }

    /// Convenience: insert `(<s>, <p>, <o>)` as IRIs.
    pub fn insert_iri(&mut self, s: &str, p: &str, o: &str) -> Triple {
        self.insert_terms(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// Remove a triple. Returns `true` if it was present.
    ///
    /// The inverse of [`Graph::insert`]: a delta add is dropped outright,
    /// a base row gains a tombstone, and the same range-emptiness probes
    /// decide whether a distinct subject/object count drops.
    pub fn remove(&mut self, s: Sym, p: Sym, o: Sym) -> bool {
        if self.d_spo.remove(&(s, p, o)) {
            self.d_pos.remove(&(p, o, s));
            self.d_osp.remove(&(o, s, p));
        } else if self.base_contains([s, p, o]) && !self.dead.contains(&(s, p, o)) {
            self.dead.insert((s, p, o));
        } else {
            return false;
        }
        let gone_sp = self.live_empty(Perm::Spo, (s, p, SYM_MIN), (s, p, SYM_MAX));
        let gone_po = self.live_empty(Perm::Pos, (p, o, SYM_MIN), (p, o, SYM_MAX));
        let gone_subject = self.live_empty(Perm::Spo, (s, SYM_MIN, SYM_MIN), (s, SYM_MAX, SYM_MAX));
        let gone_object = self.live_empty(Perm::Osp, (o, SYM_MIN, SYM_MIN), (o, SYM_MAX, SYM_MAX));
        if let Some(card) = self.pred_stats.get_mut(&p) {
            card.triples -= 1;
            card.distinct_subjects -= usize::from(gone_sp);
            card.distinct_objects -= usize::from(gone_po);
            if card.triples == 0 {
                self.pred_stats.remove(&p);
            }
        }
        self.subject_card -= usize::from(gone_subject);
        self.object_card -= usize::from(gone_object);
        self.note_stats_drift(1);
        self.maybe_compact();
        true
    }

    /// Bulk-load triples of already-interned ids, replacing the overlay
    /// with a freshly sorted arena in one pass. Returns the number newly
    /// inserted.
    ///
    /// `O((n + k) log (n + k))` total for `k` new triples over `n`
    /// existing — the path for building million-triple graphs, where
    /// per-insert incremental statistics probes would dominate. Statistics
    /// are recounted from the sorted arena, which is also linear.
    pub fn bulk_load(&mut self, triples: impl IntoIterator<Item = (Sym, Sym, Sym)>) -> usize {
        let before = self.len();
        let mut rows: Vec<[Sym; 3]> = self.iter().map(|t| [t.s, t.p, t.o]).collect();
        rows.extend(triples.into_iter().map(|(s, p, o)| [s, p, o]));
        rows.sort_unstable();
        rows.dedup();
        rows.shrink_to_fit();
        self.base = rows;
        self.d_spo.clear();
        self.d_pos.clear();
        self.d_osp.clear();
        self.dead.clear();
        self.rebuild_indexes();
        self.rebuild_stats();
        let inserted = self.len() - before;
        if inserted > 0 {
            // the recount can move every histogram at once, so any plan
            // compiled against the old statistics is stale
            self.bump_stats_epoch();
        }
        inserted
    }

    /// The current statistics epoch.
    ///
    /// Monotone; bumped when cumulative mutation drift since the last
    /// bump exceeds `max(64, live_len_at_last_bump / 8)` (or
    /// unconditionally on [`Graph::bulk_load`], which recounts every
    /// histogram). A cached query plan compiled at epoch `e` is still
    /// honest while `stats_epoch() == e`: the [`PredicateCard`]s its join
    /// order was derived from have drifted by less than the threshold.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Force a statistics-epoch bump, invalidating all cached plans.
    ///
    /// For callers that mutate the graph out-of-band or want deterministic
    /// invalidation in tests; normal mutation paths bump automatically.
    pub fn bump_stats_epoch(&mut self) {
        self.stats_epoch += 1;
        self.stats_drift = 0;
        self.epoch_len = self.len();
    }

    /// Account one mutation toward the epoch drift threshold.
    fn note_stats_drift(&mut self, n: usize) {
        self.stats_drift += n;
        if self.stats_drift >= EPOCH_MIN_DRIFT.max(self.epoch_len / 8) {
            self.bump_stats_epoch();
        }
    }

    /// Merge the delta overlay into the base arena.
    ///
    /// Linear in the live triple count; a no-op when already compacted.
    /// Purely a representation change: every query answers identically
    /// before and after, and statistics are untouched. Compacted graphs
    /// answer scans from contiguous memory and enable the executor's
    /// sorted-merge join path ([`Graph::merge_probe`]).
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        let mut merged: Vec<[Sym; 3]> = Vec::with_capacity(self.len());
        let mut adds = self.d_spo.iter().peekable();
        for &row in &self.base {
            if !self.dead.is_empty() && self.dead.contains(&(row[0], row[1], row[2])) {
                continue;
            }
            while let Some(&&(a, b, c)) = adds.peek() {
                if [a, b, c] < row {
                    merged.push([a, b, c]);
                    adds.next();
                } else {
                    break;
                }
            }
            merged.push(row);
        }
        merged.extend(adds.map(|&(a, b, c)| [a, b, c]));
        self.base = merged;
        self.d_spo.clear();
        self.d_pos.clear();
        self.d_osp.clear();
        self.dead.clear();
        self.rebuild_indexes();
    }

    /// Whether the delta overlay is empty (all triples live in the base
    /// arena). Compacted graphs qualify for the merge-join fast path.
    pub fn is_compacted(&self) -> bool {
        self.d_spo.is_empty() && self.dead.is_empty()
    }

    /// Number of uncompacted overlay entries (delta adds plus tombstones).
    pub fn delta_len(&self) -> usize {
        self.d_spo.len() + self.dead.len()
    }

    /// Compact when the overlay outgrows its slack, keeping reads fast
    /// and the total merge work amortized.
    fn maybe_compact(&mut self) {
        if self.delta_len() > DELTA_SLACK + self.base.len() / 2 {
            self.compact();
        }
    }

    /// Re-sort the POS/OSP row-id permutations after the arena changed.
    fn rebuild_indexes(&mut self) {
        let n = self.base.len() as u32;
        let base = &self.base;
        self.pos_idx = (0..n).collect();
        self.pos_idx.sort_unstable_by_key(|&i| {
            let r = base[i as usize];
            (r[1], r[2], r[0])
        });
        self.osp_idx = (0..n).collect();
        self.osp_idx.sort_unstable_by_key(|&i| {
            let r = base[i as usize];
            (r[2], r[0], r[1])
        });
    }

    /// Recount all cardinality statistics from the sorted arena: distinct
    /// `(s, p)` / `(p, o)` / subject / object runs are contiguous under
    /// the matching permutation, so one linear pass per order suffices.
    fn rebuild_stats(&mut self) {
        let mut stats: BTreeMap<Sym, PredicateCard> = BTreeMap::new();
        let mut subject_card = 0usize;
        let mut prev_s = None;
        let mut prev_sp = None;
        for &r in &self.base {
            let card = stats.entry(r[1]).or_default();
            card.triples += 1;
            if prev_sp != Some((r[0], r[1])) {
                card.distinct_subjects += 1;
                prev_sp = Some((r[0], r[1]));
            }
            if prev_s != Some(r[0]) {
                subject_card += 1;
                prev_s = Some(r[0]);
            }
        }
        let mut prev_po = None;
        for &i in &self.pos_idx {
            let r = self.base[i as usize];
            if prev_po != Some((r[1], r[2])) {
                stats.entry(r[1]).or_default().distinct_objects += 1;
                prev_po = Some((r[1], r[2]));
            }
        }
        let mut object_card = 0usize;
        let mut prev_o = None;
        for &i in &self.osp_idx {
            let r = self.base[i as usize];
            if prev_o != Some(r[2]) {
                object_card += 1;
                prev_o = Some(r[2]);
            }
        }
        self.pred_stats = stats;
        self.subject_card = subject_card;
        self.object_card = object_card;
    }

    /// Membership test.
    pub fn contains(&self, s: Sym, p: Sym, o: Sym) -> bool {
        if self.d_spo.contains(&(s, p, o)) {
            return true;
        }
        self.base_contains([s, p, o]) && !self.dead.contains(&(s, p, o))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.base.len() - self.dead.len() + self.d_spo.len()
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate all triples in (s, p, o) order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.scan_pattern(TriplePattern::any())
    }

    /// Zero-copy scan of a pattern: an iterator that merges the base
    /// range (a binary-searched slice of the arena, or of a row-id
    /// permutation) with the delta overlay's matching range, skipping
    /// tombstones — no intermediate `Vec` is built.
    ///
    /// Triples stream in a deterministic order: sorted under the
    /// permutation chosen for the pattern's bound positions (the same
    /// order [`Graph::match_pattern`] returns).
    pub fn scan_pattern(&self, pat: TriplePattern) -> PatternScan<'_> {
        let (perm, lo, hi) = match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => (Perm::Spo, (s, p, o), (s, p, o)),
            (Some(s), Some(p), None) => (Perm::Spo, (s, p, SYM_MIN), (s, p, SYM_MAX)),
            (Some(s), None, None) => (Perm::Spo, (s, SYM_MIN, SYM_MIN), (s, SYM_MAX, SYM_MAX)),
            (None, Some(p), Some(o)) => (Perm::Pos, (p, o, SYM_MIN), (p, o, SYM_MAX)),
            (None, Some(p), None) => (Perm::Pos, (p, SYM_MIN, SYM_MIN), (p, SYM_MAX, SYM_MAX)),
            (None, None, Some(o)) => (Perm::Osp, (o, SYM_MIN, SYM_MIN), (o, SYM_MAX, SYM_MAX)),
            (Some(s), None, Some(o)) => (Perm::Osp, (o, s, SYM_MIN), (o, s, SYM_MAX)),
            (None, None, None) => (
                Perm::Spo,
                (SYM_MIN, SYM_MIN, SYM_MIN),
                (SYM_MAX, SYM_MAX, SYM_MAX),
            ),
        };
        PatternScan::new(self, perm, lo, hi)
    }

    /// Match a pattern, choosing the best index for the bound positions.
    ///
    /// Returned triples are in a deterministic order (sorted under the
    /// chosen index). Materializing convenience over
    /// [`Graph::scan_pattern`].
    pub fn match_pattern(&self, pat: TriplePattern) -> Vec<Triple> {
        self.scan_pattern(pat).collect()
    }

    /// A monotone probe cursor for sorted-merge joins over one predicate,
    /// or `None` when the graph is not compacted (overlay scans would
    /// break the cursor's contiguity) — callers fall back to per-binding
    /// probes.
    ///
    /// With `key_on_subject`, [`MergeProbe::seek`] takes ascending
    /// subjects and yields each one's objects; otherwise it takes
    /// ascending objects and yields subjects. Each seek narrows the
    /// remaining search window, so a full merge pass over `k` sorted keys
    /// costs `O(k log n)` with strictly shrinking ranges.
    pub fn merge_probe(&self, p: Sym, key_on_subject: bool) -> Option<MergeProbe<'_>> {
        if !self.is_compacted() {
            return None;
        }
        let (cursor, end) = if key_on_subject {
            (0, self.base.len())
        } else {
            self.base_range(Perm::Pos, (p, SYM_MIN, SYM_MIN), (p, SYM_MAX, SYM_MAX))
        };
        Some(MergeProbe {
            graph: self,
            p,
            key_on_subject,
            cursor,
            end,
        })
    }

    /// Estimated number of matches for a pattern, used for join ordering.
    ///
    /// Exact for the fully-bound / fully-free / predicate-bound shapes;
    /// histogram-driven (average per-predicate fan-out from
    /// [`PredicateCard`], clamped by the bound node's directional degree)
    /// for half-bound predicate shapes; degree-based elsewhere.
    pub fn estimate(&self, pat: TriplePattern) -> usize {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(s, p, o)),
            (None, None, None) => self.len(),
            (None, Some(p), None) => self.predicate_card(p).triples,
            (Some(s), Some(p), None) => {
                let card = self.predicate_card(p);
                card.subject_fanout().min(self.out_degree(s))
            }
            (None, Some(p), Some(o)) => {
                let card = self.predicate_card(p);
                card.object_fanout().min(self.in_degree(o))
            }
            (Some(s), None, None) => self.out_degree(s),
            (None, None, Some(o)) => self.in_degree(o),
            (Some(s), None, Some(o)) => self.out_degree(s).min(self.in_degree(o)),
        }
    }

    /// Cardinality histogram entry for a predicate (zeros when absent).
    pub fn predicate_card(&self, p: Sym) -> PredicateCard {
        self.pred_stats.get(&p).copied().unwrap_or_default()
    }

    /// Number of distinct subjects across the whole graph.
    pub fn subject_cardinality(&self) -> usize {
        self.subject_card
    }

    /// Number of distinct objects across the whole graph.
    pub fn object_cardinality(&self) -> usize {
        self.object_card
    }

    /// Objects `o` such that `(s, p, o)` holds.
    pub fn objects(&self, s: Sym, p: Sym) -> Vec<Sym> {
        self.scan_pattern(TriplePattern {
            s: Some(s),
            p: Some(p),
            o: None,
        })
        .map(|t| t.o)
        .collect()
    }

    /// Subjects `s` such that `(s, p, o)` holds.
    pub fn subjects(&self, p: Sym, o: Sym) -> Vec<Sym> {
        self.scan_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: Some(o),
        })
        .map(|t| t.s)
        .collect()
    }

    /// All outgoing edges `(p, o)` of a subject.
    pub fn outgoing(&self, s: Sym) -> Vec<(Sym, Sym)> {
        self.scan_pattern(TriplePattern {
            s: Some(s),
            p: None,
            o: None,
        })
        .map(|t| (t.p, t.o))
        .collect()
    }

    /// All incoming edges `(s, p)` of an object.
    pub fn incoming(&self, o: Sym) -> Vec<(Sym, Sym)> {
        self.scan_pattern(TriplePattern {
            s: None,
            p: None,
            o: Some(o),
        })
        .map(|t| (t.s, t.p))
        .collect()
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, s: Sym) -> usize {
        self.live_count(Perm::Spo, (s, SYM_MIN, SYM_MIN), (s, SYM_MAX, SYM_MAX))
    }

    /// In-degree of a node.
    pub fn in_degree(&self, o: Sym) -> usize {
        self.live_count(Perm::Osp, (o, SYM_MIN, SYM_MIN), (o, SYM_MAX, SYM_MAX))
    }

    /// Total degree (in + out) of a node.
    pub fn degree(&self, n: Sym) -> usize {
        self.out_degree(n) + self.in_degree(n)
    }

    /// Number of distinct predicates present.
    pub fn predicate_count(&self) -> usize {
        self.pred_stats.len()
    }

    /// Distinct predicates, sorted, with their triple counts.
    pub fn predicates(&self) -> Vec<(Sym, usize)> {
        self.pred_stats
            .iter()
            .map(|(&p, c)| (p, c.triples))
            .collect()
    }

    /// Distinct subjects and objects that are IRIs (entities), sorted.
    pub fn entities(&self) -> Vec<Sym> {
        let mut set = BTreeSet::new();
        for t in self.iter() {
            if self.pool.resolve(t.s).is_iri() {
                set.insert(t.s);
            }
            if self.pool.resolve(t.o).is_iri() {
                set.insert(t.o);
            }
        }
        set.into_iter().collect()
    }

    /// Entities having an `rdf:type` edge to `class`.
    pub fn instances_of(&self, class: Sym) -> Vec<Sym> {
        match self.pool.get_iri(namespace::RDF_TYPE) {
            Some(ty) => self.subjects(ty, class),
            None => Vec::new(),
        }
    }

    /// The `rdf:type` objects of an entity.
    pub fn types_of(&self, entity: Sym) -> Vec<Sym> {
        match self.pool.get_iri(namespace::RDF_TYPE) {
            Some(ty) => self.objects(entity, ty),
            None => Vec::new(),
        }
    }

    /// The first `rdfs:label` literal of an entity, if any, else the
    /// humanized local name.
    pub fn display_name(&self, entity: Sym) -> String {
        if let Some(lp) = self.pool.get_iri(namespace::RDFS_LABEL) {
            if let Some(&o) = self.objects(entity, lp).first() {
                if let Term::Literal(l) = self.pool.resolve(o) {
                    return l.lexical.clone();
                }
            }
        }
        namespace::humanize(self.pool.label(entity))
    }

    /// Merge all triples of `other` into `self`, translating ids across
    /// pools. Returns the number of triples newly inserted.
    pub fn merge(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        for t in other.iter() {
            let s = self.pool.intern(other.resolve(t.s).clone());
            let p = self.pool.intern(other.resolve(t.p).clone());
            let o = self.pool.intern(other.resolve(t.o).clone());
            if self.insert(s, p, o) {
                added += 1;
            }
        }
        added
    }
}

/// Half-open scan range over a row-id permutation array.
fn idx_range(
    base: &[[Sym; 3]],
    idx: &[u32],
    perm: Perm,
    lo: (Sym, Sym, Sym),
    hi: (Sym, Sym, Sym),
) -> (usize, usize) {
    let start = idx.partition_point(|&i| perm.key(base[i as usize]) < lo);
    let len = idx[start..].partition_point(|&i| perm.key(base[i as usize]) <= hi);
    (start, start + len)
}

/// Streaming pattern scan: merges a binary-searched base range with the
/// delta overlay's matching range under one permutation, filtering
/// tombstones. Created by [`Graph::scan_pattern`].
pub struct PatternScan<'g> {
    graph: &'g Graph,
    perm: Perm,
    pos: usize,
    end: usize,
    delta: std::collections::btree_set::Range<'g, (Sym, Sym, Sym)>,
    /// Next live base row, as a permuted key.
    base_next: Option<(Sym, Sym, Sym)>,
    /// Next delta add, as a permuted key.
    delta_next: Option<(Sym, Sym, Sym)>,
}

impl<'g> PatternScan<'g> {
    fn new(graph: &'g Graph, perm: Perm, lo: (Sym, Sym, Sym), hi: (Sym, Sym, Sym)) -> Self {
        let (pos, end) = graph.base_range(perm, lo, hi);
        let mut delta = graph.delta_set(perm).range(lo..=hi);
        let delta_next = delta.next().copied();
        let mut scan = PatternScan {
            graph,
            perm,
            pos,
            end,
            delta,
            base_next: None,
            delta_next,
        };
        scan.advance_base();
        scan
    }

    /// Pull the next non-tombstoned base row into `base_next`.
    fn advance_base(&mut self) {
        self.base_next = None;
        while self.pos < self.end {
            let row = self.graph.row_at(self.perm, self.pos);
            self.pos += 1;
            if self.graph.dead.is_empty() || !self.graph.dead.contains(&(row[0], row[1], row[2])) {
                self.base_next = Some(self.perm.key(row));
                return;
            }
        }
    }
}

impl Iterator for PatternScan<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        // The two streams are disjoint (delta adds never shadow base
        // rows), so a strict key comparison fully orders the merge.
        let take_base = match (self.base_next, self.delta_next) {
            (Some(b), Some(d)) => b < d,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_base {
            let k = self.base_next.take().expect("checked above");
            self.advance_base();
            Some(self.perm.triple(k))
        } else {
            let k = self.delta_next.take().expect("checked above");
            self.delta_next = self.delta.next().copied();
            Some(self.perm.triple(k))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // At least the live base rows already buffered; the delta side's
        // remaining length is unknown without consuming it.
        (usize::from(self.base_next.is_some()), None)
    }
}

/// Monotone cursor for the executor's sorted-merge join: repeated
/// [`MergeProbe::seek`] calls with ascending keys walk one predicate's
/// rows in index order, never re-visiting an earlier range. Created by
/// [`Graph::merge_probe`] on compacted graphs.
pub struct MergeProbe<'g> {
    graph: &'g Graph,
    p: Sym,
    key_on_subject: bool,
    cursor: usize,
    end: usize,
}

/// First index in `rows` where `below` stops holding, found by galloping
/// from the front: double the probe distance until it overshoots, then
/// binary-search the final bracket. `O(log gap)` per call for a gap-sized
/// advance, so a merge pass whose successive keys land close together
/// pays near-linear total cost instead of a full `O(log window)` binary
/// search per key.
fn gallop<T>(rows: &[T], below: impl Fn(&T) -> bool) -> usize {
    match rows.first() {
        Some(r) if below(r) => {}
        _ => return 0,
    }
    let mut lo = 0;
    let mut step = 1;
    while lo + step < rows.len() && below(&rows[lo + step]) {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(rows.len());
    lo + 1 + rows[lo + 1..hi].partition_point(below)
}

impl<'g> MergeProbe<'g> {
    /// The values matching `key` in the free position, ascending: objects
    /// of `(key, p, ?)` in subject mode, subjects of `(?, p, key)` in
    /// object mode. Keys must arrive in ascending order — each call
    /// shrinks the remaining window, galloping forward from its front so
    /// a dense key sequence costs one near-linear pass overall.
    pub fn seek(&mut self, key: Sym) -> MergeMatches<'g> {
        if self.key_on_subject {
            let lo = (key, self.p, SYM_MIN);
            let hi = (key, self.p, SYM_MAX);
            let window = &self.graph.base[self.cursor..self.end];
            let start = gallop(window, |&r| (r[0], r[1], r[2]) < lo);
            let len = gallop(&window[start..], |&r| (r[0], r[1], r[2]) <= hi);
            self.cursor += start + len;
            MergeMatches::Objects(window[start..start + len].iter())
        } else {
            let base = self.graph.base.as_slice();
            let window = &self.graph.pos_idx[self.cursor..self.end];
            let start = gallop(window, |&i| base[i as usize][2] < key);
            let len = gallop(&window[start..], |&i| base[i as usize][2] <= key);
            self.cursor += start + len;
            MergeMatches::Subjects {
                base,
                idx: window[start..start + len].iter(),
            }
        }
    }
}

/// The free-position values one [`MergeProbe::seek`] matched, ascending.
pub enum MergeMatches<'g> {
    /// A contiguous `(key, p, ·)` arena span — yields objects.
    Objects(std::slice::Iter<'g, [Sym; 3]>),
    /// A `(·, p, key)` span of the POS row-id permutation — yields
    /// subjects.
    Subjects {
        base: &'g [[Sym; 3]],
        idx: std::slice::Iter<'g, u32>,
    },
}

impl Iterator for MergeMatches<'_> {
    type Item = Sym;

    fn next(&mut self) -> Option<Sym> {
        match self {
            MergeMatches::Objects(rows) => rows.next().map(|r| r[2]),
            MergeMatches::Subjects { base, idx } => idx.next().map(|&i| base[i as usize][0]),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            MergeMatches::Objects(rows) => rows.size_hint(),
            MergeMatches::Subjects { idx, .. } => idx.size_hint(),
        }
    }
}

impl Extend<(Term, Term, Term)> for Graph {
    fn extend<I: IntoIterator<Item = (Term, Term, Term)>>(&mut self, iter: I) {
        for (s, p, o) in iter {
            self.insert_terms(s, p, o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut g = Graph::new();
        g.insert_iri("http://e/alice", "http://v/knows", "http://e/bob");
        g.insert_iri("http://e/alice", "http://v/knows", "http://e/carol");
        g.insert_iri("http://e/bob", "http://v/knows", "http://e/carol");
        g.insert_iri("http://e/alice", "http://v/age", "http://e/unused");
        g
    }

    #[test]
    fn stats_epoch_bumps_on_drift_threshold() {
        let mut g = Graph::new();
        assert_eq!(g.stats_epoch(), 0);
        // below the minimum drift: no bump
        for i in 0..EPOCH_MIN_DRIFT - 1 {
            g.insert_iri(&format!("http://e/s{i}"), "http://v/p", "http://e/o");
        }
        assert_eq!(g.stats_epoch(), 0);
        // crossing it: exactly one bump, and the drift counter resets
        g.insert_iri("http://e/last", "http://v/p", "http://e/o");
        assert_eq!(g.stats_epoch(), 1);
        g.insert_iri("http://e/extra", "http://v/p", "http://e/o");
        assert_eq!(g.stats_epoch(), 1, "drift resets after a bump");
    }

    #[test]
    fn stats_epoch_counts_removes_and_bulk_load() {
        let mut g = Graph::new();
        let mut triples = Vec::new();
        for i in 0..40 {
            triples.push(g.insert_iri(&format!("http://e/s{i}"), "http://v/p", "http://e/o"));
        }
        assert_eq!(g.stats_epoch(), 0);
        // 40 inserts + 24 removes = 64 mutations: removes drift too
        for t in triples.iter().take(24) {
            g.remove(t.s, t.p, t.o);
        }
        assert_eq!(g.stats_epoch(), 1);
        // bulk_load recounts all statistics: unconditional bump
        let s = g.intern_iri("http://e/bulk");
        let p = g.intern_iri("http://v/p");
        let o = g.intern_iri("http://e/o");
        assert_eq!(g.bulk_load([(s, p, o)]), 1);
        assert_eq!(g.stats_epoch(), 2);
        // a bulk_load that inserts nothing new leaves the epoch alone
        assert_eq!(g.bulk_load([(s, p, o)]), 0);
        assert_eq!(g.stats_epoch(), 2);
    }

    #[test]
    fn stats_epoch_threshold_scales_with_graph_size() {
        let mut g = Graph::new();
        let p = g.intern_iri("http://v/p");
        let o = g.intern_iri("http://e/o");
        let rows: Vec<_> = (0..2000)
            .map(|i| (g.intern_iri(format!("http://e/s{i}")), p, o))
            .collect();
        g.bulk_load(rows);
        let epoch = g.stats_epoch();
        // at 2000 live triples the threshold is len/8 = 250, not 64
        for i in 0..100 {
            g.insert_iri(&format!("http://e/x{i}"), "http://v/p", "http://e/o");
        }
        assert_eq!(g.stats_epoch(), epoch, "100 < 250: no bump yet");
        for i in 100..250 {
            g.insert_iri(&format!("http://e/x{i}"), "http://v/p", "http://e/o");
        }
        assert_eq!(g.stats_epoch(), epoch + 1);
    }

    #[test]
    fn insert_is_idempotent_and_indexed() {
        let mut g = Graph::new();
        let t = g.insert_iri("http://e/a", "http://v/p", "http://e/b");
        assert_eq!(g.len(), 1);
        g.insert(t.s, t.p, t.o);
        assert_eq!(g.len(), 1);
        assert!(g.contains(t.s, t.p, t.o));
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        let bob = g.pool().get_iri("http://e/bob").unwrap();
        assert!(g.remove(alice, knows, bob));
        assert!(!g.remove(alice, knows, bob));
        assert!(!g.contains(alice, knows, bob));
        assert_eq!(
            g.match_pattern(TriplePattern {
                s: None,
                p: Some(knows),
                o: None
            })
            .len(),
            2
        );
        assert_eq!(g.objects(alice, knows).len(), 1);
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        let carol = g.pool().get_iri("http://e/carol").unwrap();
        let m = |s, p, o| g.match_pattern(TriplePattern { s, p, o }).len();
        assert_eq!(m(None, None, None), 4);
        assert_eq!(m(Some(alice), None, None), 3);
        assert_eq!(m(None, Some(knows), None), 3);
        assert_eq!(m(None, None, Some(carol)), 2);
        assert_eq!(m(Some(alice), Some(knows), None), 2);
        assert_eq!(m(Some(alice), None, Some(carol)), 1);
        assert_eq!(m(None, Some(knows), Some(carol)), 2);
        assert_eq!(m(Some(alice), Some(knows), Some(carol)), 1);
    }

    #[test]
    fn pattern_results_agree_with_naive_filter() {
        let g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        for pat in [
            TriplePattern {
                s: Some(alice),
                p: None,
                o: None,
            },
            TriplePattern {
                s: None,
                p: Some(knows),
                o: None,
            },
            TriplePattern::any(),
        ] {
            let fast: Vec<_> = g.match_pattern(pat);
            let slow: Vec<_> = g.iter().filter(|t| pat.matches(t)).collect();
            assert_eq!(fast.len(), slow.len());
            for t in &fast {
                assert!(slow.contains(t));
            }
        }
    }

    #[test]
    fn degrees_and_predicates() {
        let g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let carol = g.pool().get_iri("http://e/carol").unwrap();
        assert_eq!(g.out_degree(alice), 3);
        assert_eq!(g.in_degree(carol), 2);
        assert_eq!(g.degree(carol), 2); // two incoming `knows` edges, no outgoing
        let preds = g.predicates();
        assert_eq!(preds.len(), 2);
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        assert!(preds.contains(&(knows, 3)));
    }

    #[test]
    fn estimate_matches_reality_for_exact_shapes() {
        let g = tiny();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        assert_eq!(g.estimate(TriplePattern::any()), 4);
        assert_eq!(
            g.estimate(TriplePattern {
                s: None,
                p: Some(knows),
                o: None
            }),
            3
        );
    }

    #[test]
    fn predicate_card_tracks_distinct_terms_incrementally() {
        let mut g = Graph::new();
        g.insert_iri("http://e/a", "http://v/p", "http://e/x");
        g.insert_iri("http://e/a", "http://v/p", "http://e/y");
        g.insert_iri("http://e/b", "http://v/p", "http://e/x");
        let p = g.pool().get_iri("http://v/p").unwrap();
        let card = g.predicate_card(p);
        assert_eq!(card.triples, 3);
        assert_eq!(card.distinct_subjects, 2); // a, b
        assert_eq!(card.distinct_objects, 2); // x, y
        assert_eq!(card.subject_fanout(), 2); // ceil(3/2)
        assert_eq!(card.object_fanout(), 2);
        // removing (a p y) drops object y but keeps subject a (a p x stays)
        let a = g.pool().get_iri("http://e/a").unwrap();
        let y = g.pool().get_iri("http://e/y").unwrap();
        assert!(g.remove(a, p, y));
        let card = g.predicate_card(p);
        assert_eq!(card.triples, 2);
        assert_eq!(card.distinct_subjects, 2);
        assert_eq!(card.distinct_objects, 1);
        // draining the predicate drops its histogram entry entirely
        let b = g.pool().get_iri("http://e/b").unwrap();
        let x = g.pool().get_iri("http://e/x").unwrap();
        g.remove(a, p, x);
        g.remove(b, p, x);
        assert_eq!(g.predicate_card(p), PredicateCard::default());
        assert_eq!(g.subject_cardinality(), 0);
        assert_eq!(g.object_cardinality(), 0);
    }

    #[test]
    fn graph_wide_cardinalities_count_distinct_positions() {
        let mut g = tiny();
        // subjects: alice, bob; objects: bob, carol, unused
        assert_eq!(g.subject_cardinality(), 2);
        assert_eq!(g.object_cardinality(), 3);
        // duplicate insert changes nothing
        g.insert_iri("http://e/alice", "http://v/knows", "http://e/bob");
        assert_eq!(g.subject_cardinality(), 2);
        assert_eq!(g.object_cardinality(), 3);
    }

    #[test]
    fn estimate_uses_histogram_fanout_for_half_bound_shapes() {
        let mut g = Graph::new();
        // a star predicate: one subject, many objects
        for i in 0..10 {
            g.insert_iri("http://e/hub", "http://v/spokes", &format!("http://e/o{i}"));
        }
        let hub = g.pool().get_iri("http://e/hub").unwrap();
        let spokes = g.pool().get_iri("http://v/spokes").unwrap();
        let o0 = g.pool().get_iri("http://e/o0").unwrap();
        // bound subject: the full fan-out of the hub, not count/8
        assert_eq!(
            g.estimate(TriplePattern {
                s: Some(hub),
                p: Some(spokes),
                o: None
            }),
            10
        );
        // bound object: each object has exactly one incoming edge
        assert_eq!(
            g.estimate(TriplePattern {
                s: None,
                p: Some(spokes),
                o: Some(o0)
            }),
            1
        );
    }

    #[test]
    fn estimate_half_bound_clamps_to_directional_degree() {
        let mut g = Graph::new();
        // skewed predicate: `a` has 9 spokes, `b` has 1 → average fan-out 5
        for i in 0..9 {
            g.insert_iri("http://e/a", "http://v/spokes", &format!("http://e/o{i}"));
        }
        g.insert_iri("http://e/b", "http://v/spokes", "http://e/o0");
        // pile reverse fan-in onto `b`: its *total* degree is large, but
        // its out-degree (the only direction `(b, spokes, ?o)` can match)
        // stays 1
        for i in 0..20 {
            g.insert_iri(&format!("http://e/c{i}"), "http://v/cites", "http://e/b");
        }
        let b = g.pool().get_iri("http://e/b").unwrap();
        let spokes = g.pool().get_iri("http://v/spokes").unwrap();
        assert_eq!(g.out_degree(b), 1);
        assert!(g.degree(b) > 5, "reverse fan-in must exceed the fan-out");
        // tight bound: out-degree clamps the histogram average (a stale
        // degree() clamp would return the average, 5)
        assert_eq!(
            g.estimate(TriplePattern {
                s: Some(b),
                p: Some(spokes),
                o: None
            }),
            1
        );
        // mirrored shape: `o0` has 2 incoming spokes but heavy *outgoing*
        // fan-out must not inflate `(?s, spokes, o0)`
        for i in 0..20 {
            g.insert_iri("http://e/o0", "http://v/cites", &format!("http://e/d{i}"));
        }
        let o0 = g.pool().get_iri("http://e/o0").unwrap();
        assert_eq!(g.in_degree(o0), 2);
        assert_eq!(
            g.estimate(TriplePattern {
                s: None,
                p: Some(spokes),
                o: Some(o0)
            }),
            2
        );
    }

    #[test]
    fn types_and_instances() {
        let mut g = Graph::new();
        g.insert_iri("http://e/alice", namespace::RDF_TYPE, "http://v/Person");
        g.insert_iri("http://e/bob", namespace::RDF_TYPE, "http://v/Person");
        let person = g.pool().get_iri("http://v/Person").unwrap();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        assert_eq!(g.instances_of(person).len(), 2);
        assert_eq!(g.types_of(alice), vec![person]);
    }

    #[test]
    fn display_name_prefers_label() {
        let mut g = Graph::new();
        let a = g.intern_iri("http://e/alice_smith");
        let lbl = g.intern_iri(namespace::RDFS_LABEL);
        let lit = g.intern(Term::lit("Alice Smith"));
        assert_eq!(g.display_name(a), "alice smith");
        g.insert(a, lbl, lit);
        assert_eq!(g.display_name(a), "Alice Smith");
    }

    #[test]
    fn merge_translates_ids() {
        let mut g1 = Graph::new();
        g1.insert_iri("http://e/x", "http://v/p", "http://e/y");
        let mut g2 = Graph::new();
        g2.insert_iri("http://e/z", "http://v/p", "http://e/x");
        g2.insert_iri("http://e/x", "http://v/p", "http://e/y");
        let added = g1.merge(&g2);
        assert_eq!(added, 1);
        assert_eq!(g1.len(), 2);
        let x = g1.pool().get_iri("http://e/x").unwrap();
        let p = g1.pool().get_iri("http://v/p").unwrap();
        let z = g1.pool().get_iri("http://e/z").unwrap();
        assert!(g1.contains(z, p, x));
    }

    #[test]
    fn entities_excludes_literals() {
        let mut g = Graph::new();
        g.insert_terms(
            Term::iri("http://e/a"),
            Term::iri("http://v/name"),
            Term::lit("A"),
        );
        g.insert_iri("http://e/a", "http://v/knows", "http://e/b");
        // literals never count as entities; only IRI subjects/objects do
        assert_eq!(g.entities().len(), 2);
    }

    #[test]
    fn compact_is_invisible_to_queries() {
        let mut g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        let bob = g.pool().get_iri("http://e/bob").unwrap();
        assert!(!g.is_compacted());
        let before: Vec<Triple> = g.iter().collect();
        let knows_before = g.match_pattern(TriplePattern {
            s: None,
            p: Some(knows),
            o: None,
        });
        g.compact();
        assert!(g.is_compacted());
        assert_eq!(g.delta_len(), 0);
        assert_eq!(g.iter().collect::<Vec<_>>(), before);
        assert_eq!(
            g.match_pattern(TriplePattern {
                s: None,
                p: Some(knows),
                o: None
            }),
            knows_before
        );
        // mutations after compaction land in a fresh overlay
        assert!(g.remove(alice, knows, bob));
        assert!(!g.is_compacted());
        assert_eq!(g.len(), 3);
        g.compact();
        assert_eq!(g.len(), 3);
        assert!(!g.contains(alice, knows, bob));
    }

    #[test]
    fn tombstoned_row_resurrects_on_reinsert() {
        let mut g = tiny();
        g.compact();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        let bob = g.pool().get_iri("http://e/bob").unwrap();
        assert!(g.remove(alice, knows, bob));
        assert!(g.insert(alice, knows, bob));
        assert!(g.is_compacted(), "re-insert cancels the tombstone");
        assert!(g.contains(alice, knows, bob));
        assert_eq!(g.len(), 4);
        let knows_card = g.predicate_card(knows);
        assert_eq!(knows_card.triples, 3);
        assert_eq!(knows_card.distinct_subjects, 2);
    }

    #[test]
    fn bulk_load_matches_incremental_build() {
        let mut a = Graph::new();
        let mut triples = Vec::new();
        for i in 0..30 {
            let s = a.intern_iri(format!("http://e/s{}", i % 7));
            let p = a.intern_iri(format!("http://v/p{}", i % 3));
            let o = a.intern_iri(format!("http://e/o{}", i % 5));
            triples.push((s, p, o));
        }
        let mut b = a.clone();
        for &(s, p, o) in &triples {
            a.insert(s, p, o);
        }
        let added = b.bulk_load(triples.iter().copied());
        assert_eq!(added, b.len());
        assert!(b.is_compacted());
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            b.iter().collect::<Vec<_>>(),
            "bulk load and incremental insertion agree triple-for-triple"
        );
        for (p, _) in a.predicates() {
            assert_eq!(a.predicate_card(p), b.predicate_card(p));
        }
        assert_eq!(a.subject_cardinality(), b.subject_cardinality());
        assert_eq!(a.object_cardinality(), b.object_cardinality());
    }

    #[test]
    fn scan_pattern_streams_without_materializing() {
        let mut g = tiny();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        // half base, half delta: compact, then add more
        g.compact();
        g.insert_iri("http://e/alice", "http://v/knows", "http://e/dave");
        let pat = TriplePattern {
            s: Some(alice),
            p: None,
            o: None,
        };
        let streamed: Vec<Triple> = g.scan_pattern(pat).collect();
        assert_eq!(streamed, g.match_pattern(pat));
        assert_eq!(streamed.len(), 4);
        // streams ascending under the chosen (SPO) permutation
        let mut sorted = streamed.clone();
        sorted.sort();
        assert_eq!(streamed, sorted);
    }

    #[test]
    fn merge_probe_walks_ascending_keys() {
        let mut g = tiny();
        let knows = g.pool().get_iri("http://v/knows").unwrap();
        assert!(g.merge_probe(knows, true).is_none(), "uncompacted graph");
        g.compact();
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let bob = g.pool().get_iri("http://e/bob").unwrap();
        let carol = g.pool().get_iri("http://e/carol").unwrap();
        let mut by_s = g.merge_probe(knows, true).unwrap();
        let mut keys = [alice, bob];
        keys.sort();
        let mut all: Vec<Vec<Sym>> = Vec::new();
        for k in keys {
            all.push(by_s.seek(k).collect());
        }
        let expect: Vec<Vec<Sym>> = keys.iter().map(|&k| g.objects(k, knows)).collect();
        assert_eq!(all, expect);
        // object-keyed walk yields subjects
        let mut by_o = g.merge_probe(knows, false).unwrap();
        let got: Vec<Sym> = by_o.seek(carol).collect();
        assert_eq!(got, g.subjects(knows, carol));
    }
}
