//! Graph analysis utilities: statistics, components, paths, neighborhoods.
//!
//! These back the evaluation harnesses (degree distributions for the
//! generator sanity checks, path sampling for multi-hop question
//! generation, k-hop neighborhoods for subgraph retrieval à la LARK).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::store::{Graph, Triple};
use crate::term::Sym;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total triples.
    pub triples: usize,
    /// Distinct IRI entities (subject or object position).
    pub entities: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Maximum total degree over entities.
    pub max_degree: usize,
    /// Mean total degree over entities.
    pub mean_degree: f64,
}

/// Compute summary statistics.
pub fn stats(g: &Graph) -> GraphStats {
    let entities = g.entities();
    let mut max_degree = 0;
    let mut total = 0usize;
    for &e in &entities {
        let d = g.degree(e);
        max_degree = max_degree.max(d);
        total += d;
    }
    GraphStats {
        triples: g.len(),
        entities: entities.len(),
        predicates: g.predicates().len(),
        max_degree,
        mean_degree: if entities.is_empty() {
            0.0
        } else {
            total as f64 / entities.len() as f64
        },
    }
}

/// Degree histogram: `degree → number of entities with that degree`.
pub fn degree_histogram(g: &Graph) -> BTreeMap<usize, usize> {
    let mut h = BTreeMap::new();
    for e in g.entities() {
        *h.entry(g.degree(e)).or_insert(0) += 1;
    }
    h
}

/// Weakly connected components over entities (edges treated as undirected).
/// Returns components sorted by decreasing size, each sorted by id.
pub fn connected_components(g: &Graph) -> Vec<Vec<Sym>> {
    let entities = g.entities();
    let mut seen: BTreeSet<Sym> = BTreeSet::new();
    let mut components = Vec::new();
    for &start in &entities {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(n) = queue.pop_front() {
            comp.push(n);
            for (_, o) in g.outgoing(n) {
                if g.resolve(o).is_iri() && seen.insert(o) {
                    queue.push_back(o);
                }
            }
            for (s, _) in g.incoming(n) {
                if g.resolve(s).is_iri() && seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        comp.sort();
        components.push(comp);
    }
    components.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    components
}

/// A directed path of triples, head-to-tail connected.
pub type Path = Vec<Triple>;

/// Sample up to `count` simple forward paths of exactly `hops` edges,
/// starting from random entities, following only predicates for which
/// `follow` returns true. Deterministic under `seed`.
pub fn sample_paths(
    g: &Graph,
    hops: usize,
    count: usize,
    seed: u64,
    follow: impl Fn(Sym) -> bool,
) -> Vec<Path> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entities = g.entities();
    entities.shuffle(&mut rng);
    let mut out = Vec::new();
    for &start in entities.iter().cycle().take(entities.len() * 4) {
        if out.len() >= count {
            break;
        }
        let mut path = Vec::with_capacity(hops);
        let mut visited = BTreeSet::from([start]);
        let mut node = start;
        for _ in 0..hops {
            let mut edges: Vec<(Sym, Sym)> = g
                .outgoing(node)
                .into_iter()
                .filter(|&(p, o)| follow(p) && g.resolve(o).is_iri() && !visited.contains(&o))
                .collect();
            if edges.is_empty() {
                break;
            }
            edges.shuffle(&mut rng);
            let (p, o) = edges[0];
            path.push(Triple::new(node, p, o));
            visited.insert(o);
            node = o;
        }
        if path.len() == hops {
            out.push(path);
        }
    }
    out
}

/// The triples within `k` hops (undirected) of `center`, as a subgraph
/// triple list. This is the subgraph-retrieval primitive used by the
/// LARK-style reasoning and RAG pipelines.
pub fn khop_subgraph(g: &Graph, center: Sym, k: usize) -> Vec<Triple> {
    let mut frontier = BTreeSet::from([center]);
    let mut seen_nodes = frontier.clone();
    let mut triples = BTreeSet::new();
    for _ in 0..k {
        let mut next = BTreeSet::new();
        for &n in &frontier {
            for (p, o) in g.outgoing(n) {
                triples.insert((n, p, o));
                if g.resolve(o).is_iri() && seen_nodes.insert(o) {
                    next.insert(o);
                }
            }
            for (s, p) in g.incoming(n) {
                triples.insert((s, p, n));
                if seen_nodes.insert(s) {
                    next.insert(s);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    triples
        .into_iter()
        .map(|(s, p, o)| Triple::new(s, p, o))
        .collect()
}

/// Shortest undirected path between two entities (BFS), as a triple list,
/// or `None` if disconnected. Edges may be traversed in either direction.
pub fn shortest_path(g: &Graph, from: Sym, to: Sym) -> Option<Vec<Triple>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut prev: BTreeMap<Sym, Triple> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        let mut neighbors: Vec<(Sym, Triple)> = Vec::new();
        for (p, o) in g.outgoing(n) {
            if g.resolve(o).is_iri() {
                neighbors.push((o, Triple::new(n, p, o)));
            }
        }
        for (s, p) in g.incoming(n) {
            neighbors.push((s, Triple::new(s, p, n)));
        }
        for (next, t) in neighbors {
            if seen.insert(next) {
                prev.insert(next, t);
                if next == to {
                    // reconstruct
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let t = prev[&cur];
                        cur = if t.s == cur { t.o } else { t.s };
                        path.push(t);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{movies, Scale};

    fn chain() -> Graph {
        let mut g = Graph::new();
        g.insert_iri("http://e/a", "http://v/p", "http://e/b");
        g.insert_iri("http://e/b", "http://v/p", "http://e/c");
        g.insert_iri("http://e/c", "http://v/p", "http://e/d");
        g.insert_iri("http://e/x", "http://v/p", "http://e/y"); // second component
        g
    }

    #[test]
    fn stats_counts_things() {
        let g = chain();
        let s = stats(&g);
        assert_eq!(s.triples, 4);
        assert_eq!(s.entities, 6);
        assert_eq!(s.predicates, 1);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn components_found() {
        let g = chain();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn sample_paths_connect_head_to_tail() {
        let kg = movies(2, Scale::default());
        let g = &kg.graph;
        let label = g.pool().get_iri(crate::namespace::RDFS_LABEL);
        let ty = g.pool().get_iri(crate::namespace::RDF_TYPE);
        let paths = sample_paths(g, 2, 10, 9, |p| Some(p) != label && Some(p) != ty);
        assert!(!paths.is_empty());
        for path in &paths {
            assert_eq!(path.len(), 2);
            assert_eq!(path[0].o, path[1].s, "hops must chain");
        }
    }

    #[test]
    fn sample_paths_deterministic() {
        let kg = movies(2, Scale::tiny());
        let p1 = sample_paths(&kg.graph, 2, 5, 3, |_| true);
        let p2 = sample_paths(&kg.graph, 2, 5, 3, |_| true);
        assert_eq!(p1, p2);
    }

    #[test]
    fn khop_grows_with_k() {
        let g = chain();
        let a = g.pool().get_iri("http://e/a").unwrap();
        let k1 = khop_subgraph(&g, a, 1);
        let k2 = khop_subgraph(&g, a, 2);
        let k3 = khop_subgraph(&g, a, 3);
        assert_eq!(k1.len(), 1);
        assert_eq!(k2.len(), 2);
        assert_eq!(k3.len(), 3);
    }

    #[test]
    fn shortest_path_works_both_directions() {
        let g = chain();
        let a = g.pool().get_iri("http://e/a").unwrap();
        let d = g.pool().get_iri("http://e/d").unwrap();
        let x = g.pool().get_iri("http://e/x").unwrap();
        let p = shortest_path(&g, a, d).unwrap();
        assert_eq!(p.len(), 3);
        let back = shortest_path(&g, d, a).unwrap();
        assert_eq!(back.len(), 3);
        assert!(shortest_path(&g, a, x).is_none());
        assert_eq!(shortest_path(&g, a, a).unwrap().len(), 0);
    }
}
