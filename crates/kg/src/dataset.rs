//! Named-graph datasets.
//!
//! A [`Dataset`] is a default graph plus any number of named graphs, each an
//! independent [`Graph`] with its own pool. This mirrors the RDF dataset
//! model and is what multi-source experiments (e.g. ontology alignment,
//! Graph RAG over several corpora) operate on.

use std::collections::BTreeMap;

use crate::store::Graph;

/// A collection of named graphs plus a default graph.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    default: Graph,
    named: BTreeMap<String, Graph>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default graph.
    pub fn default_graph(&self) -> &Graph {
        &self.default
    }

    /// Mutable default graph.
    pub fn default_graph_mut(&mut self) -> &mut Graph {
        &mut self.default
    }

    /// Insert (or replace) a named graph.
    pub fn insert_graph(&mut self, name: impl Into<String>, graph: Graph) -> Option<Graph> {
        self.named.insert(name.into(), graph)
    }

    /// A named graph, if present.
    pub fn graph(&self, name: &str) -> Option<&Graph> {
        self.named.get(name)
    }

    /// Mutable access to a named graph, creating it if absent.
    pub fn graph_mut(&mut self, name: &str) -> &mut Graph {
        self.named.entry(name.to_string()).or_default()
    }

    /// Remove a named graph.
    pub fn remove_graph(&mut self, name: &str) -> Option<Graph> {
        self.named.remove(name)
    }

    /// Names of all named graphs, sorted.
    pub fn graph_names(&self) -> Vec<&str> {
        self.named.keys().map(String::as_str).collect()
    }

    /// Number of named graphs (excluding the default graph).
    pub fn named_count(&self) -> usize {
        self.named.len()
    }

    /// Total triples across default and named graphs.
    pub fn total_triples(&self) -> usize {
        self.default.len() + self.named.values().map(Graph::len).sum::<usize>()
    }

    /// Union of all graphs into one new graph (ids re-interned).
    pub fn union(&self) -> Graph {
        let mut out = Graph::new();
        out.merge(&self.default);
        for g in self.named.values() {
            out.merge(g);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_graph_lifecycle() {
        let mut ds = Dataset::new();
        ds.graph_mut("a")
            .insert_iri("http://e/x", "http://v/p", "http://e/y");
        ds.graph_mut("b")
            .insert_iri("http://e/x", "http://v/p", "http://e/z");
        ds.default_graph_mut()
            .insert_iri("http://e/q", "http://v/p", "http://e/r");
        assert_eq!(ds.named_count(), 2);
        assert_eq!(ds.total_triples(), 3);
        assert_eq!(ds.graph_names(), vec!["a", "b"]);
        assert!(ds.graph("a").is_some());
        assert!(ds.graph("missing").is_none());
        assert!(ds.remove_graph("a").is_some());
        assert_eq!(ds.total_triples(), 2);
    }

    #[test]
    fn union_merges_and_dedups() {
        let mut ds = Dataset::new();
        ds.graph_mut("a")
            .insert_iri("http://e/x", "http://v/p", "http://e/y");
        ds.graph_mut("b")
            .insert_iri("http://e/x", "http://v/p", "http://e/y");
        let u = ds.union();
        assert_eq!(u.len(), 1);
    }
}
