//! Error injection for validation experiments.
//!
//! The fact-checking and inconsistency-detection experiments (paper §2.6)
//! need KGs with *known* defects: we take a clean generated KG and inject a
//! controlled mix of misinformation and constraint violations, returning the
//! ground-truth list so detectors can be scored.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::namespace as ns;
use crate::ontology::Ontology;
use crate::store::{Graph, Triple, TriplePattern};
use crate::term::Sym;

/// The kind of defect injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefectKind {
    /// A factually wrong but schema-conforming triple (misinformation):
    /// the object of a true triple was swapped for another same-class entity.
    Misinformation,
    /// A second object for a functional property.
    FunctionalViolation,
    /// A triple whose object violates the property's declared range.
    RangeViolation,
    /// A triple whose subject violates the property's declared domain.
    DomainViolation,
    /// An entity typed with two disjoint classes.
    DisjointTypes,
    /// A reflexive edge on an irreflexive property.
    IrreflexiveViolation,
}

impl DefectKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DefectKind::Misinformation => "misinformation",
            DefectKind::FunctionalViolation => "functional",
            DefectKind::RangeViolation => "range",
            DefectKind::DomainViolation => "domain",
            DefectKind::DisjointTypes => "disjoint-types",
            DefectKind::IrreflexiveViolation => "irreflexive",
        }
    }
}

/// One injected defect: the triple that was added (and, for misinformation,
/// the true triple it displaced).
#[derive(Debug, Clone)]
pub struct InjectedDefect {
    /// What kind of defect this is.
    pub kind: DefectKind,
    /// The defective triple now present in the graph.
    pub triple: Triple,
    /// For [`DefectKind::Misinformation`]: the original, removed triple.
    pub displaced: Option<Triple>,
}

/// Mix of defects to inject.
#[derive(Debug, Clone, Copy)]
pub struct CorruptionPlan {
    /// Seed for all random choices.
    pub seed: u64,
    /// Number of misinformation swaps.
    pub misinformation: usize,
    /// Number of functional-property violations.
    pub functional: usize,
    /// Number of range violations.
    pub range: usize,
    /// Number of domain violations.
    pub domain: usize,
    /// Number of disjoint-type injections.
    pub disjoint: usize,
    /// Number of irreflexive violations.
    pub irreflexive: usize,
}

impl Default for CorruptionPlan {
    fn default() -> Self {
        CorruptionPlan {
            seed: 0,
            misinformation: 10,
            functional: 5,
            range: 5,
            domain: 5,
            disjoint: 3,
            irreflexive: 3,
        }
    }
}

/// Apply a corruption plan to `graph` (mutating it), returning the ground
/// truth. Counts are best-effort: if the graph lacks suitable targets for a
/// defect type, fewer defects of that type are injected.
pub fn corrupt(
    graph: &mut Graph,
    ontology: &Ontology,
    plan: &CorruptionPlan,
) -> Vec<InjectedDefect> {
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut out = Vec::new();

    let rdf_type = graph.intern_iri(ns::RDF_TYPE);

    // collect object-valued relation triples (skip rdf:type / rdfs:label)
    let relation_triples: Vec<Triple> = graph
        .iter()
        .filter(|t| {
            let p = graph.resolve(t.p).as_iri().unwrap_or("");
            p.starts_with(ns::SYNTH_VOCAB) && graph.resolve(t.o).is_iri()
        })
        .collect();

    // class → instances map for same-class swaps
    let class_of = |g: &Graph, e: Sym| -> Option<Sym> { g.types_of(e).first().copied() };

    // misinformation: swap object within the same class
    let mut candidates = relation_triples.clone();
    candidates.shuffle(&mut rng);
    let mut injected_mis = 0;
    for t in candidates {
        if injected_mis >= plan.misinformation {
            break;
        }
        let Some(class) = class_of(graph, t.o) else {
            continue;
        };
        let peers: Vec<Sym> = graph
            .instances_of(class)
            .into_iter()
            .filter(|&e| e != t.o && e != t.s && !graph.contains(t.s, t.p, e))
            .collect();
        let Some(&new_o) = peers.choose(&mut rng) else {
            continue;
        };
        graph.remove(t.s, t.p, t.o);
        graph.insert(t.s, t.p, new_o);
        out.push(InjectedDefect {
            kind: DefectKind::Misinformation,
            triple: Triple::new(t.s, t.p, new_o),
            displaced: Some(t),
        });
        injected_mis += 1;
    }

    // functional violations: add a second object to a functional property
    let functional_props: Vec<String> = ontology
        .properties()
        .filter(|(_, d)| d.traits.functional && !d.literal_valued)
        .map(|(p, _)| p.to_string())
        .collect();
    let mut injected = 0;
    'outer: for prop in functional_props
        .iter()
        .cycle()
        .take(functional_props.len() * 4)
    {
        if injected >= plan.functional {
            break;
        }
        let Some(p) = graph.pool().get_iri(prop) else {
            continue;
        };
        let mut subjects: Vec<Triple> = graph.match_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        });
        subjects.shuffle(&mut rng);
        for t in subjects {
            let Some(class) = class_of(graph, t.o) else {
                continue;
            };
            let peers: Vec<Sym> = graph
                .instances_of(class)
                .into_iter()
                .filter(|&e| e != t.o && !graph.contains(t.s, t.p, e))
                .collect();
            if let Some(&extra) = peers.choose(&mut rng) {
                graph.insert(t.s, p, extra);
                out.push(InjectedDefect {
                    kind: DefectKind::FunctionalViolation,
                    triple: Triple::new(t.s, p, extra),
                    displaced: None,
                });
                injected += 1;
                if injected >= plan.functional {
                    break 'outer;
                }
                break;
            }
        }
    }

    // range violations: point a ranged property at a wrong-class entity
    let ranged: Vec<(String, String)> = ontology
        .properties()
        .filter_map(|(p, d)| d.range.clone().map(|r| (p.to_string(), r)))
        .collect();
    let mut injected = 0;
    for (prop, range) in ranged.iter().cycle().take(ranged.len().max(1) * 6) {
        if injected >= plan.range || ranged.is_empty() {
            break;
        }
        let Some(p) = graph.pool().get_iri(prop) else {
            continue;
        };
        let existing: Vec<Triple> = graph.match_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        });
        let Some(&t) = existing.as_slice().choose(&mut rng) else {
            continue;
        };
        // pick an entity of a class NOT subsumed by the range
        let wrong: Vec<Sym> = graph
            .entities()
            .into_iter()
            .filter(|&e| {
                graph.types_of(e).iter().any(|&c| {
                    graph
                        .resolve(c)
                        .as_iri()
                        .is_some_and(|ci| !ontology.is_subclass_of(ci, range) && ci != range)
                }) && !graph.contains(t.s, p, e)
            })
            .collect();
        if let Some(&w) = wrong.as_slice().choose(&mut rng) {
            graph.insert(t.s, p, w);
            out.push(InjectedDefect {
                kind: DefectKind::RangeViolation,
                triple: Triple::new(t.s, p, w),
                displaced: None,
            });
            injected += 1;
        }
    }

    // domain violations: give a domained property a wrong-class subject
    let domained: Vec<(String, String)> = ontology
        .properties()
        .filter_map(|(p, d)| d.domain.clone().map(|dm| (p.to_string(), dm)))
        .collect();
    let mut injected = 0;
    for (prop, dom) in domained.iter().cycle().take(domained.len().max(1) * 6) {
        if injected >= plan.domain || domained.is_empty() {
            break;
        }
        let Some(p) = graph.pool().get_iri(prop) else {
            continue;
        };
        let existing: Vec<Triple> = graph.match_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        });
        let Some(&t) = existing.as_slice().choose(&mut rng) else {
            continue;
        };
        let wrong: Vec<Sym> = graph
            .entities()
            .into_iter()
            .filter(|&e| {
                !graph.types_of(e).is_empty()
                    && graph.types_of(e).iter().all(|&c| {
                        graph
                            .resolve(c)
                            .as_iri()
                            .is_some_and(|ci| !ontology.is_subclass_of(ci, dom))
                    })
                    && !graph.contains(e, p, t.o)
            })
            .collect();
        if let Some(&w) = wrong.as_slice().choose(&mut rng) {
            graph.insert(w, p, t.o);
            out.push(InjectedDefect {
                kind: DefectKind::DomainViolation,
                triple: Triple::new(w, p, t.o),
                displaced: None,
            });
            injected += 1;
        }
    }

    // disjoint types: type an entity with a class disjoint from its own
    let disjoint_pairs: Vec<(String, String)> = ontology
        .disjoint_pairs()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    let mut injected = 0;
    for (a, bcls) in disjoint_pairs
        .iter()
        .cycle()
        .take(disjoint_pairs.len().max(1) * 6)
    {
        if injected >= plan.disjoint || disjoint_pairs.is_empty() {
            break;
        }
        let Some(ca) = graph.pool().get_iri(a) else {
            continue;
        };
        let instances = graph.instances_of(ca);
        let Some(&e) = instances.as_slice().choose(&mut rng) else {
            continue;
        };
        let cb = graph.intern_iri(bcls.clone());
        if graph.insert(e, rdf_type, cb) {
            out.push(InjectedDefect {
                kind: DefectKind::DisjointTypes,
                triple: Triple::new(e, rdf_type, cb),
                displaced: None,
            });
            injected += 1;
        }
    }

    // irreflexive violations: add self-loops on irreflexive properties
    let irreflexive_props: Vec<String> = ontology
        .properties()
        .filter(|(_, d)| d.traits.irreflexive)
        .map(|(p, _)| p.to_string())
        .collect();
    let mut injected = 0;
    for prop in irreflexive_props
        .iter()
        .cycle()
        .take(irreflexive_props.len().max(1) * 6)
    {
        if injected >= plan.irreflexive || irreflexive_props.is_empty() {
            break;
        }
        let Some(p) = graph.pool().get_iri(prop) else {
            continue;
        };
        let existing: Vec<Triple> = graph.match_pattern(TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        });
        let Some(&t) = existing.as_slice().choose(&mut rng) else {
            continue;
        };
        if graph.insert(t.s, p, t.s) {
            out.push(InjectedDefect {
                kind: DefectKind::IrreflexiveViolation,
                triple: Triple::new(t.s, p, t.s),
                displaced: None,
            });
            injected += 1;
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{movies, Scale};

    #[test]
    fn corrupt_injects_requested_defects() {
        let kg = movies(11, Scale::default());
        let mut g = kg.graph.clone();
        let before = g.len();
        let plan = CorruptionPlan {
            seed: 1,
            ..Default::default()
        };
        let defects = corrupt(&mut g, &kg.ontology, &plan);
        assert!(!defects.is_empty());
        // every reported defective triple is actually in the graph
        for d in &defects {
            assert!(
                g.contains(d.triple.s, d.triple.p, d.triple.o),
                "{:?}",
                d.kind
            );
        }
        // misinformation removes one and adds one; others only add
        let mis = defects
            .iter()
            .filter(|d| d.kind == DefectKind::Misinformation)
            .count();
        assert_eq!(g.len(), before + defects.len() - mis);
    }

    #[test]
    fn corrupt_is_deterministic() {
        let kg = movies(11, Scale::tiny());
        let plan = CorruptionPlan {
            seed: 7,
            ..Default::default()
        };
        let mut g1 = kg.graph.clone();
        let d1 = corrupt(&mut g1, &kg.ontology, &plan);
        let mut g2 = kg.graph.clone();
        let d2 = corrupt(&mut g2, &kg.ontology, &plan);
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.triple, b.triple);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn misinformation_displaces_a_true_triple() {
        let kg = movies(3, Scale::default());
        let mut g = kg.graph.clone();
        let plan = CorruptionPlan {
            seed: 2,
            misinformation: 5,
            functional: 0,
            range: 0,
            domain: 0,
            disjoint: 0,
            irreflexive: 0,
        };
        let defects = corrupt(&mut g, &kg.ontology, &plan);
        for d in &defects {
            let old = d
                .displaced
                .expect("misinformation records the displaced triple");
            assert!(!g.contains(old.s, old.p, old.o));
            assert!(kg.graph.contains(old.s, old.p, old.o));
        }
    }
}
