//! # kg — knowledge-graph substrate
//!
//! The storage and data-model layer that every other crate in the `llmkg`
//! workspace builds on. It provides:
//!
//! * interned RDF-style terms ([`Term`], [`Sym`], [`TermPool`]),
//! * an indexed in-memory triple store ([`Graph`]) with pattern matching
//!   over all eight subject/predicate/object binding shapes,
//! * an ontology / schema model ([`ontology::Ontology`]) with the constraint
//!   vocabulary needed for KG validation (domain/range, disjointness,
//!   functional properties, cardinality, …),
//! * a Turtle-subset and N-Triples parser and serializer ([`turtle`]),
//! * seeded synthetic KG generators ([`synth`]) standing in for Freebase /
//!   Wikidata-scale dumps, and error injection ([`corrupt`]) for the
//!   validation experiments.
//!
//! Everything is deterministic: generators take explicit seeds and all
//! outputs iterate in stable (interning or sorted) order.

pub mod analysis;
pub mod baseline;
pub mod corrupt;
pub mod dataset;
pub mod error;
pub mod namespace;
pub mod ontology;
pub mod store;
pub mod synth;
pub mod term;
pub mod turtle;

pub use baseline::BaselineGraph;
pub use dataset::Dataset;
pub use error::KgError;
pub use ontology::Ontology;
pub use store::{
    Graph, MergeMatches, MergeProbe, PatternScan, PredicateCard, Triple, TriplePattern,
};
pub use term::{Sym, Term, TermPool};
