//! Well-known vocabularies and IRI utilities.

/// RDF namespace prefix.
pub const RDF: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// RDFS namespace prefix.
pub const RDFS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// OWL namespace prefix.
pub const OWL: &str = "http://www.w3.org/2002/07/owl#";
/// XSD namespace prefix.
pub const XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdfs:label`.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// `rdfs:comment`.
pub const RDFS_COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
/// `rdfs:subClassOf`.
pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf`.
pub const RDFS_SUBPROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdfs:domain`.
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
/// `rdfs:range`.
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
/// `owl:Class`.
pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
/// `owl:disjointWith`.
pub const OWL_DISJOINT_WITH: &str = "http://www.w3.org/2002/07/owl#disjointWith";
/// `owl:FunctionalProperty`.
pub const OWL_FUNCTIONAL: &str = "http://www.w3.org/2002/07/owl#FunctionalProperty";
/// `owl:InverseFunctionalProperty`.
pub const OWL_INVERSE_FUNCTIONAL: &str = "http://www.w3.org/2002/07/owl#InverseFunctionalProperty";
/// `owl:inverseOf`.
pub const OWL_INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
/// `owl:sameAs`.
pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
/// `owl:TransitiveProperty`.
pub const OWL_TRANSITIVE: &str = "http://www.w3.org/2002/07/owl#TransitiveProperty";
/// `owl:SymmetricProperty`.
pub const OWL_SYMMETRIC: &str = "http://www.w3.org/2002/07/owl#SymmetricProperty";

/// `xsd:integer`.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// `xsd:double`.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// `xsd:boolean`.
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
/// `xsd:string`.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// `xsd:date`.
pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";

/// Base namespace used by the synthetic generators for entities.
pub const SYNTH_ENTITY: &str = "http://llmkg.dev/entity/";
/// Base namespace used by the synthetic generators for vocabulary.
pub const SYNTH_VOCAB: &str = "http://llmkg.dev/vocab/";

/// The local name of an IRI: the substring after the last `#` or `/`.
///
/// Falls back to the whole IRI when neither separator occurs.
pub fn local_name(iri: &str) -> &str {
    match iri.rfind(['#', '/']) {
        Some(pos) if pos + 1 < iri.len() => &iri[pos + 1..],
        _ => iri,
    }
}

/// The namespace part of an IRI (everything up to and including the last
/// `#` or `/`), or the empty string when there is no separator.
pub fn namespace_of(iri: &str) -> &str {
    match iri.rfind(['#', '/']) {
        Some(pos) if pos + 1 < iri.len() => &iri[..=pos],
        _ => "",
    }
}

/// Very pragmatic IRI well-formedness test: non-empty, has a scheme-like
/// prefix, and contains no whitespace or angle brackets.
pub fn is_valid_iri(iri: &str) -> bool {
    !iri.is_empty()
        && iri.contains(':')
        && !iri
            .chars()
            .any(|c| c.is_whitespace() || c == '<' || c == '>' || c == '"')
}

/// Turn a human label into an IRI-safe local-name fragment
/// (`"New York"` → `"New_York"`).
pub fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

/// Turn an IRI local name back into a human-readable phrase
/// (`"New_York"` → `"New York"`, `"birthPlace"` → `"birth place"`).
pub fn humanize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let mut prev_lower = false;
    for c in name.chars() {
        if c == '_' || c == '-' {
            out.push(' ');
            prev_lower = false;
        } else if c.is_uppercase() && prev_lower {
            out.push(' ');
            out.extend(c.to_lowercase());
            prev_lower = false;
        } else {
            out.push(c);
            prev_lower = c.is_lowercase() || c.is_numeric();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_name_handles_hash_and_slash() {
        assert_eq!(local_name("http://a/b#C"), "C");
        assert_eq!(local_name("http://a/b/c"), "c");
        assert_eq!(local_name("no-separator"), "no-separator");
        assert_eq!(local_name("http://a/b/"), "http://a/b/");
    }

    #[test]
    fn namespace_of_is_complement_of_local_name() {
        assert_eq!(namespace_of("http://a/b#C"), "http://a/b#");
        assert_eq!(namespace_of("http://a/b/c"), "http://a/b/");
        assert_eq!(namespace_of("plain"), "");
    }

    #[test]
    fn iri_validity() {
        assert!(is_valid_iri("http://example.org/x"));
        assert!(is_valid_iri("urn:uuid:123"));
        assert!(!is_valid_iri(""));
        assert!(!is_valid_iri("no-scheme"));
        assert!(!is_valid_iri("http://a b"));
        assert!(!is_valid_iri("http://a<b>"));
    }

    #[test]
    fn slug_and_humanize_round_trip_words() {
        assert_eq!(slug("New York"), "New_York");
        assert_eq!(humanize("New_York"), "New York");
        assert_eq!(humanize("birthPlace"), "birth place");
        assert_eq!(humanize("directedBy"), "directed by");
    }
}
