//! The seed's BTreeSet-backed triple engine, preserved as an oracle.
//!
//! [`BaselineGraph`] is the pre-flat-arena [`crate::Graph`] stripped of
//! its term pool: three `BTreeSet<(Sym, Sym, Sym)>` permutations over raw
//! ids with the same incrementally-maintained cardinality statistics.
//! It exists for two jobs — the differential proptests that pin the
//! flat-arena engine's `match_pattern`/statistics behaviour under
//! arbitrary insert/remove/compact interleavings, and the `encoded_join`
//! benchmark series that measures the arena's memory and join-throughput
//! wins against it. It is deliberately not optimized further.

use std::collections::{BTreeMap, BTreeSet};

use crate::store::{PredicateCard, Triple, TriplePattern};
use crate::term::Sym;

/// Entries of a ternary index whose first two components equal `(a, b)`.
fn pair_range(
    idx: &BTreeSet<(Sym, Sym, Sym)>,
    a: Sym,
    b: Sym,
) -> impl Iterator<Item = &(Sym, Sym, Sym)> {
    idx.range((a, b, Sym(0))..=(a, b, Sym(u32::MAX)))
}

/// Entries of a ternary index whose first component equals `a`.
fn prefix_range(idx: &BTreeSet<(Sym, Sym, Sym)>, a: Sym) -> impl Iterator<Item = &(Sym, Sym, Sym)> {
    idx.range((a, Sym(0), Sym(0))..=(a, Sym(u32::MAX), Sym(u32::MAX)))
}

/// A B-tree-indexed triple store over pre-interned ids.
///
/// Iteration order of all query methods is deterministic (sorted by id),
/// matching [`crate::Graph`] shape for shape.
#[derive(Debug, Default, Clone)]
pub struct BaselineGraph {
    spo: BTreeSet<(Sym, Sym, Sym)>,
    pos: BTreeSet<(Sym, Sym, Sym)>,
    osp: BTreeSet<(Sym, Sym, Sym)>,
    pred_stats: BTreeMap<Sym, PredicateCard>,
    subject_card: usize,
    object_card: usize,
}

impl BaselineGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a triple of pre-interned ids. Returns `true` if new.
    pub fn insert(&mut self, s: Sym, p: Sym, o: Sym) -> bool {
        if self.spo.contains(&(s, p, o)) {
            return false;
        }
        let new_sp = pair_range(&self.spo, s, p).next().is_none();
        let new_po = pair_range(&self.pos, p, o).next().is_none();
        let new_subject = prefix_range(&self.spo, s).next().is_none();
        let new_object = prefix_range(&self.osp, o).next().is_none();
        self.spo.insert((s, p, o));
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
        let card = self.pred_stats.entry(p).or_default();
        card.triples += 1;
        card.distinct_subjects += usize::from(new_sp);
        card.distinct_objects += usize::from(new_po);
        self.subject_card += usize::from(new_subject);
        self.object_card += usize::from(new_object);
        true
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, s: Sym, p: Sym, o: Sym) -> bool {
        if !self.spo.remove(&(s, p, o)) {
            return false;
        }
        self.pos.remove(&(p, o, s));
        self.osp.remove(&(o, s, p));
        let gone_sp = pair_range(&self.spo, s, p).next().is_none();
        let gone_po = pair_range(&self.pos, p, o).next().is_none();
        let gone_subject = prefix_range(&self.spo, s).next().is_none();
        let gone_object = prefix_range(&self.osp, o).next().is_none();
        if let Some(card) = self.pred_stats.get_mut(&p) {
            card.triples -= 1;
            card.distinct_subjects -= usize::from(gone_sp);
            card.distinct_objects -= usize::from(gone_po);
            if card.triples == 0 {
                self.pred_stats.remove(&p);
            }
        }
        self.subject_card -= usize::from(gone_subject);
        self.object_card -= usize::from(gone_object);
        true
    }

    /// Membership test.
    pub fn contains(&self, s: Sym, p: Sym, o: Sym) -> bool {
        self.spo.contains(&(s, p, o))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterate all triples in (s, p, o) order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple { s, p, o })
    }

    /// Match a pattern, choosing the best index for the bound positions.
    ///
    /// Returned triples are sorted under the chosen index — the same
    /// order as [`crate::Graph::match_pattern`] for every shape.
    pub fn match_pattern(&self, pat: TriplePattern) -> Vec<Triple> {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains(s, p, o) {
                    vec![Triple { s, p, o }]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => pair_range(&self.spo, s, p)
                .map(|&(s, p, o)| Triple { s, p, o })
                .collect(),
            (Some(s), None, None) => prefix_range(&self.spo, s)
                .map(|&(s, p, o)| Triple { s, p, o })
                .collect(),
            (None, Some(p), Some(o)) => pair_range(&self.pos, p, o)
                .map(|&(p, o, s)| Triple { s, p, o })
                .collect(),
            (None, Some(p), None) => prefix_range(&self.pos, p)
                .map(|&(p, o, s)| Triple { s, p, o })
                .collect(),
            (None, None, Some(o)) => prefix_range(&self.osp, o)
                .map(|&(o, s, p)| Triple { s, p, o })
                .collect(),
            (Some(s), None, Some(o)) => pair_range(&self.osp, o, s)
                .map(|&(o, s, p)| Triple { s, p, o })
                .collect(),
            (None, None, None) => self.iter().collect(),
        }
    }

    /// Cardinality histogram entry for a predicate (zeros when absent).
    pub fn predicate_card(&self, p: Sym) -> PredicateCard {
        self.pred_stats.get(&p).copied().unwrap_or_default()
    }

    /// Number of distinct subjects across the whole graph.
    pub fn subject_cardinality(&self) -> usize {
        self.subject_card
    }

    /// Number of distinct objects across the whole graph.
    pub fn object_cardinality(&self) -> usize {
        self.object_card
    }

    /// Distinct predicates, sorted, with their triple counts.
    pub fn predicates(&self) -> Vec<(Sym, usize)> {
        self.pred_stats
            .iter()
            .map(|(&p, c)| (p, c.triples))
            .collect()
    }

    /// Objects `o` such that `(s, p, o)` holds, ascending.
    pub fn objects(&self, s: Sym, p: Sym) -> Vec<Sym> {
        pair_range(&self.spo, s, p).map(|&(_, _, o)| o).collect()
    }

    /// Subjects `s` such that `(s, p, o)` holds, ascending.
    pub fn subjects(&self, p: Sym, o: Sym) -> Vec<Sym> {
        pair_range(&self.pos, p, o).map(|&(_, _, s)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_tracks_inserts_and_removes() {
        let mut g = BaselineGraph::new();
        assert!(g.insert(Sym(0), Sym(1), Sym(2)));
        assert!(!g.insert(Sym(0), Sym(1), Sym(2)));
        assert!(g.insert(Sym(0), Sym(1), Sym(3)));
        assert_eq!(g.len(), 2);
        let card = g.predicate_card(Sym(1));
        assert_eq!(card.triples, 2);
        assert_eq!(card.distinct_subjects, 1);
        assert_eq!(card.distinct_objects, 2);
        assert!(g.remove(Sym(0), Sym(1), Sym(2)));
        assert!(!g.remove(Sym(0), Sym(1), Sym(2)));
        assert_eq!(g.len(), 1);
        assert_eq!(g.subject_cardinality(), 1);
        assert_eq!(g.object_cardinality(), 1);
    }

    #[test]
    fn baseline_pattern_shapes_are_sorted() {
        let mut g = BaselineGraph::new();
        for (s, p, o) in [(3, 1, 2), (0, 1, 2), (0, 1, 5), (4, 2, 0)] {
            g.insert(Sym(s), Sym(p), Sym(o));
        }
        let by_p = g.match_pattern(TriplePattern {
            s: None,
            p: Some(Sym(1)),
            o: None,
        });
        assert_eq!(by_p.len(), 3);
        // POS order: sorted by (o, s) within the predicate
        let keys: Vec<(Sym, Sym)> = by_p.iter().map(|t| (t.o, t.s)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
