//! Turtle-subset and N-Triples parsing and serialization.
//!
//! Supported Turtle subset: `@prefix` directives, IRIs in angle brackets,
//! prefixed names, the `a` keyword, string literals with `^^` datatypes and
//! `@lang` tags, bare integer / decimal / boolean literals, blank node
//! labels, `;` and `,` continuations, and `#` comments. This covers the
//! fixtures and generated KGs of the workspace; full Turtle (collections,
//! anonymous blank nodes, multi-line strings) is intentionally out of scope.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::{KgError, Result};
use crate::namespace as ns;
use crate::store::Graph;
use crate::term::{Literal, Term};

/// Parse a Turtle document into a fresh graph.
pub fn parse_turtle(input: &str) -> Result<Graph> {
    let mut g = Graph::new();
    parse_turtle_into(input, &mut g)?;
    Ok(g)
}

/// Parse a Turtle document, inserting into an existing graph.
pub fn parse_turtle_into(input: &str, graph: &mut Graph) -> Result<()> {
    Parser::new(input).run(graph)
}

/// Parse N-Triples (a strict line-oriented subset of our Turtle parser).
pub fn parse_ntriples(input: &str) -> Result<Graph> {
    parse_turtle(input)
}

/// Serialize a graph as N-Triples, one triple per line, sorted.
pub fn to_ntriples(g: &Graph) -> String {
    let mut out = String::new();
    for t in g.iter() {
        let _ = writeln!(
            out,
            "{} {} {} .",
            g.resolve(t.s),
            g.resolve(t.p),
            g.resolve(t.o)
        );
    }
    out
}

/// Serialize a graph as Turtle with the given prefix map
/// (`prefix → namespace`), grouping triples by subject.
pub fn to_turtle(g: &Graph, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (p, nsiri) in prefixes {
        let _ = writeln!(out, "@prefix {p}: <{nsiri}> .");
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
    let shorten = |iri: &str| -> String {
        for (p, nsiri) in prefixes {
            if let Some(rest) = iri.strip_prefix(nsiri) {
                if !rest.is_empty() && rest.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    return format!("{p}:{rest}");
                }
            }
        }
        format!("<{iri}>")
    };
    let fmt_term = |t: &Term| -> String {
        match t {
            Term::Iri(i) if i == ns::RDF_TYPE => "a".to_string(),
            Term::Iri(i) => shorten(i),
            Term::Literal(l) => {
                let mut s = format!("{:?}", l.lexical);
                if let Some(dt) = &l.datatype {
                    s.push_str("^^");
                    s.push_str(&shorten(dt));
                } else if let Some(tag) = &l.language {
                    s.push('@');
                    s.push_str(tag);
                }
                s
            }
            Term::Blank(b) => format!("_:{b}"),
        }
    };
    let mut last_subject: Option<crate::term::Sym> = None;
    for t in g.iter() {
        if last_subject == Some(t.s) {
            // continuation of the same subject
            let _ = write!(
                out,
                " ;\n    {} {}",
                fmt_term(g.resolve(t.p)),
                fmt_term(g.resolve(t.o))
            );
        } else {
            if last_subject.is_some() {
                out.push_str(" .\n");
            }
            let subj = match g.resolve(t.s) {
                Term::Iri(i) => shorten(i),
                other => other.to_string(),
            };
            let _ = write!(
                out,
                "{subj} {} {}",
                fmt_term(g.resolve(t.p)),
                fmt_term(g.resolve(t.o))
            );
            last_subject = Some(t.s);
        }
    }
    if last_subject.is_some() {
        out.push_str(" .\n");
    }
    out
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    prefixes: HashMap<String, String>,
    _input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            prefixes: HashMap::new(),
            _input: input,
        }
    }

    fn err(&self, message: impl Into<String>) -> KgError {
        KgError::Parse {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(self.err(format!("expected '{c}', found '{got}'"))),
            None => Err(self.err(format!("expected '{c}', found end of input"))),
        }
    }

    fn run(&mut self, graph: &mut Graph) -> Result<()> {
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Ok(()),
                Some('@') => self.parse_prefix()?,
                _ => self.parse_statement(graph)?,
            }
        }
    }

    fn parse_prefix(&mut self) -> Result<()> {
        // @prefix name: <iri> .
        for expected in "@prefix".chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                _ => return Err(self.err("malformed @prefix directive")),
            }
        }
        self.skip_ws();
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.err("prefix name must end with ':'"));
            }
            name.push(c);
            self.bump();
        }
        self.expect(':')?;
        self.skip_ws();
        let iri = self.parse_angle_iri()?;
        self.expect('.')?;
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn parse_angle_iri(&mut self) -> Result<String> {
        self.expect('<')?;
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some('\n') => return Err(self.err("newline inside IRI")),
                Some(c) => iri.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
        if !ns::is_valid_iri(&iri) {
            return Err(self.err(format!("invalid IRI <{iri}>")));
        }
        Ok(iri)
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<()> {
        let subject = self.parse_term(true)?;
        loop {
            // predicate-object list
            self.skip_ws();
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_term(false)?;
                graph.insert_terms(subject.clone(), predicate.clone(), object);
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.skip_ws();
            match self.bump() {
                Some(';') => {
                    self.skip_ws();
                    // allow trailing ';' before '.'
                    if self.peek() == Some('.') {
                        self.bump();
                        return Ok(());
                    }
                    continue;
                }
                Some('.') => return Ok(()),
                Some(c) => return Err(self.err(format!("expected ';' or '.', found '{c}'"))),
                None => return Err(self.err("unexpected end of statement")),
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Term> {
        self.skip_ws();
        if self.peek() == Some('a') {
            // `a` keyword only if followed by whitespace
            if self
                .chars
                .get(self.pos + 1)
                .is_some_and(|c| c.is_whitespace())
            {
                self.bump();
                return Ok(Term::iri(ns::RDF_TYPE));
            }
        }
        self.parse_term(true)
    }

    fn parse_term(&mut self, subject_position: bool) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_angle_iri()?)),
            Some('"') => {
                if subject_position {
                    return Err(self.err("literal not allowed here"));
                }
                self.parse_literal()
            }
            Some('_') => {
                self.bump();
                self.expect(':')?;
                let label = self.parse_name()?;
                Ok(Term::Blank(label))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                if subject_position {
                    return Err(self.err("numeric literal not allowed here"));
                }
                self.parse_number()
            }
            Some(c) if c.is_alphabetic() => {
                // boolean shorthand or prefixed name
                let word_start = self.pos;
                let name = self.parse_name()?;
                if self.peek() == Some(':') {
                    self.bump();
                    let local = self.parse_name()?;
                    let nsiri = self
                        .prefixes
                        .get(&name)
                        .ok_or_else(|| self.err(format!("unknown prefix '{name}:'")))?;
                    return Ok(Term::Iri(format!("{nsiri}{local}")));
                }
                if !subject_position && (name == "true" || name == "false") {
                    return Ok(Term::Literal(Literal::boolean(name == "true")));
                }
                self.pos = word_start;
                Err(self.err(format!("unexpected token '{name}'")))
            }
            Some(c) => Err(self.err(format!("unexpected character '{c}'"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.err("expected a name"));
        }
        Ok(name)
    }

    fn parse_literal(&mut self) -> Result<Term> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('u') => s.push(self.parse_unicode_escape(4)?),
                    Some('U') => s.push(self.parse_unicode_escape(8)?),
                    Some(c) => return Err(self.err(format!("unknown escape '\\{c}'"))),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => s.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
        // datatype or language tag
        match self.peek() {
            Some('^') => {
                self.bump();
                self.expect('^')?;
                self.skip_ws();
                let dt = if self.peek() == Some('<') {
                    self.parse_angle_iri()?
                } else {
                    let prefix = self.parse_name()?;
                    self.expect(':')?;
                    let local = self.parse_name()?;
                    let nsiri = self
                        .prefixes
                        .get(&prefix)
                        .ok_or_else(|| self.err(format!("unknown prefix '{prefix}:'")))?;
                    format!("{nsiri}{local}")
                };
                Ok(Term::Literal(Literal {
                    lexical: s,
                    datatype: Some(dt),
                    language: None,
                }))
            }
            Some('@') => {
                self.bump();
                let tag = self.parse_name()?;
                Ok(Term::Literal(Literal {
                    lexical: s,
                    datatype: None,
                    language: Some(tag),
                }))
            }
            _ => Ok(Term::Literal(Literal::string(s))),
        }
    }

    /// The code point of a `\uXXXX` / `\UXXXXXXXX` escape (the backslash
    /// and marker already consumed). Rejects short digit runs, lone
    /// surrogates, and out-of-range values with a positioned error.
    fn parse_unicode_escape(&mut self, digits: u32) -> Result<char> {
        let mut value: u32 = 0;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| self.err("unterminated unicode escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err(format!("invalid hex digit '{c}' in unicode escape")))?;
            value = value * 16 + d;
        }
        char::from_u32(value)
            .ok_or_else(|| self.err(format!("invalid unicode scalar U+{value:04X} in escape")))
    }

    fn parse_number(&mut self) -> Result<Term> {
        let mut num = String::new();
        if matches!(self.peek(), Some('-') | Some('+')) {
            num.push(self.bump().expect("peeked"));
        }
        let mut is_double = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                num.push(c);
                self.bump();
            } else if c == '.' {
                // a '.' is part of the number only if followed by a digit
                if self
                    .chars
                    .get(self.pos + 1)
                    .is_some_and(char::is_ascii_digit)
                {
                    is_double = true;
                    num.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else if c == 'e' || c == 'E' {
                is_double = true;
                num.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if is_double {
            let v: f64 = num
                .parse()
                .map_err(|_| self.err(format!("invalid double literal '{num}'")))?;
            Ok(Term::Literal(Literal::double(v)))
        } else {
            let v: i64 = num
                .parse()
                .map_err(|_| self.err(format!("invalid integer literal '{num}'")))?;
            Ok(Term::Literal(Literal::integer(v)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_statement() {
        let g = parse_turtle("<http://e/a> <http://v/p> <http://e/b> .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parses_prefixes_and_a_keyword() {
        let src = r#"
            @prefix ex: <http://e/> .
            @prefix v: <http://v/> .
            ex:alice a v:Person ;
                v:knows ex:bob, ex:carol ;
                v:age 34 .
        "#;
        let g = parse_turtle(src).unwrap();
        assert_eq!(g.len(), 4); // type + 2×knows + age
        let alice = g.pool().get_iri("http://e/alice").unwrap();
        let ty = g.pool().get_iri(ns::RDF_TYPE).unwrap();
        let person = g.pool().get_iri("http://v/Person").unwrap();
        assert!(g.contains(alice, ty, person));
        let age = g.pool().get_iri("http://v/age").unwrap();
        let objs = g.objects(alice, age);
        assert_eq!(objs.len(), 1);
        assert_eq!(
            g.resolve(objs[0]).as_literal().unwrap().as_integer(),
            Some(34)
        );
    }

    #[test]
    fn parses_typed_and_tagged_literals() {
        let src = r#"
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            <http://e/a> <http://v/name> "Alice"@en .
            <http://e/a> <http://v/score> "3.5"^^xsd:double .
            <http://e/a> <http://v/active> true .
            <http://e/a> <http://v/height> 1.75 .
        "#;
        let g = parse_turtle(src).unwrap();
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn parses_blank_nodes_and_comments() {
        let src = "# a comment\n_:b0 <http://v/p> _:b1 . # trailing\n";
        let g = parse_turtle(src).unwrap();
        assert_eq!(g.len(), 1);
        let t = g.iter().next().unwrap();
        assert!(matches!(g.resolve(t.s), Term::Blank(b) if b == "b0"));
    }

    #[test]
    fn parses_escapes() {
        let g = parse_turtle(r#"<http://e/a> <http://v/p> "line\nbreak \"q\"" ."#).unwrap();
        let t = g.iter().next().unwrap();
        let l = g.resolve(t.o).as_literal().unwrap();
        assert_eq!(l.lexical, "line\nbreak \"q\"");
    }

    #[test]
    fn parses_carriage_return_and_unicode_escapes() {
        let g = parse_turtle(
            r#"<http://e/a> <http://v/p> "cr\rlf\n tab\t A=\u0041 smile=\U0001F600" ."#,
        )
        .unwrap();
        let t = g.iter().next().unwrap();
        let l = g.resolve(t.o).as_literal().unwrap();
        assert_eq!(l.lexical, "cr\rlf\n tab\t A=A smile=😀");
    }

    #[test]
    fn escaped_literal_round_trips_through_ntriples() {
        let mut g = Graph::new();
        g.insert_terms(
            Term::iri("http://e/a"),
            Term::iri("http://v/p"),
            Term::lit("cr\r lf\n tab\t quote\" back\\ é😀"),
        );
        let nt = to_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        assert_eq!(g2.len(), 1);
        let t = g2.iter().next().unwrap();
        let l = g2.resolve(t.o).as_literal().unwrap();
        assert_eq!(l.lexical, "cr\r lf\n tab\t quote\" back\\ é😀");
        // serialize → parse → serialize is a fixed point
        assert_eq!(to_ntriples(&g2), nt);
    }

    #[test]
    fn lone_surrogate_escape_is_a_positioned_error() {
        let err = parse_turtle("<http://e/a> <http://v/p>\n \"bad \\uD800\" .").unwrap_err();
        match err {
            KgError::Parse {
                line, ref message, ..
            } => {
                assert_eq!(line, 2);
                assert!(message.contains("U+D800"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // out-of-range scalars and short digit runs fail too
        assert!(parse_turtle(r#"<http://e/a> <http://v/p> "\UFFFFFFFF" ."#).is_err());
        assert!(parse_turtle(r#"<http://e/a> <http://v/p> "\u12" ."#).is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse_turtle("<http://e/a> <http://v/p>\n ??? .").unwrap_err();
        match err {
            KgError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse_turtle("zz:a <http://v/p> <http://e/b> .").unwrap_err();
        assert!(err.to_string().contains("unknown prefix"), "{err}");
    }

    #[test]
    fn literal_in_subject_position_is_an_error() {
        assert!(parse_turtle("\"x\" <http://v/p> <http://e/b> .").is_err());
        assert!(parse_turtle("42 <http://v/p> <http://e/b> .").is_err());
    }

    #[test]
    fn ntriples_round_trip() {
        let src = r#"
            @prefix ex: <http://e/> .
            ex:a ex:p ex:b .
            ex:a ex:q "lit"^^<http://www.w3.org/2001/XMLSchema#integer> .
        "#;
        let g = parse_turtle(src).unwrap();
        let nt = to_ntriples(&g);
        let g2 = parse_ntriples(&nt).unwrap();
        assert_eq!(g2.len(), g.len());
        for t in g.iter() {
            let s = g2.pool().get(g.resolve(t.s)).unwrap();
            let p = g2.pool().get(g.resolve(t.p)).unwrap();
            let o = g2.pool().get(g.resolve(t.o)).unwrap();
            assert!(g2.contains(s, p, o));
        }
    }

    #[test]
    fn turtle_round_trip_with_prefixes() {
        let mut g = Graph::new();
        g.insert_iri("http://e/a", ns::RDF_TYPE, "http://v/Person");
        g.insert_terms(
            Term::iri("http://e/a"),
            Term::iri("http://v/name"),
            Term::lit("A"),
        );
        let ttl = to_turtle(&g, &[("ex", "http://e/"), ("v", "http://v/")]);
        assert!(ttl.contains("ex:a a v:Person"), "{ttl}");
        let g2 = parse_turtle(&ttl).unwrap();
        assert_eq!(g2.len(), 2);
    }

    #[test]
    fn number_followed_by_statement_dot() {
        // the '.' terminating the statement must not be eaten by the number
        let g = parse_turtle("<http://e/a> <http://v/age> 7 .").unwrap();
        assert_eq!(g.len(), 1);
    }
}
