//! KG construction from text (paper §2.1): run the full extraction
//! pipeline (NER → entity linking → relation extraction → triple
//! assembly) over raw sentences, then validate the constructed graph.
//!
//! Run with: `cargo run --example construct_kg`

use std::collections::BTreeMap;

use llmkg::kgextract::pipeline::ExtractionPipeline;
use llmkg::kgextract::testgen::annotate_graph;
use llmkg::{Workbench, WorkbenchConfig};

fn main() {
    let wb = Workbench::build(&WorkbenchConfig {
        entities_per_class: 16,
        ..Default::default()
    });
    let kg = &wb.kg;
    let relations: BTreeMap<String, String> = kg
        .ontology
        .properties()
        .filter_map(|(iri, d)| d.label.clone().map(|l| (iri.to_string(), l)))
        .collect();
    let training = annotate_graph(&kg.graph, &kg.ontology);
    let pipeline = ExtractionPipeline::for_kg(&kg.graph, &wb.slm, relations, &training);

    // pretend these sentences arrived as raw text from the wild
    let input: String = training[..8]
        .iter()
        .map(|s| format!("{}.", s.text))
        .collect::<Vec<_>>()
        .join(" ");
    println!("input text:\n  {input}\n");

    let triples = pipeline.extract(&input);
    println!("extracted {} triples:", triples.len());
    for t in &triples {
        println!(
            "  ({}, {}, {})",
            t.subject,
            llmkg::kg::namespace::local_name(&t.relation),
            t.object
        );
    }

    let constructed = pipeline.build_graph(&input);
    println!("\nconstructed graph: {} triples", constructed.len());
    let violations = llmkg::kgvalidate::detect_violations(&constructed, &kg.ontology);
    println!(
        "constraint violations in the constructed graph: {}",
        violations.len()
    );
}
