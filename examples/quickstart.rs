//! Quickstart: build a workbench (KG + simulated LLM) and exercise each
//! interplay family in a few lines.
//!
//! Run with: `cargo run --example quickstart`

use llmkg::{Workbench, WorkbenchConfig};

fn main() {
    // 1. Build: a movies KG, its verbalized corpus, and an LM trained on it.
    let wb = Workbench::build(&WorkbenchConfig::default());
    println!(
        "KG: {} triples, corpus: {} sentences, LM vocab: {} types\n",
        wb.graph().len(),
        wb.corpus.len(),
        wb.slm.lm().vocab_size()
    );

    // 2. Query the KG declaratively (SPARQL and Cypher front-ends).
    let films = wb
        .sparql(
            "PREFIX v: <http://llmkg.dev/vocab/> \
             SELECT ?f ?d WHERE { ?f a v:Film ; v:directedBy ?d } LIMIT 3",
        )
        .expect("query runs");
    println!("Some films and their directors:\n{}", films.to_table());

    // 3. Ask in natural language (LLM-KG cooperation: text-to-SPARQL).
    let g = wb.graph();
    let film_class = g
        .pool()
        .get_iri("http://llmkg.dev/vocab/Film")
        .expect("Film class");
    let film = g.instances_of(film_class)[0];
    let film_name = g.display_name(film);
    let question = format!("What is {film_name} directed by?");
    println!("Q: {question}");
    println!("A: {}\n", wb.ask(&question));

    // 4. Generate a description (KG-to-text, RQ1).
    println!("Describe {film_name}:");
    println!("  {}\n", wb.describe(&film_name).expect("entity exists"));

    // 5. Fact-check a claim (KG validation, RQ4).
    let claim = &wb.corpus[0];
    println!("Verify {claim:?}: {:?}", wb.verify(claim));
    println!(
        "Verify \"the moon is made of cheese\": {:?}",
        wb.verify("the moon is made of cheese")
    );

    // 6. Validate the KG against its ontology (RQ3).
    println!(
        "\nConstraint violations in the clean KG: {}",
        wb.validate().len()
    );
}
