//! Personal-KG-enhanced LLM (paper §5.2, open challenge): a small
//! *private* knowledge graph of one person's life, kept out of the LM's
//! training corpus and injected only at inference time — the paper's
//! proposed separation of knowledge (KG) from language understanding
//! (LM).
//!
//! Run with: `cargo run --example personal_kg`

use llmkg::kg::namespace as ns;
use llmkg::kg::turtle::parse_turtle;
use llmkg::kgrag::inject::inject_knowledge;
use llmkg::slm::{GenParams, Slm};

fn main() {
    // the private personal KG — never part of the LM's corpus
    let personal = parse_turtle(&format!(
        r#"
        @prefix e: <{e}> .
        @prefix v: <{v}> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        e:Jordan a v:Person ; rdfs:label "Jordan" ;
             v:worksAt e:Acme_Labs ;
             v:spouse e:Sam ;
             v:prefers e:Green_Tea .
        e:Acme_Labs a v:Organization ; rdfs:label "Acme Labs" .
        e:Sam a v:Person ; rdfs:label "Sam" .
        e:Green_Tea a v:Beverage ; rdfs:label "Green Tea" .
        "#,
        e = ns::SYNTH_ENTITY,
        v = ns::SYNTH_VOCAB
    ))
    .expect("personal KG parses");

    // a generic LM: language competence only, zero personal knowledge
    let slm = Slm::builder()
        .corpus([
            "people work at organizations",
            "people prefer beverages",
            "a spouse is a partner",
        ])
        .build();

    let questions = [
        "Where does Jordan work?",
        "What does Jordan prefer?",
        "Who is Jordan spouse?",
    ];
    for q in questions {
        // without the personal KG: the LM cannot know
        let blank = slm.answer(q, &[]);
        // with K-BERT-style injection from the personal KG
        let (context, _) = inject_knowledge(&personal, q, 8);
        let informed = slm.answer(q, &context);
        println!("Q: {q}");
        println!(
            "   without personal KG: {}",
            if blank.is_answered() {
                blank.text
            } else {
                "(unknown)".into()
            }
        );
        println!(
            "   with personal KG:    {} (evidence: {:?})\n",
            informed.text, informed.evidence
        );
    }

    // the separation the paper argues for: the LM stays small and generic,
    // knowledge lives in the (private, editable, deletable) KG
    println!(
        "LM vocabulary: {} types — unchanged by personal facts.",
        slm.lm().vocab_size()
    );
    let _ = GenParams::default();
}
