//! KG chatbot (paper §4.1.5): a scripted dialogue showing hybrid routing —
//! entity questions go to text-to-SPARQL + KG execution, chitchat to the
//! LLM, and pronoun follow-ups resolve via the focus entity.
//!
//! Run with: `cargo run --example kg_chatbot`

use llmkg::kgqa::chatbot::RouterDecision;
use llmkg::{Workbench, WorkbenchConfig};

fn main() {
    let wb = Workbench::build(&WorkbenchConfig::default());
    let g = wb.graph();
    let film_class = g
        .pool()
        .get_iri("http://llmkg.dev/vocab/Film")
        .expect("Film class");
    let film = g.instances_of(film_class)[0];
    let film_name = g.display_name(film);

    let mut bot = wb.chatbot();
    let script = vec![
        "hi! can you help me with movie trivia?".to_string(),
        format!("What is {film_name} directed by?"),
        "And what is it produced by?".to_string(),
        format!("What is {film_name} starring?"),
        "thanks, that's all".to_string(),
    ];

    for user in script {
        println!("user: {user}");
        let reply = bot.handle(&user);
        let route = match reply.decision {
            RouterDecision::KgQuery => "KG",
            RouterDecision::EntityLookup => "lookup",
            RouterDecision::LlmChat => "LLM",
            RouterDecision::Apology => "apology",
        };
        println!("bot [{route}]: {}", reply.text);
        if let Some(sparql) = &reply.sparql {
            println!("      (via {sparql})");
        }
        if reply.degradation.degraded() {
            println!("      (degraded: {})", reply.degradation.render());
        }
        println!();
    }
    println!(
        "focus entity at end of session: {:?}",
        bot.focus.map(|e| g.display_name(e))
    );
}
