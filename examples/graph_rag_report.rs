//! Graph RAG (paper §3, \[26\]): build communities over the KG, print
//! their summaries, then contrast a *global* sensemaking question (which
//! needs whole-corpus aggregation) with a *local* factoid question.
//!
//! Run with: `cargo run --example graph_rag_report`

use llmkg::{Workbench, WorkbenchConfig};

fn main() {
    let wb = Workbench::build(&WorkbenchConfig::default());
    let rag = wb.graph_rag();

    println!("Detected {} communities:\n", rag.community_count());
    for (i, c) in rag.communities.iter().enumerate().take(6) {
        println!("community {i}: {}\n", c.summary);
    }

    // global question: requires aggregating over the whole corpus
    let global_q = "What is the most common has genre value?";
    match rag.answer_global(global_q) {
        Some((answer, count)) => {
            println!("GLOBAL  {global_q}\n        → {answer} ({count} films)")
        }
        None => println!("GLOBAL  {global_q}\n        → (unroutable)"),
    }

    // local question: answered from one community's facts
    let g = wb.graph();
    let film_class = g
        .pool()
        .get_iri("http://llmkg.dev/vocab/Film")
        .expect("Film class");
    let film = g.instances_of(film_class)[0];
    let local_q = format!("Who is {} directed by?", g.display_name(film));
    let a = rag.answer_local(&local_q);
    println!(
        "\nLOCAL   {local_q}\n        → {} (confidence {:.2})",
        a.text, a.confidence
    );
}
