#!/usr/bin/env python3
"""Validate the JSON reports the bench harnesses emit.

One entrypoint for every CI report gate (the checks used to live as
inline python blocks in .github/workflows/ci.yml):

    validate_reports.py query-smoke      [reports/query_bench_smoke.json]
    validate_reports.py retrieval-smoke  [reports/retrieval_bench_smoke.json]
    validate_reports.py serve-smoke      [reports/serve_bench_smoke.json]
    validate_reports.py plan-cache       [reports/query_bench_smoke.json]
    validate_reports.py recovery         [reports/recovery_bench.json]

Each subcommand loads one report, asserts its schema and invariants, and
prints a one-line OK summary. Any assertion failure exits non-zero with
the offending value in the message. The vendored serde_json stub has no
parser, so these checks run under the system python instead of Rust.
"""

import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def validate_query_smoke(path):
    r = load(path)
    assert r["mode"] == "smoke", r["mode"]
    assert r["queries"], "no query entries"
    assert r["limit_streaming"]["queries"], "no limit entries"
    assert r["parallel"]["workers"], "no parallel sweep"
    # the synthetic graphs arrive compacted, so at least one BGP
    # stage of the standard workload must take the merge-join path
    assert any(q["stats"]["merge_joins"] > 0 for q in r["queries"]), \
        [q["stats"] for q in r["queries"]]
    ej = r["encoded_join"]
    assert ej["graph"]["triples"] > 0, ej["graph"]
    mem = ej["memory"]
    assert mem["flat_bytes"] > 0 and mem["btree_bytes"] > 0, mem
    assert mem["ratio"] > 1.0, mem  # flat arena must be smaller
    join = ej["join"]
    assert join["rows"] > 0 and join["checksum"], join
    assert join["probe_ns"] > 0 and join["merge_ns"] > 0, join
    validate_plan_cache_series(r)
    profiles = {p["name"]: p["profile"] for p in r["profiles"]}
    assert set(profiles) == {"chatbot", "rag_naive", "rag_modular", "hybrid"}, set(profiles)
    chat = profiles["chatbot"]
    assert chat["route"] == "kg-query", chat["route"]
    assert chat["executor"]["index_probes"] > 0, chat["executor"]
    assert chat["counters"]["exec.queries"] == 1, chat["counters"]
    assert chat["counters"]["chatbot.turns"] == 1, chat["counters"]
    # the profiled turn runs after a warmup turn over the workbench's
    # shared plan cache: steady-state serving must hit, never compile
    assert chat["counters"].get("plan_cache.hits", 0) >= 1, chat["counters"]
    assert chat["counters"].get("plan_cache.misses", 0) == 0, chat["counters"]
    naive = profiles["rag_naive"]
    assert naive["retrieval"]["vectors_scanned"] > 0, naive["retrieval"]
    assert naive["retrieval"]["heap_pushes"] > 0, naive["retrieval"]
    hybrid = profiles["hybrid"]
    assert hybrid["route"] == "store+llm", hybrid["route"]
    assert hybrid["counters"]["hybrid.llm_calls"] > 0, hybrid["counters"]
    assert hybrid["executor"]["index_probes"] > 0, hybrid["executor"]
    for name, p in profiles.items():
        assert p["wall_ns"] > 0, name
        assert p["spans"], name
        assert p["retrieval"]["candidates"] > 0, (name, p["retrieval"])
        # healthy serving paths: present but all-zero resilience block
        assert not p["resilience"]["degraded"], (name, p["resilience"])
        assert p["resilience"]["fallbacks"] == 0, (name, p["resilience"])
    res = r["resilience"]
    assert res["deadline_ms"] == 10000, res
    assert res["budgeted_queries"]["completed"] > 0, res
    assert res["budgeted_queries"]["limit_hits"] == 0, res
    assert res["fallbacks"] == 0 and res["faults_injected"] == 0, res
    print("profile JSON OK:", ", ".join(sorted(profiles)))


def validate_plan_cache_series(r):
    """The prepared_repeat invariants, shared by query-smoke and plan-cache."""
    pr = r["prepared_repeat"]
    n = pr["workload_queries"]
    assert n > 0, pr
    planning = pr["planning"]
    assert planning["cold_plan_ns"] > 0, planning
    assert planning["cached_plan_ns"] > 0, planning
    assert planning["speedup"] > 0, planning
    passes = {p["pass"]: p for p in pr["passes"]}
    assert set(passes) == {1, 2}, passes
    # pass 1 compiles the whole workload cold; pass 2 must hit
    assert passes[1]["misses"] == n and passes[1]["hits"] == 0, passes
    assert passes[2]["hits"] > 0, passes
    assert pr["hit_rate"] > 0.0, pr["hit_rate"]
    cache = pr["cache"]
    assert cache["entries"] > 0, cache
    assert cache["hits"] > 0, cache
    tpl = pr["template"]
    assert tpl["anchors_checked"] > 0, tpl
    assert "VALUES" in tpl["gate"], tpl


def validate_plan_cache(path):
    r = load(path)
    validate_plan_cache_series(r)
    pr = r["prepared_repeat"]
    print("plan cache OK: hit rate %.2f over %d queries, cached plan %.0f ns (cold %.0f ns)"
          % (pr["hit_rate"], pr["workload_queries"],
             pr["planning"]["cached_plan_ns"], pr["planning"]["cold_plan_ns"]))


def validate_retrieval_smoke(path):
    r = load(path)
    # the same schema ships in smoke (CI) and full (committed) reports;
    # timing gates only bind in full mode, where iterations are real
    assert r["mode"] in ("smoke", "full"), r["mode"]
    full = r["mode"] == "full"
    assert r["exact"], "no exact series"
    for e in r["exact"]:
        assert e["hits_identical"], e
        assert e["vectors_scanned"] > 0, e
    for w in r["parallel"]["workers"]:
        assert w["bit_identical"], w
        assert w["parallel_shards"] == w["workers"], w
    for p in r["ivf"]["probes"]:
        if p["n_probe"] >= 2:
            assert p["recall_at_10"] >= 0.9, p
    # SIMD dispatch: a known path, consistent across the report, and —
    # when the runner pins EXPECT_DISPATCH — exactly the expected one
    assert r["dispatch"] in ("scalar", "avx2", "neon"), r["dispatch"]
    assert r["batch"]["dispatch"] == r["dispatch"], r["batch"]["dispatch"]
    expected = os.environ.get("EXPECT_DISPATCH")
    if expected:
        assert r["dispatch"] == expected, \
            f"dispatch {r['dispatch']!r} != EXPECT_DISPATCH {expected!r}"
    # batch series: fixed recall by construction (bit-identical hits),
    # and in full mode the 3x throughput gate at batch >= 16
    batches = r["batch"]["batches"]
    assert {b["batch"] for b in batches} >= {1, 4, 16, 64}, batches
    for b in batches:
        assert b["bit_identical"], b
        assert b["recall_vs_single_at_10"] == 1.0, b
        assert b["single_qps"] > 0 and b["batch_qps"] > 0, b
        if full and b["batch"] >= 16:
            assert b["speedup"] >= 3.0, b
    # seeding series: k-means++ must not regress recall vs shuffle
    seedings = {s["seeding"]: s for s in r["seeding"]["seedings"]}
    assert set(seedings) == {"shuffle", "kmeanspp"}, set(seedings)
    assert seedings["kmeanspp"]["recall_at_10"] + 0.02 >= \
        seedings["shuffle"]["recall_at_10"], seedings
    assert r["seeding"]["elbow_n_clusters"] >= 2, r["seeding"]
    print("retrieval JSON OK:", len(r["exact"]), "sizes,",
          len(r["ivf"]["probes"]), "probe points,",
          len(batches), "batch points, dispatch", r["dispatch"])


def validate_serve_smoke(path):
    r = load(path)
    assert r["mode"] == "smoke", r["mode"]
    assert "never errors" in r["contract"], r["contract"]
    assert r["closed_loop"] and r["open_loop"], "missing series"
    for rung in r["closed_loop"] + r["open_loop"]:
        classes = rung["classes"]
        total = sum(c["count"] for c in classes.values())
        answered = sum(c["ok"] for c in classes.values())
        assert total == rung["requests"], rung
        # the contract: every request answered, even at 10x overload
        assert answered == total, rung
        for c in classes.values():
            assert c["p99_us"] >= c["p50_us"] >= 0, c
    first, last = r["closed_loop"][0], r["closed_loop"][-1]
    # an unloaded single closed-loop client never sheds...
    assert sum(c["shed"] for c in first["classes"].values()) == 0, first
    # ...and the overload rung must actually trip admission
    assert last["overload_factor"] >= 10, last
    pressure = sum(c["shed"] + c["degraded"] for c in last["classes"].values())
    assert pressure > 0, last
    counters = r["server_stats"]["counters"]
    # the server's own ledger must balance: every accepted request
    # line either ran, was shed, or was the final stats probe
    assert counters["serve.accepted"] == (
        counters["serve.requests"] + counters.get("serve.shed", 0) + 1
    ), counters
    assert counters.get("serve.protocol_errors", 0) == 0, counters
    assert counters.get("serve.client_errors", 0) == 0, counters
    assert counters["serve.inflight"] == 0, counters
    assert counters["serve.queue_depth"] == 0, counters
    hists = r["server_stats"]["histograms"]
    for s in ("chat", "rag", "sparql", "complete"):
        assert hists["serve.latency_us." + s]["count"] > 0, s
    print("serve JSON OK:", len(r["closed_loop"]), "closed rungs,",
          "shed", counters.get("serve.shed", 0),
          "degraded", counters.get("serve.degraded", 0))


def validate_recovery(path):
    r = load(path)
    assert r["mode"] in ("smoke", "full"), r["mode"]
    assert "bit-identical to an oracle replay" in r["contract"], r["contract"]
    commit = r["group_commit"]
    assert len(commit) >= 2, "need at least two group-commit windows"
    for row in commit:
        # every batch recovered in every window configuration
        assert row["recovered_batches"] == row["batches"], row
        assert row["fsyncs"] > 0, row
        assert row["batches_per_sec"] > 0, row
    # wider windows must not fsync more often
    by_window = sorted(commit, key=lambda row: row["window"])
    fsyncs = [row["fsyncs"] for row in by_window]
    assert fsyncs == sorted(fsyncs, reverse=True), fsyncs
    series = r["recovery_vs_wal_length"]
    assert series, "no recovery series"
    for row in series:
        assert row["batches_replayed"] == row["batches"], row
        assert row["reopen_us"] > 0 and row["wal_bytes"] > 0, row
    ckpt = r["checkpoint"]
    assert ckpt["reopen_via_checkpoint_us"] > 0, ckpt
    # loading the snapshot must beat replaying the whole log
    assert ckpt["speedup"] > 1.0, ckpt
    assert ckpt["checkpoint_triples"] > 0, ckpt
    torn = r["torn_tail"]
    assert torn, "no torn-tail sweep"
    assert torn[0]["keep_pct"] == 100 and torn[0]["recovered_batches"] > 0, torn[0]
    # shorter surviving prefixes recover monotonically fewer batches,
    # and a tear inside the log shows up as a truncated segment
    kept = [row["recovered_batches"] for row in torn]
    assert kept == sorted(kept, reverse=True), kept
    assert any(row["truncated_segments"] > 0 for row in torn[1:]), torn
    print("recovery JSON OK: %d windows, %d WAL lengths, checkpoint speedup %.1fx"
          % (len(commit), len(series), ckpt["speedup"]))


COMMANDS = {
    "query-smoke": (validate_query_smoke, "reports/query_bench_smoke.json"),
    "retrieval-smoke": (validate_retrieval_smoke, "reports/retrieval_bench_smoke.json"),
    "serve-smoke": (validate_serve_smoke, "reports/serve_bench_smoke.json"),
    "plan-cache": (validate_plan_cache, "reports/query_bench_smoke.json"),
    "recovery": (validate_recovery, "reports/recovery_bench.json"),
}


def main(argv):
    if len(argv) < 2 or argv[1] not in COMMANDS:
        names = " | ".join(sorted(COMMANDS))
        print(f"usage: validate_reports.py <{names}> [report.json]", file=sys.stderr)
        return 2
    fn, default_path = COMMANDS[argv[1]]
    path = argv[2] if len(argv) > 2 else default_path
    try:
        fn(path)
    except AssertionError as e:
        print(f"{argv[1]}: report invariant violated: {e!r}", file=sys.stderr)
        return 1
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"{argv[1]}: cannot validate {path}: {e!r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
